//! Congestion-control division over a satellite-style path (paper §1, §2.1).
//!
//! The intro's motivating deployment: "an appropriate … congestion-control
//! scheme for a heavily multiplexed wired network wouldn't be ideal for
//! paths that include a high-delay satellite link". A ground-station proxy
//! divides the path: the server fills the fast terrestrial segment from
//! proxy quACKs while the proxy paces the long lossy satellite hop from
//! client quACKs — without ever touching the E2E-encrypted transport.
//!
//! Run: `cargo run --release --example satellite_pep`

use sidecar_repro::netsim::link::{LinkConfig, LossModel};
use sidecar_repro::netsim::time::SimDuration;
use sidecar_repro::proto::protocols::ccd::CcdScenario;
use sidecar_repro::proto::SidecarConfig;

fn main() {
    let scenario = CcdScenario {
        total_packets: 3_000,
        // Terrestrial segment: fast and clean.
        upstream: LinkConfig {
            rate_bps: 500_000_000,
            delay: SimDuration::from_millis(5),
            ..LinkConfig::default()
        },
        // GEO satellite hop: ~250 ms one way, 40 Mbit/s, noncongestive loss.
        downstream: LinkConfig {
            rate_bps: 40_000_000,
            delay: SimDuration::from_millis(250),
            loss: LossModel::Bernoulli { p: 0.005 },
            queue_packets: 2_048,
            ..LinkConfig::default()
        },
        sidecar: SidecarConfig {
            threshold: 80,
            reorder_grace: SimDuration::from_millis(50),
            ..SidecarConfig::paper_default()
        },
        // One quACK per satellite RTT.
        quack_interval: SimDuration::from_millis(500),
        buffer_cap: 8_192,
        ..CcdScenario::default()
    };

    println!("satellite PEP (congestion-control division), 3000 × 1500 B\n");
    println!("  segment 1: 500 Mbit/s, 5 ms   (server → ground station)");
    println!("  segment 2:  40 Mbit/s, 250 ms, 0.5% loss (satellite)\n");
    for seed in [1u64, 2, 3] {
        let baseline = scenario.run_baseline(seed);
        let sidecar = scenario.run_sidecar(seed);
        let base_str = match baseline.completion {
            Some(t) => format!("{:.2}s", t.as_secs_f64()),
            // The 120-simulated-second budget ran out: e2e NewReno on a GEO
            // path with noncongestive loss really is that slow.
            None => ">120s (unfinished)".to_string(),
        };
        let speedup = match baseline.completion {
            Some(t) => format!("{:.2}x", t.as_secs_f64() / sidecar.completion_secs()),
            None => format!(">{:.0}x", 120.0 / sidecar.completion_secs()),
        };
        println!(
            "seed {seed}: baseline {base_str:>18}  |  divided {:>6.2}s ({:4.1} Mbit/s)  →  {speedup}",
            sidecar.completion_secs(),
            sidecar.goodput_bps.unwrap_or(0.0) / 1e6,
        );
    }
    println!(
        "\nEnd-to-end NewReno treats every satellite loss as congestion and \
         stalls at hundreds of ms per recovery; the divided path keeps the \
         terrestrial segment full and meters the satellite hop locally."
    );
}
