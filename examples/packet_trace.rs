//! Observability: trace every packet of a small lossy transfer.
//!
//! The simulator can record a bounded, tcpdump-flavoured event trace
//! (arrivals, drops with reasons, timer firings) — the debugging loop for
//! building new sidecar protocols.
//!
//! Run: `cargo run --release --example packet_trace`

use sidecar_repro::netsim::link::{LinkConfig, LossModel};
use sidecar_repro::netsim::trace::TraceEvent;
use sidecar_repro::netsim::transport::{ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
use sidecar_repro::netsim::world::World;

fn main() {
    let mut world = World::new(2024);
    world.enable_trace(10_000);

    let sender = world.add_node(SenderNode::boxed(SenderConfig {
        total_packets: Some(30),
        ..SenderConfig::default()
    }));
    let receiver = world.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
    world.connect(
        sender,
        receiver,
        LinkConfig {
            loss: LossModel::Bernoulli { p: 0.15 },
            ..LinkConfig::default()
        },
        LinkConfig::default(),
    );
    world.run_until_idle(1_000_000);

    let trace = world.trace();
    println!("--- first 25 events ---");
    for line in trace.render().lines().take(25) {
        println!("{line}");
    }
    let (loss, queue) = trace.drop_counts();
    let drops: Vec<&TraceEvent> = trace
        .filtered(|e| matches!(e, TraceEvent::Drop { .. }))
        .collect();
    println!("--- summary ---");
    println!(
        "{} events recorded; {loss} loss drops, {queue} queue drops",
        trace.total_recorded
    );
    if let Some(first_drop) = drops.first() {
        println!("first casualty at {}", first_drop.at());
    }
    let stats = world.node_as::<SenderNode>(sender).stats();
    println!(
        "flow finished at {:?} with {} retransmissions",
        stats.completed_at, stats.retransmissions
    );
}
