//! Quickstart: construct, transmit, and decode a quACK.
//!
//! Mirrors the paper's Fig. 2 interface — *Construction:* `R → quACK`;
//! *Decoding:* `S + quACK → S \ R` — over the wire format used by the
//! sidecar protocols.
//!
//! Run: `cargo run --release --example quickstart`

use sidecar_repro::quack::id::IdentifierGenerator;
use sidecar_repro::quack::{PowerSumQuack, Quack32, WireFormat};

fn main() {
    // A sender ships 1000 packets; each carries a pseudo-random 32-bit
    // identifier sampled from its encrypted header (§3.2).
    let mut ids = IdentifierGenerator::new(32, 0xC0FFEE);
    let sent: Vec<u64> = ids.take_ids(1000);

    // ---- Receiver side -----------------------------------------------------
    // Fold every arriving identifier into t = 20 power sums. Packets 100,
    // 417 and 900 never arrive.
    let lost = [100usize, 417, 900];
    let mut receiver = Quack32::new(20);
    for (i, &id) in sent.iter().enumerate() {
        if !lost.contains(&i) {
            receiver.insert(id);
        }
    }

    // Serialize: t·b + c bits = 82 bytes (Table 2).
    let format = WireFormat::paper_default(20);
    let wire = format.encode(&receiver);
    println!(
        "quACK over {} received packets: {} bytes on the wire",
        receiver.count(),
        wire.len()
    );

    // ---- Sender side -------------------------------------------------------
    // The sender mirrors the same sums over everything it sent…
    let mut sender = Quack32::new(20);
    for &id in &sent {
        sender.insert(id);
    }
    // …decodes the received quACK, and recovers exactly the missing packets.
    let received: PowerSumQuack<sidecar_repro::galois::Fp32> =
        format.decode(&wire, None).expect("valid quACK");
    let decoded = sender
        .decode_against(&received, &sent)
        .expect("within threshold");

    println!("decoded {} missing packets:", decoded.num_missing());
    for &index in decoded.missing() {
        println!("  packet #{index} (identifier {:#010x})", sent[index]);
    }
    assert_eq!(decoded.missing(), &lost[..]);
    assert!(decoded.is_fully_determined());
    println!("matches ground truth ✓");
}
