//! ACK reduction for an uplink-constrained client (paper §2.2).
//!
//! A mobile-style client thins its end-to-end ACKs 16-fold (QUIC
//! ACK-frequency extension); the near-client proxy quACKs every other data
//! packet on its behalf so the server's window still moves at full speed.
//! The client does not participate in the sidecar protocol at all.
//!
//! Run: `cargo run --release --example ack_reduction`

use sidecar_repro::proto::protocols::ack_reduction::AckReductionScenario;

fn main() {
    let scenario = AckReductionScenario {
        total_packets: 3_000,
        ..AckReductionScenario::default()
    };

    println!("ACK reduction: 3000 × 1500 B through a near-client proxy\n");
    let seed = 42;
    let normal = scenario.run_baseline_normal(seed);
    let naive = scenario.run_baseline_reduced(seed);
    let sidecar = scenario.run_sidecar(seed);

    let rows = [
        ("normal  (ACK every 2, no sidecar)", &normal),
        ("naive   (ACK every 32, no sidecar)", &naive),
        ("sidecar (ACK every 32 + quACKs)", &sidecar),
    ];
    for (name, r) in rows {
        println!(
            "{name}: {:>6.2}s, {:>5} client ACKs, {:>4} quACKs",
            r.completion_secs(),
            r.client_acks,
            r.sidecar_messages,
        );
    }
    println!(
        "\nclient ACK reduction: {:.1}x fewer ACKs than normal",
        normal.client_acks as f64 / sidecar.client_acks as f64
    );
    println!(
        "completion penalty: naive {:+.0}%, sidecar {:+.0}%",
        (naive.completion_secs() / normal.completion_secs() - 1.0) * 100.0,
        (sidecar.completion_secs() / normal.completion_secs() - 1.0) * 100.0
    );
    println!(
        "\nThe quACKs (82 bytes each, Table 2) ride the well-provisioned \
         server↔proxy segment; the scarce client uplink carries 16x fewer \
         ACKs."
    );
}
