//! In-network retransmission across a lossy last-mile subpath (paper §2.3).
//!
//! Two sidecar routers bracket a bursty wireless-style hop (Gilbert–Elliott
//! loss). The receiver-side router quACKs what made it across; the
//! sender-side router retransmits the casualties within the ~10 ms subpath
//! RTT instead of the 60+ ms end-to-end RTT. The end hosts run completely
//! unmodified.
//!
//! Run: `cargo run --release --example wifi_retx`

use sidecar_repro::netsim::link::{LinkConfig, LossModel};
use sidecar_repro::netsim::time::SimDuration;
use sidecar_repro::proto::protocols::retx::RetxScenario;

fn main() {
    let scenario = RetxScenario {
        total_packets: 2_000,
        subpath: LinkConfig {
            rate_bps: 20_000_000,
            delay: SimDuration::from_millis(5),
            // Bursty wireless loss: ~1 in 12 packets in the bad state,
            // ≈1.5% average.
            loss: LossModel::GilbertElliott {
                p_good: 0.001,
                p_bad: 0.08,
                good_to_bad: 0.02,
                bad_to_good: 0.08,
            },
            ..LinkConfig::default()
        },
        ..RetxScenario::default()
    };
    let avg_loss = scenario.subpath.loss.mean_loss_rate();

    println!("in-network retransmission over a bursty wireless subpath\n");
    println!(
        "  subpath: 20 Mbit/s, 5 ms, Gilbert–Elliott loss (average {:.2}%)\n",
        avg_loss * 100.0
    );
    for seed in [7u64, 8, 9] {
        let baseline = scenario.run_baseline(seed);
        let sidecar = scenario.run_sidecar(seed);
        println!(
            "seed {seed}: baseline {:>7.2}s, {:>3} e2e retx  |  sidecar {:>7.2}s, {:>3} e2e retx + {:>3} in-network  →  {:.2}x",
            baseline.completion_secs(),
            baseline.server_retransmissions,
            sidecar.completion_secs(),
            sidecar.server_retransmissions,
            sidecar.proxy_retransmissions,
            baseline.completion_secs() / sidecar.completion_secs(),
        );
    }
    println!(
        "\nLosses are healed a subpath-RTT away instead of an e2e-RTT away; \
         the quACK frequency self-tunes to the loss ratio (§4.3)."
    );
}
