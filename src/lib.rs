//! Umbrella crate for the Sidecar (HotNets '22) reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency:
//!
//! * [`galois`] — prime fields, polynomials, Newton's identities.
//! * [`quack`] — the quACK power-sum sketch and the two strawmen.
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`proto`] — sidecar endpoints and the three sidecar protocols.

#![forbid(unsafe_code)]

pub use sidecar_galois as galois;
pub use sidecar_netsim as netsim;
pub use sidecar_proto as proto;
pub use sidecar_quack as quack;
