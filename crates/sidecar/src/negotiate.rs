//! Parameter negotiation: turning a [`SidecarMessage::Hello`] offer into an
//! agreed [`SidecarConfig`].
//!
//! "Sidecars … can also configure sidecar protocol parameters with each
//! other such as the communication frequency and properties of the quACK"
//! (paper §2). PEP assistance is *opt-in* ("hosts would accept that
//! assistance or not"), so the model is offer/accept: the quACK consumer
//! offers the §3.2 parameter triple `(t, b, c)` plus a schedule; the
//! producer accepts it if it falls within its advertised capabilities, or
//! declines and no session forms. No renegotiation mid-epoch — a parameter
//! change is a new epoch with fresh sums.

use crate::config::{QuackFrequency, SidecarConfig};
use crate::messages::SidecarMessage;
use sidecar_netsim::time::SimDuration;

/// What a sidecar is willing to do, advertised out of band (e.g. proxy
/// discovery) or hard-configured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Capabilities {
    /// Largest threshold `t` this side will maintain (bounds per-packet
    /// cost: `t` modular multiplications per packet).
    pub max_threshold: usize,
    /// Identifier widths this side implements.
    pub id_bits: &'static [u32],
    /// Fastest emission interval this side will sustain.
    pub min_interval: SimDuration,
    /// Slowest emission interval this side will accept. Without this bound
    /// a forged (or merely absurd) `Hello` could offer an hours-long
    /// interval and effectively disable quACK feedback while the session
    /// looks healthy.
    pub max_interval: SimDuration,
    /// Grace period this side applies to missing verdicts.
    pub reorder_grace: SimDuration,
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities {
            max_threshold: 256,
            id_bits: &[16, 24, 32, 64],
            min_interval: SimDuration::from_millis(1),
            max_interval: SimDuration::from_secs(10),
            reorder_grace: SimDuration::from_millis(10),
        }
    }
}

/// Why an offer was declined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegotiationError {
    /// Offered threshold exceeds the responder's maximum.
    ThresholdTooLarge {
        /// Offered `t`.
        offered: u32,
        /// Responder's cap.
        max: usize,
    },
    /// The responder does not implement the offered identifier width.
    UnsupportedWidth(u8),
    /// Offered count width cannot be represented (> 32 bits).
    CountWidthTooLarge(u8),
    /// Offered interval is faster than the responder will sustain.
    IntervalTooFast,
    /// Offered interval is slower than the responder will accept (a
    /// too-slow cadence starves feedback — effectively disabling quACKs).
    IntervalTooSlow,
    /// A zero threshold cannot decode anything.
    ZeroThreshold,
    /// The message handed to [`accept_hello`] was not a `Hello` at all —
    /// reachable from the wire (any sidecar datagram can arrive where a
    /// handshake is expected), so it must be an error, not a panic.
    NotHello,
}

impl core::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NegotiationError::ThresholdTooLarge { offered, max } => {
                write!(f, "offered threshold {offered} exceeds capability {max}")
            }
            NegotiationError::UnsupportedWidth(b) => {
                write!(f, "identifier width {b} not implemented")
            }
            NegotiationError::CountWidthTooLarge(c) => {
                write!(f, "count width {c} exceeds 32 bits")
            }
            NegotiationError::IntervalTooFast => write!(f, "offered interval too fast"),
            NegotiationError::IntervalTooSlow => write!(f, "offered interval too slow"),
            NegotiationError::ZeroThreshold => write!(f, "threshold must be at least 1"),
            NegotiationError::NotHello => write!(f, "accept_hello requires a Hello message"),
        }
    }
}

impl std::error::Error for NegotiationError {}

/// Builds the `Hello` offer announcing `config`'s parameters.
pub fn offer(config: &SidecarConfig) -> SidecarMessage {
    let interval = match config.frequency {
        QuackFrequency::Interval(d) | QuackFrequency::Adaptive(d) => d,
        QuackFrequency::EveryPackets(_) => SimDuration::ZERO,
    };
    SidecarMessage::Hello {
        threshold: config.threshold as u32,
        id_bits: config.id_bits as u8,
        count_bits: config.count_bits as u8,
        interval,
    }
}

/// Validates a received `Hello` against local capabilities; on success
/// returns the [`SidecarConfig`] both sides now share.
///
/// A zero `interval` in the offer means a packet-count schedule; the
/// accepted config records it as `EveryPackets(1)` and the actual cadence
/// rides on when the producer's `observe` trips (offer/accept only pins the
/// quACK *shape*, which is what the sums depend on).
pub fn accept_hello(
    capabilities: &Capabilities,
    hello: &SidecarMessage,
) -> Result<SidecarConfig, NegotiationError> {
    let SidecarMessage::Hello {
        threshold,
        id_bits,
        count_bits,
        interval,
    } = hello
    else {
        return Err(NegotiationError::NotHello);
    };
    if *threshold == 0 {
        return Err(NegotiationError::ZeroThreshold);
    }
    if *threshold as usize > capabilities.max_threshold {
        return Err(NegotiationError::ThresholdTooLarge {
            offered: *threshold,
            max: capabilities.max_threshold,
        });
    }
    if !capabilities.id_bits.contains(&(*id_bits as u32)) {
        return Err(NegotiationError::UnsupportedWidth(*id_bits));
    }
    if *count_bits > 32 {
        return Err(NegotiationError::CountWidthTooLarge(*count_bits));
    }
    let frequency = if *interval == SimDuration::ZERO {
        QuackFrequency::EveryPackets(1)
    } else {
        if *interval < capabilities.min_interval {
            return Err(NegotiationError::IntervalTooFast);
        }
        if *interval > capabilities.max_interval {
            return Err(NegotiationError::IntervalTooSlow);
        }
        QuackFrequency::Interval(*interval)
    };
    Ok(SidecarConfig {
        threshold: *threshold as usize,
        id_bits: *id_bits as u32,
        count_bits: *count_bits as u32,
        frequency,
        reorder_grace: capabilities.reorder_grace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_accept_roundtrip() {
        let config = SidecarConfig::paper_default();
        let hello = offer(&config);
        let accepted = accept_hello(&Capabilities::default(), &hello).unwrap();
        assert_eq!(accepted.threshold, config.threshold);
        assert_eq!(accepted.id_bits, config.id_bits);
        assert_eq!(accepted.count_bits, config.count_bits);
        assert_eq!(accepted.frequency, config.frequency);
        // The agreed wire shape is identical on both sides.
        assert_eq!(accepted.wire_format(), config.wire_format());
    }

    #[test]
    fn packet_count_schedules_survive_the_wire() {
        let config = SidecarConfig {
            frequency: QuackFrequency::EveryPackets(2),
            ..SidecarConfig::paper_default()
        };
        let hello = offer(&config);
        let accepted = accept_hello(&Capabilities::default(), &hello).unwrap();
        assert!(matches!(
            accepted.frequency,
            QuackFrequency::EveryPackets(_)
        ));
    }

    #[test]
    fn rejections() {
        let caps = Capabilities {
            max_threshold: 20,
            id_bits: &[32],
            min_interval: SimDuration::from_millis(10),
            max_interval: SimDuration::from_secs(2),
            reorder_grace: SimDuration::from_millis(5),
        };
        let base = SidecarConfig::paper_default();

        let too_big = offer(&SidecarConfig {
            threshold: 21,
            ..base
        });
        assert_eq!(
            accept_hello(&caps, &too_big).unwrap_err(),
            NegotiationError::ThresholdTooLarge {
                offered: 21,
                max: 20
            }
        );

        let wrong_width = offer(&SidecarConfig {
            id_bits: 16,
            ..base
        });
        assert_eq!(
            accept_hello(&caps, &wrong_width).unwrap_err(),
            NegotiationError::UnsupportedWidth(16)
        );

        let too_fast = offer(&SidecarConfig {
            frequency: QuackFrequency::Interval(SimDuration::from_millis(1)),
            ..base
        });
        assert_eq!(
            accept_hello(&caps, &too_fast).unwrap_err(),
            NegotiationError::IntervalTooFast
        );

        // A forged Hello offering an absurdly slow cadence would disable
        // quACK feedback while the session looks healthy — decline it.
        let too_slow = offer(&SidecarConfig {
            frequency: QuackFrequency::Interval(SimDuration::from_secs(3600)),
            ..base
        });
        assert_eq!(
            accept_hello(&caps, &too_slow).unwrap_err(),
            NegotiationError::IntervalTooSlow
        );
        assert!(NegotiationError::IntervalTooSlow
            .to_string()
            .contains("slow"));

        let zero_t = SidecarMessage::Hello {
            threshold: 0,
            id_bits: 32,
            count_bits: 16,
            interval: SimDuration::from_millis(60),
        };
        assert_eq!(
            accept_hello(&caps, &zero_t).unwrap_err(),
            NegotiationError::ZeroThreshold
        );

        let wide_count = SidecarMessage::Hello {
            threshold: 10,
            id_bits: 32,
            count_bits: 64,
            interval: SimDuration::from_millis(60),
        };
        assert_eq!(
            accept_hello(&caps, &wide_count).unwrap_err(),
            NegotiationError::CountWidthTooLarge(64)
        );
        assert!(NegotiationError::CountWidthTooLarge(64)
            .to_string()
            .contains("64"));
    }

    #[test]
    fn responder_grace_is_local_policy() {
        // Grace never travels: each side applies its own reordering slack.
        let caps = Capabilities {
            reorder_grace: SimDuration::from_millis(42),
            ..Capabilities::default()
        };
        let accepted = accept_hello(&caps, &offer(&SidecarConfig::paper_default())).unwrap();
        assert_eq!(accepted.reorder_grace, SimDuration::from_millis(42));
    }

    #[test]
    fn non_hello_is_a_typed_error() {
        // Any sidecar datagram can land where a handshake is expected, so
        // a mis-routed message must decline, never panic.
        for msg in [
            SidecarMessage::Reset { epoch: 1 },
            SidecarMessage::Configure {
                interval: SimDuration::from_millis(5),
            },
            SidecarMessage::Quack {
                epoch: 0,
                bytes: vec![0u8; 82],
            },
        ] {
            assert_eq!(
                accept_hello(&Capabilities::default(), &msg).unwrap_err(),
                NegotiationError::NotHello
            );
        }
        assert!(NegotiationError::NotHello.to_string().contains("Hello"));
    }
}
