//! Authenticated, replay-protected control channel (DESIGN.md §12).
//!
//! The paper's §5 asks "how do we handle adversarial proxies?". Without
//! integrity protection a forged quACK can silently steer the division
//! proxy, a replayed quACK can fabricate losses and trigger bogus proxy
//! retransmissions, and a forged `Reset` can desync epochs at will. This
//! module closes that hole with zero new dependencies: an HMAC-SHA256 over
//! the crate's own [`sidecar_quack::sha256`], truncated to a 16-byte tag,
//! carried on *authenticated twin* wire tags (the same twin-tag pattern
//! [`crate::messages::tag::FLOW_OFFSET`] already uses for flow tagging) so
//! legacy and flow-tagged wire images stay byte-identical.
//!
//! ## Envelope wire format
//!
//! An authenticated datagram reuses the inner message's wire tag shifted by
//! [`crate::messages::tag::AUTH_OFFSET`] (so tags 1..=8 become 9..=16) and
//! wraps the inner body in a fixed 36-byte envelope:
//!
//! ```text
//! [key_id: u32 BE][nonce: u64 BE][seq: u64 BE][mac: 16 bytes][inner body…]
//! ```
//!
//! * `key_id` names the pre-shared secret generation in use.
//! * `nonce` is the *sender's* session nonce, picked once per run per
//!   direction; `(key_id, nonce)` identifies the receive session, so
//!   decoding is stateless (IPsec-SPI style) and the very first sealed
//!   message — the negotiation `Hello` of [`crate::negotiate`] — is what
//!   establishes the session at the responder. That is the "key-id/nonce
//!   piggybacked on the Hello exchange": the negotiation wire body itself
//!   is unchanged.
//! * `seq` increases monotonically per sender and feeds an RFC 4303-style
//!   sliding [`ReplayWindow`] at the receiver, so within-run replays are
//!   rejected *before* the inner body is even decoded. Cross-run replay is
//!   out of scope: a fresh run re-derives fresh session nonces (and the
//!   simulator's adversary can only capture in-run traffic anyway).
//! * `mac` is the first 16 bytes of `HMAC-SHA256(session_key, domain ||
//!   auth_tag || key_id || nonce || seq || inner_body)` with the
//!   domain-separation string in this module's `DOMAIN`. (The literal is
//!   deliberately
//!   not spelled out in any doc comment: rustc embeds docs in rlib
//!   metadata, and CI greps the auth-off rlib to prove the string — and
//!   with it the MAC machinery — compiled out.)
//!
//! The per-session key is `HMAC-SHA256(psk, domain || key_id || nonce)` —
//! derived independently by any receiver holding the same pre-shared
//! secret, but distinct per direction because each sender owns its nonce.
//!
//! With the `auth` cargo feature disabled the module compiles down to a
//! passthrough twin: [`ChannelAuth`] keeps its API but seals to the plain
//! flow encoding and opens with the plain decoder (no authentication), and
//! none of the cryptographic machinery — including the domain-separation
//! literal — reaches the binary.

use crate::config::AuthConfig;
#[cfg(feature = "auth")]
use crate::messages::tag;
use crate::messages::{MessageError, SidecarMessage};
#[cfg(feature = "auth")]
use sidecar_quack::sha256::Sha256;
#[cfg(feature = "auth")]
use std::collections::HashMap;

/// Truncated MAC length carried on the wire (bytes).
pub const MAC_LEN: usize = 16;

/// Fixed envelope overhead of an authenticated datagram body (bytes):
/// key id (4) + nonce (8) + sequence (8) + truncated MAC (16).
pub const AUTH_OVERHEAD: usize = 4 + 8 + 8 + MAC_LEN;

/// Sliding replay-window width in sequence numbers (RFC 4303 uses 64).
pub const REPLAY_WINDOW: u64 = 64;

/// Why an inbound control datagram was rejected by [`ChannelAuth::open`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// The datagram does not carry an authenticated twin tag at all. An
    /// authenticated receiver accepts *only* sealed control traffic, so
    /// plain legacy/flow tags (and arbitrary unknown tags) land here.
    NotAuthenticated(u8),
    /// The body is too short to hold the authentication envelope.
    Truncated,
    /// The key id does not name the configured pre-shared secret.
    UnknownKey(u32),
    /// The MAC did not verify: forged or tampered content.
    BadMac,
    /// The sequence number was already accepted (within-run replay).
    Replayed,
    /// The sequence number fell behind the sliding replay window.
    Stale,
    /// The MAC verified but the inner body failed to decode. Honest
    /// senders never produce this; it exists so `open` stays total.
    Malformed(MessageError),
}

impl AuthError {
    /// Stable short label for metrics counters (`auth.rejected.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            AuthError::NotAuthenticated(_) => "unauthenticated",
            AuthError::Truncated => "truncated",
            AuthError::UnknownKey(_) => "unknown_key",
            AuthError::BadMac => "bad_mac",
            AuthError::Replayed => "replayed",
            AuthError::Stale => "stale",
            AuthError::Malformed(_) => "malformed",
        }
    }
}

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuthError::NotAuthenticated(t) => {
                write!(f, "unauthenticated control datagram (tag {t})")
            }
            AuthError::Truncated => write!(f, "truncated authentication envelope"),
            AuthError::UnknownKey(id) => write!(f, "unknown key id {id}"),
            AuthError::BadMac => write!(f, "MAC verification failed"),
            AuthError::Replayed => write!(f, "replayed control sequence number"),
            AuthError::Stale => write!(f, "control sequence number behind replay window"),
            AuthError::Malformed(e) => write!(f, "authenticated but malformed: {e}"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Counters kept by a [`ChannelAuth`] endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuthStats {
    /// Datagrams sealed and handed to the wire.
    pub sealed: u64,
    /// Inbound datagrams that passed every check.
    pub accepted: u64,
    /// Inbound datagrams rejected (any [`AuthError`]).
    pub rejected: u64,
}

/// HMAC-SHA256 (RFC 2104) over the crate's own SHA-256 core.
#[cfg(feature = "auth")]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut block = [0u8; BLOCK];
    if key.len() > BLOCK {
        block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = block[i] ^ 0x36;
        opad[i] = block[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_hash = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// Domain-separation string for every MAC and key derivation in this
/// module (also the literal the CI auth-off compile-out check greps for).
#[cfg(feature = "auth")]
const DOMAIN: &[u8] = b"sidecar-auth-v1";

/// Derives the per-session key for `(key_id, nonce)` from the pre-shared
/// secret. Any endpoint holding `psk` can derive any session's key, which
/// is what makes decoding stateless; directions differ because each sender
/// owns its nonce.
#[cfg(feature = "auth")]
fn session_key(psk: &[u8; 32], key_id: u32, nonce: u64) -> [u8; 32] {
    let mut msg = Vec::with_capacity(DOMAIN.len() + 12);
    msg.extend_from_slice(DOMAIN);
    msg.extend_from_slice(&key_id.to_be_bytes());
    msg.extend_from_slice(&nonce.to_be_bytes());
    hmac_sha256(psk, &msg)
}

/// Computes the truncated envelope MAC. The authenticated tag byte and the
/// full envelope header are folded in, so nothing outside the (unprotected)
/// link headers is malleable.
#[cfg(feature = "auth")]
fn mac16(
    key: &[u8; 32],
    auth_tag: u8,
    key_id: u32,
    nonce: u64,
    seq: u64,
    inner: &[u8],
) -> [u8; MAC_LEN] {
    let mut msg = Vec::with_capacity(DOMAIN.len() + 21 + inner.len());
    msg.extend_from_slice(DOMAIN);
    msg.push(auth_tag);
    msg.extend_from_slice(&key_id.to_be_bytes());
    msg.extend_from_slice(&nonce.to_be_bytes());
    msg.extend_from_slice(&seq.to_be_bytes());
    msg.extend_from_slice(inner);
    let full = hmac_sha256(key, &msg);
    let mut out = [0u8; MAC_LEN];
    out.copy_from_slice(&full[..MAC_LEN]);
    out
}

/// Constant-time byte comparison (single accumulated difference bit).
#[cfg(feature = "auth")]
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// RFC 4303-style sliding replay window: highest accepted sequence number
/// plus a 64-bit bitmap of recently accepted ones. Sequence numbers start
/// at 1 (0 is never valid on the wire).
#[cfg(feature = "auth")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayWindow {
    /// Highest sequence number accepted so far (0 = nothing yet).
    max: u64,
    /// Bit `i` set ⇔ `max - i` was accepted (bit 0 is `max` itself).
    bitmap: u64,
}

#[cfg(feature = "auth")]
impl ReplayWindow {
    /// A fresh window that has accepted nothing.
    pub fn new() -> Self {
        ReplayWindow::default()
    }

    /// Highest sequence number accepted so far (0 = none).
    pub fn max_seq(&self) -> u64 {
        self.max
    }

    /// Checks `seq` against the window and, when acceptable, marks it
    /// accepted. Exactly one acceptance per sequence number, ever.
    pub fn check_and_update(&mut self, seq: u64) -> Result<(), AuthError> {
        if seq == 0 {
            return Err(AuthError::Stale);
        }
        if self.max == 0 || seq > self.max {
            let shift = seq - self.max;
            self.bitmap = if self.max == 0 || shift >= REPLAY_WINDOW {
                1
            } else {
                (self.bitmap << shift) | 1
            };
            self.max = seq;
            return Ok(());
        }
        let behind = self.max - seq;
        if behind >= REPLAY_WINDOW {
            return Err(AuthError::Stale);
        }
        let bit = 1u64 << behind;
        if self.bitmap & bit != 0 {
            return Err(AuthError::Replayed);
        }
        self.bitmap |= bit;
        Ok(())
    }
}

/// One receive session: the derived key and its replay window.
#[cfg(feature = "auth")]
#[derive(Clone, Debug)]
struct RxSession {
    key: [u8; 32],
    window: ReplayWindow,
}

/// One endpoint's authenticated control channel: seals outbound messages
/// under its own `(key_id, nonce)` session and opens inbound datagrams
/// against lazily derived per-sender receive sessions.
///
/// Receive sessions are only cached *after* a MAC verifies, so an attacker
/// spraying bogus nonces cannot grow the session map: every entry proves
/// knowledge of the pre-shared secret.
#[cfg(feature = "auth")]
#[derive(Clone, Debug)]
pub struct ChannelAuth {
    cfg: AuthConfig,
    tx_key: [u8; 32],
    tx_seq: u64,
    rx: HashMap<(u32, u64), RxSession>,
    /// Seal/open counters.
    pub stats: AuthStats,
}

#[cfg(feature = "auth")]
impl ChannelAuth {
    /// Creates an endpoint. `cfg.nonce` is this sender's session nonce and
    /// must be unique among the peers sharing `cfg.psk` within a run.
    pub fn new(cfg: AuthConfig) -> Self {
        ChannelAuth {
            tx_key: session_key(&cfg.psk, cfg.key_id, cfg.nonce),
            cfg,
            tx_seq: 0,
            rx: HashMap::new(),
            stats: AuthStats::default(),
        }
    }

    /// Next outbound sequence number (the count of sealed datagrams).
    pub fn tx_seq(&self) -> u64 {
        self.tx_seq
    }

    /// Seals `msg` for `flow` into an authenticated `(tag, body)` pair.
    pub fn seal(&mut self, msg: &SidecarMessage, flow: u32) -> (u8, Vec<u8>) {
        let (inner_tag, inner) = msg.encode_for_flow(flow);
        let auth_tag = inner_tag + tag::AUTH_OFFSET;
        self.tx_seq += 1;
        let mac = mac16(
            &self.tx_key,
            auth_tag,
            self.cfg.key_id,
            self.cfg.nonce,
            self.tx_seq,
            &inner,
        );
        let mut body = Vec::with_capacity(AUTH_OVERHEAD + inner.len());
        body.extend_from_slice(&self.cfg.key_id.to_be_bytes());
        body.extend_from_slice(&self.cfg.nonce.to_be_bytes());
        body.extend_from_slice(&self.tx_seq.to_be_bytes());
        body.extend_from_slice(&mac);
        body.extend_from_slice(&inner);
        self.stats.sealed += 1;
        (auth_tag, body)
    }

    /// Opens an inbound `(tag, body)` pair: envelope parse, key check, MAC
    /// verification, replay-window check, and only *then* the inner decode
    /// — a replayed datagram is rejected before its body is ever parsed.
    pub fn open(&mut self, tag_byte: u8, body: &[u8]) -> Result<(u32, SidecarMessage), AuthError> {
        let res = self.open_inner(tag_byte, body);
        match res {
            Ok(_) => self.stats.accepted += 1,
            Err(_) => self.stats.rejected += 1,
        }
        res
    }

    fn open_inner(
        &mut self,
        tag_byte: u8,
        body: &[u8],
    ) -> Result<(u32, SidecarMessage), AuthError> {
        let lo = tag::QUACK + tag::AUTH_OFFSET;
        let hi = tag::HELLO_FLOW + tag::AUTH_OFFSET;
        if !(lo..=hi).contains(&tag_byte) {
            return Err(AuthError::NotAuthenticated(tag_byte));
        }
        if body.len() < AUTH_OVERHEAD {
            return Err(AuthError::Truncated);
        }
        let key_id = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
        let nonce = u64::from_be_bytes(body[4..12].try_into().expect("8 bytes"));
        let seq = u64::from_be_bytes(body[12..20].try_into().expect("8 bytes"));
        let mac = &body[20..20 + MAC_LEN];
        let inner = &body[AUTH_OVERHEAD..];
        if key_id != self.cfg.key_id {
            return Err(AuthError::UnknownKey(key_id));
        }
        // Derive (or fetch) the sender's session key, verify the MAC, and
        // only cache the session once the MAC proves knowledge of the PSK.
        let key = match self.rx.get(&(key_id, nonce)) {
            Some(session) => session.key,
            None => session_key(&self.cfg.psk, key_id, nonce),
        };
        let expect = mac16(&key, tag_byte, key_id, nonce, seq, inner);
        if !ct_eq(&expect, mac) {
            return Err(AuthError::BadMac);
        }
        let session = self.rx.entry((key_id, nonce)).or_insert_with(|| RxSession {
            key,
            window: ReplayWindow::new(),
        });
        session.window.check_and_update(seq)?;
        SidecarMessage::decode_flow(tag_byte - tag::AUTH_OFFSET, inner)
            .map_err(AuthError::Malformed)
    }
}

/// Passthrough twin compiled when the `auth` feature is off: same API, no
/// authentication — seals to the plain flow encoding and opens with the
/// plain decoder. The adversarial scenarios and their guarantees require
/// the real implementation (the default build).
#[cfg(not(feature = "auth"))]
#[derive(Clone, Debug)]
pub struct ChannelAuth {
    #[allow(dead_code)]
    cfg: AuthConfig,
    /// Seal/open counters.
    pub stats: AuthStats,
}

#[cfg(not(feature = "auth"))]
impl ChannelAuth {
    /// Creates a passthrough endpoint (no authentication in this build).
    pub fn new(cfg: AuthConfig) -> Self {
        ChannelAuth {
            cfg,
            stats: AuthStats::default(),
        }
    }

    /// Number of datagrams sealed so far.
    pub fn tx_seq(&self) -> u64 {
        self.stats.sealed
    }

    /// Plain flow encoding (no envelope in this build).
    pub fn seal(&mut self, msg: &SidecarMessage, flow: u32) -> (u8, Vec<u8>) {
        self.stats.sealed += 1;
        msg.encode_for_flow(flow)
    }

    /// Plain flow decoding (no verification in this build).
    pub fn open(&mut self, tag_byte: u8, body: &[u8]) -> Result<(u32, SidecarMessage), AuthError> {
        match SidecarMessage::decode_flow(tag_byte, body) {
            Ok(ok) => {
                self.stats.accepted += 1;
                Ok(ok)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(AuthError::Malformed(e))
            }
        }
    }
}

#[cfg(all(test, feature = "auth"))]
mod tests {
    use super::*;
    use sidecar_netsim::time::SimDuration;

    fn cfg(nonce: u64) -> AuthConfig {
        AuthConfig::from_secret(0xFEED_FACE_CAFE_BEEF, 1).with_nonce(nonce)
    }

    fn sample_messages() -> Vec<SidecarMessage> {
        vec![
            SidecarMessage::Quack {
                epoch: 7,
                bytes: vec![0xAB; 82],
            },
            SidecarMessage::Configure {
                interval: SimDuration::from_millis(9),
            },
            SidecarMessage::Reset { epoch: 41 },
            SidecarMessage::Hello {
                threshold: 20,
                id_bits: 32,
                count_bits: 16,
                interval: SimDuration::from_millis(60),
            },
        ]
    }

    #[test]
    fn hmac_sha256_rfc4231_vectors() {
        // RFC 4231 test case 1.
        let out = hmac_sha256(&[0x0b; 20], b"Hi There");
        let expect = [
            0xb0, 0x34, 0x4c, 0x61, 0xd8, 0xdb, 0x38, 0x53, 0x5c, 0xa8, 0xaf, 0xce, 0xaf, 0x0b,
            0xf1, 0x2b, 0x88, 0x1d, 0xc2, 0x00, 0xc9, 0x83, 0x3d, 0xa7, 0x26, 0xe9, 0x37, 0x6c,
            0x2e, 0x32, 0xcf, 0xf7,
        ];
        assert_eq!(out, expect);
        // RFC 4231 test case 2 ("Jefe").
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        let expect = [
            0x5b, 0xdc, 0xc1, 0x46, 0xbf, 0x60, 0x75, 0x4e, 0x6a, 0x04, 0x24, 0x26, 0x08, 0x95,
            0x75, 0xc7, 0x5a, 0x00, 0x3f, 0x08, 0x9d, 0x27, 0x39, 0x83, 0x9d, 0xec, 0x58, 0xb9,
            0x64, 0xec, 0x38, 0x43,
        ];
        assert_eq!(out, expect);
        // RFC 4231 test case 6: key longer than the block size gets hashed.
        let out = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        let expect = [
            0x60, 0xe4, 0x31, 0x59, 0x1e, 0xe0, 0xb6, 0x7f, 0x0d, 0x8a, 0x26, 0xaa, 0xcb, 0xf5,
            0xb7, 0x7f, 0x8e, 0x0b, 0xc6, 0x21, 0x37, 0x28, 0xc5, 0x14, 0x05, 0x46, 0x04, 0x0f,
            0x0e, 0xe3, 0x7f, 0x54,
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn seal_open_roundtrip_every_variant_and_flow() {
        for flow in [0u32, 1, 0xC0FFEE] {
            let mut tx = ChannelAuth::new(cfg(1));
            let mut rx = ChannelAuth::new(cfg(2));
            for msg in sample_messages() {
                let (t, body) = tx.seal(&msg, flow);
                let (inner_tag, _) = msg.encode_for_flow(flow);
                assert_eq!(t, inner_tag + tag::AUTH_OFFSET);
                let (got_flow, got) = rx.open(t, &body).expect("honest seal must open");
                assert_eq!(got_flow, flow);
                assert_eq!(got, msg);
            }
        }
    }

    #[test]
    fn forged_datagram_with_wrong_psk_is_rejected() {
        let mut attacker = ChannelAuth::new(AuthConfig::from_secret(0x0BAD_0BAD, 1).with_nonce(66));
        let mut rx = ChannelAuth::new(cfg(2));
        let (t, body) = attacker.seal(&SidecarMessage::Reset { epoch: 99 }, 0);
        assert_eq!(rx.open(t, &body), Err(AuthError::BadMac));
        assert_eq!(rx.stats.accepted, 0);
    }

    #[test]
    fn unauthenticated_tags_are_rejected_outright() {
        let mut rx = ChannelAuth::new(cfg(2));
        let msg = SidecarMessage::Reset { epoch: 5 };
        // Legacy and flow-tagged (unsealed) encodings both land outside the
        // authenticated tag range.
        for flow in [0u32, 9] {
            let (t, body) = msg.encode_for_flow(flow);
            assert_eq!(rx.open(t, &body), Err(AuthError::NotAuthenticated(t)));
        }
        assert_eq!(
            rx.open(200, &[0; 64]),
            Err(AuthError::NotAuthenticated(200))
        );
    }

    #[test]
    fn tampered_bytes_are_rejected_everywhere() {
        let mut tx = ChannelAuth::new(cfg(1));
        let (t, body) = tx.seal(
            &SidecarMessage::Quack {
                epoch: 3,
                bytes: vec![0x44; 82],
            },
            7,
        );
        for i in 0..body.len() {
            let mut rx = ChannelAuth::new(cfg(2));
            let mut evil = body.clone();
            evil[i] ^= 0x01;
            let err = rx.open(t, &evil).expect_err("bit flip must be rejected");
            assert!(
                matches!(
                    err,
                    AuthError::BadMac | AuthError::UnknownKey(_) | AuthError::Stale
                ),
                "byte {i}: unexpected {err:?}"
            );
            assert_eq!(rx.stats.accepted, 0);
        }
        // Flipping the tag byte within the authenticated range must fail
        // too (the tag is folded into the MAC).
        let mut rx = ChannelAuth::new(cfg(2));
        let other = if t == tag::QUACK + tag::AUTH_OFFSET {
            tag::RESET + tag::AUTH_OFFSET
        } else {
            tag::QUACK + tag::AUTH_OFFSET
        };
        assert_eq!(rx.open(other, &body), Err(AuthError::BadMac));
    }

    #[test]
    fn truncated_envelope_is_rejected() {
        let mut tx = ChannelAuth::new(cfg(1));
        let (t, body) = tx.seal(&SidecarMessage::Reset { epoch: 1 }, 0);
        let mut rx = ChannelAuth::new(cfg(2));
        assert_eq!(
            rx.open(t, &body[..AUTH_OVERHEAD - 1]),
            Err(AuthError::Truncated)
        );
    }

    #[test]
    fn replayed_datagram_is_rejected_and_only_once_accepted() {
        let mut tx = ChannelAuth::new(cfg(1));
        let mut rx = ChannelAuth::new(cfg(2));
        let (t, body) = tx.seal(&SidecarMessage::Reset { epoch: 1 }, 0);
        assert!(rx.open(t, &body).is_ok());
        for _ in 0..3 {
            assert_eq!(rx.open(t, &body), Err(AuthError::Replayed));
        }
        assert_eq!(rx.stats.accepted, 1);
        assert_eq!(rx.stats.rejected, 3);
    }

    #[test]
    fn sessions_are_directional() {
        // tx seals under nonce 1; a datagram replayed *back at the sender*
        // still verifies (same PSK) but lands in a distinct (key_id, nonce)
        // session — it cannot confuse tx's own outbound sequence space.
        let mut tx = ChannelAuth::new(cfg(1));
        let (t, body) = tx.seal(&SidecarMessage::Reset { epoch: 1 }, 0);
        let mut tx2 = tx.clone();
        assert!(tx2.open(t, &body).is_ok());
        assert_eq!(tx2.open(t, &body), Err(AuthError::Replayed));
    }

    #[test]
    fn wrong_key_id_is_rejected() {
        let mut tx = ChannelAuth::new(cfg(1));
        let (t, body) = tx.seal(&SidecarMessage::Reset { epoch: 1 }, 0);
        let mut rx =
            ChannelAuth::new(AuthConfig::from_secret(0xFEED_FACE_CAFE_BEEF, 2).with_nonce(2));
        assert_eq!(rx.open(t, &body), Err(AuthError::UnknownKey(1)));
    }

    #[test]
    fn replay_window_accepts_reordering_within_the_window() {
        let mut w = ReplayWindow::new();
        assert!(w.check_and_update(10).is_ok());
        assert!(w.check_and_update(7).is_ok());
        assert!(w.check_and_update(9).is_ok());
        assert_eq!(w.check_and_update(7), Err(AuthError::Replayed));
        assert!(w.check_and_update(100).is_ok());
        // 100 - 64 = 36: anything at or below is stale now.
        assert_eq!(w.check_and_update(36), Err(AuthError::Stale));
        assert!(w.check_and_update(37).is_ok());
        assert_eq!(w.check_and_update(0), Err(AuthError::Stale));
    }

    #[test]
    fn auth_wire_overhead_is_fixed() {
        let mut tx = ChannelAuth::new(cfg(1));
        for msg in sample_messages() {
            for flow in [0u32, 5] {
                let (_, inner) = msg.encode_for_flow(flow);
                let (_, sealed) = tx.seal(&msg, flow);
                assert_eq!(sealed.len(), inner.len() + AUTH_OVERHEAD);
            }
        }
    }
}
