//! A bounded, slab-backed table of per-flow sidecar sessions.
//!
//! The paper's three protocols (§2.1–§2.3) are *per-connection* mechanisms:
//! a quACK sketch summarizes the packets of one flow, and mixing two flows
//! into one sketch makes the decoded missing-set meaningless to both. A
//! deployed sidecar therefore keys its producer/consumer state on the
//! cleartext 4-tuple ([`sidecar_netsim::packet::Packet::flow`]) — and,
//! because it serves arbitrarily many connections with finite memory, that
//! state must live behind a bounded table with an explicit eviction policy
//! (the central deployment problem for transparent QUIC PEPs; see
//! PEMI / Secure Middlebox-Assisted QUIC).
//!
//! [`FlowTable`] is that table, built for the ISP-scale vantage point the
//! paper deploys at (100k+ concurrent flows):
//!
//! * **Slab arena.** Sessions live in a free-listed slot arena that grows
//!   once to the configured capacity and then recycles slots forever —
//!   steady-state insert/evict churn never touches the allocator, and
//!   bytes/flow is a measurable constant ([`FlowTable::bytes_per_flow`]).
//! * **Open-addressed index.** A linear-probe hash table (sized to ≤ 0.5
//!   load, keyed by the same Fibonacci multiplicative hash that spreads
//!   flows over shards) maps `FlowId → slot` in O(1); deletions use
//!   backward-shift compaction, so probe chains never rot with tombstones.
//! * **Intrusive per-shard LRU.** Each shard threads its slots on an
//!   intrusive doubly-linked list (u32 slot indices, most recent at the
//!   head). Because touch times are monotone, the list tail is always the
//!   stalest entry, idle entries form a contiguous tail suffix, and both
//!   eviction triggers — the idle deadline and LRU-under-pressure — pop
//!   from the tail in O(1) per eviction.
//!
//! The eviction *policy* is unchanged from the original scan-based table
//! (kept verbatim in [`legacy`] as an equivalence oracle): a fixed shard
//! count, a per-shard capacity cap, idle reclamation before LRU pressure.
//! Eviction is deliberately *safe*: sidecar state is an accelerator, never
//! the source of truth, so a reclaimed session costs one epoch
//! resynchronization round (the existing `Reset`/`Hello` machinery) and the
//! flow falls back to its end-to-end transport in the meantime.
//!
//! Interleaved multi-flow arrival is the realistic input at a shared
//! vantage point, and it defeats the producer's lane-parallel
//! `insert_batch` if every packet is folded one at a time. [`FoldBuffer`]
//! restores the batch: it buffers `(slot, identifier)` pairs as packets
//! arrive, then buckets them by slot with one in-place sort and hands each
//! flow's run to the caller as a contiguous batch — power-sum folds are
//! commutative within an epoch, so deferring them to the flush is
//! semantically free as long as callers flush before reading, resetting, or
//! evicting a sketch.
//!
//! The table is deterministic: shard placement depends only on the flow id,
//! slot assignment and iteration order only on the operation history, so
//! simulated runs stay reproducible for a given seed. Callers must supply
//! monotone non-decreasing `now` values (simulation time), which is what
//! keeps the LRU lists sorted by staleness.

use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};

/// Sizing and eviction knobs for a [`FlowTable`].
#[derive(Clone, Copy, Debug)]
pub struct FlowTableConfig {
    /// Number of shards (fixed at construction; values are clamped to at
    /// least 1). Flow ids are spread across shards by a multiplicative
    /// hash; a shard is the unit of LRU pressure, so shard count times
    /// [`FlowTableConfig::per_shard`] bounds capacity, not scan cost —
    /// every operation is O(1) regardless.
    pub shards: usize,
    /// Maximum live sessions per shard (clamped to at least 1). Total
    /// capacity is `shards * per_shard`.
    pub per_shard: usize,
    /// A session untouched for this long is evictable: inserts reclaim
    /// idle sessions before resorting to LRU, and [`FlowTable::sweep_idle`]
    /// reclaims them eagerly.
    pub idle_timeout: SimDuration,
}

impl Default for FlowTableConfig {
    /// Defaults sized so the classic single-flow scenarios never evict
    /// (capacity 8×64 = 512, idle deadline beyond their 120 s horizon).
    fn default() -> Self {
        FlowTableConfig {
            shards: 8,
            per_shard: 64,
            idle_timeout: SimDuration::from_secs(300),
        }
    }
}

impl FlowTableConfig {
    /// A config sized to hold `flows` concurrent sessions without capacity
    /// pressure: shard count rounded up to a power of two at a mean load
    /// of ≤ 64 flows, with per-shard caps of 128 — 2× headroom, because
    /// hashed shard placement is never perfectly balanced and a spuriously
    /// overfull shard would evict live flows. The many-flow benchmarks and
    /// scenarios use this to sweep table sizes without hand-picking shard
    /// counts.
    pub fn sized_for(flows: usize, idle_timeout: SimDuration) -> Self {
        let shards = flows.div_ceil(64).next_power_of_two();
        FlowTableConfig {
            shards,
            per_shard: 128,
            idle_timeout,
        }
    }
}

/// Monotonic occupancy/eviction counters, drained with
/// [`FlowTable::take_stats`] (delta-since-last-drain, so callers can feed
/// them straight into monotonic obs counters).
///
/// Counters are bumped at the single eviction/creation site, one event at
/// a time — never batch-added at the end of a sweep — so a drain taken
/// *between* the evictions of one sweep (e.g. a bounded
/// [`FlowTable::sweep_idle_limit`] interleaved with metric flushes) sees
/// exactly the evictions that happened, with no double count and no loss.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Sessions created.
    pub created: u64,
    /// Sessions reclaimed by the idle deadline.
    pub evicted_idle: u64,
    /// Sessions reclaimed by LRU pressure (insert into a full shard).
    pub evicted_capacity: u64,
    /// Inserts that landed in a shard already holding another flow.
    pub shard_collisions: u64,
}

impl FlowTableStats {
    /// Total evictions, either cause.
    pub fn evicted(&self) -> u64 {
        self.evicted_idle + self.evicted_capacity
    }

    fn is_empty(&self) -> bool {
        *self == FlowTableStats::default()
    }
}

/// Sentinel for "no slot" in the free list, LRU links, and the index.
const NIL: u32 = u32::MAX;

/// Why a slot is being reclaimed (selects the stats counter to bump).
enum EvictCause {
    Idle,
    Capacity,
    Remove,
}

/// One arena slot: session storage plus the intrusive LRU links.
///
/// `prev`/`next` thread the slot onto its shard's recency list while live
/// (`prev` toward the MRU head); `next` doubles as the free-list link while
/// dead. `gen` bumps every time the slot is freed, invalidating any
/// [`SlotId`] handed out for its previous occupant.
struct Slot<S> {
    flow: FlowId,
    last_used: SimTime,
    gen: u32,
    prev: u32,
    next: u32,
    session: Option<S>,
}

/// Head/tail of one shard's intrusive LRU list (head = most recent).
#[derive(Clone, Copy)]
struct ShardList {
    head: u32,
    tail: u32,
    len: u32,
}

impl ShardList {
    const EMPTY: ShardList = ShardList {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// A stable, generation-checked handle to a live table slot.
///
/// Hot paths that would otherwise probe the index twice per packet
/// (`ensure`, then lookup) hold the slot id returned by
/// [`FlowTable::ensure_slot`] and re-enter through
/// [`FlowTable::slot_entry_mut`] in O(1) with no hashing. A handle is
/// invalidated the moment its slot is evicted — even if the same flow (or
/// another) later reuses the slot — so stale handles can never touch the
/// wrong session, only miss.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

/// A sharded `FlowId → session` map with bounded capacity, LRU-within-shard
/// eviction, and idle-deadline reclamation — O(1) lookup/insert/evict over
/// a slab arena. See the module docs for layout and policy.
pub struct FlowTable<S> {
    cfg: FlowTableConfig,
    /// Slot arena; grows (amortized) to at most `capacity()` slots and then
    /// recycles through the free list.
    slots: Vec<Slot<S>>,
    /// Head of the free list threaded through dead slots' `next` links.
    free_head: u32,
    /// Open-addressed `FlowId → slot` index (power-of-two size, ≤ 0.5 load,
    /// linear probing, backward-shift deletion).
    index: Vec<u32>,
    /// `64 - log2(index.len())`: the Fibonacci-hash shift for ideal slots.
    index_shift: u32,
    shards: Vec<ShardList>,
    live: usize,
    stats: FlowTableStats,
}

impl<S> FlowTable<S> {
    /// Builds an empty table. Zero `shards`/`per_shard` are clamped to 1.
    pub fn new(cfg: FlowTableConfig) -> Self {
        let cfg = FlowTableConfig {
            shards: cfg.shards.max(1),
            per_shard: cfg.per_shard.max(1),
            ..cfg
        };
        let capacity = cfg.shards * cfg.per_shard;
        assert!(
            capacity < NIL as usize,
            "flow table capacity must fit in a u32 slot index"
        );
        // ≤ 0.5 load keeps linear-probe chains short and guarantees the
        // probe loop terminates (the index can never fill).
        let index_len = (capacity * 2).next_power_of_two().max(8);
        FlowTable {
            cfg,
            slots: Vec::new(),
            free_head: NIL,
            index: vec![NIL; index_len],
            index_shift: 64 - index_len.trailing_zeros(),
            shards: vec![ShardList::EMPTY; cfg.shards],
            live: 0,
            stats: FlowTableStats::default(),
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &FlowTableConfig {
        &self.cfg
    }

    /// Maximum number of live sessions.
    pub fn capacity(&self) -> usize {
        self.cfg.shards * self.cfg.per_shard
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Bytes currently committed to the table's own machinery: the slot
    /// arena (inline session storage included), the open-addressed index,
    /// and the shard list heads. Excludes any heap the sessions themselves
    /// own (sketch vectors etc.) — those are the protocol's cost, not the
    /// table's.
    pub fn arena_bytes(&self) -> usize {
        self.slots.capacity() * core::mem::size_of::<Slot<S>>()
            + self.index.len() * core::mem::size_of::<u32>()
            + self.shards.len() * core::mem::size_of::<ShardList>()
    }

    /// [`FlowTable::arena_bytes`] divided by the slots actually provisioned
    /// — the steady-state per-flow footprint once the arena has grown to
    /// its working set (at full occupancy: the exact bytes/flow figure).
    pub fn bytes_per_flow(&self) -> usize {
        self.arena_bytes() / self.slots.len().max(1)
    }

    /// Fibonacci multiplicative mix of the flow id: cheap, stateless, and
    /// well-distributed even for sequential ids. Shard selection uses the
    /// upper-middle bits (exactly as the legacy table did, so shard
    /// placement is bit-identical); the index uses the top bits.
    fn mix(flow: FlowId) -> u64 {
        (flow.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn shard_index(&self, flow: FlowId) -> usize {
        ((Self::mix(flow) >> 32) as usize) % self.cfg.shards
    }

    fn ideal_pos(&self, flow: FlowId) -> usize {
        (Self::mix(flow) >> self.index_shift) as usize
    }

    /// Linear probe: `Ok((index_pos, slot))` when `flow` is live,
    /// `Err(insert_pos)` (the first empty cell on its chain) when absent.
    fn probe(&self, flow: FlowId) -> Result<(usize, u32), usize> {
        let mask = self.index.len() - 1;
        let mut pos = self.ideal_pos(flow);
        loop {
            let slot = self.index[pos];
            if slot == NIL {
                return Err(pos);
            }
            if self.slots[slot as usize].flow == flow {
                return Ok((pos, slot));
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Deletes the index cell at `hole`, compacting the probe chain behind
    /// it (backward-shift deletion): every displaced entry whose ideal
    /// position is at or before the hole moves into it, so lookups never
    /// need tombstones and chains stay as short as a fresh build.
    fn index_remove_at(&mut self, mut hole: usize) {
        let mask = self.index.len() - 1;
        self.index[hole] = NIL;
        let mut pos = hole;
        loop {
            pos = (pos + 1) & mask;
            let slot = self.index[pos];
            if slot == NIL {
                return;
            }
            let ideal = self.ideal_pos(self.slots[slot as usize].flow);
            let probe_dist = pos.wrapping_sub(ideal) & mask;
            let hole_dist = pos.wrapping_sub(hole) & mask;
            if probe_dist >= hole_dist {
                self.index[hole] = slot;
                self.index[pos] = NIL;
                hole = pos;
            }
        }
    }

    fn unlink(&mut self, shard: usize, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.shards[shard].head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.shards[shard].tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.shards[shard].len -= 1;
    }

    fn link_head(&mut self, shard: usize, slot: u32) {
        let head = self.shards[shard].head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = head;
        }
        if head == NIL {
            self.shards[shard].tail = slot;
        } else {
            self.slots[head as usize].prev = slot;
        }
        self.shards[shard].head = slot;
        self.shards[shard].len += 1;
    }

    /// Refreshes `slot`'s idle clock and moves it to its shard's MRU head.
    fn touch(&mut self, slot: u32, now: SimTime) {
        self.slots[slot as usize].last_used = now;
        let shard = self.shard_index(self.slots[slot as usize].flow);
        if self.shards[shard].head != slot {
            self.unlink(shard, slot);
            self.link_head(shard, slot);
        }
    }

    fn is_idle(&self, slot: u32, now: SimTime) -> bool {
        self.slots[slot as usize].last_used + self.cfg.idle_timeout <= now
    }

    /// Takes a slot from the free list or grows the arena by one.
    fn alloc_slot(&mut self, flow: FlowId, now: SimTime, session: S) -> u32 {
        let slot = if self.free_head == NIL {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                flow,
                last_used: now,
                gen: 0,
                prev: NIL,
                next: NIL,
                session: Some(session),
            });
            slot
        } else {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            self.free_head = s.next;
            s.flow = flow;
            s.last_used = now;
            s.session = Some(session);
            slot
        };
        self.live += 1;
        let shard = self.shard_index(flow);
        self.link_head(shard, slot);
        slot
    }

    /// The single reclamation site: unindexes, unlinks, frees, and accounts
    /// one slot — all eviction stats are bumped here, one event at a time,
    /// so interleaved [`FlowTable::take_stats`] drains are always exact.
    fn evict_slot(&mut self, slot: u32, cause: EvictCause) -> (FlowId, S) {
        let flow = self.slots[slot as usize].flow;
        let (pos, _) = self.probe(flow).expect("live slot is indexed");
        self.index_remove_at(pos);
        let shard = self.shard_index(flow);
        self.unlink(shard, slot);
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        let session = s.session.take().expect("live slot holds a session");
        s.next = self.free_head;
        self.free_head = slot;
        self.live -= 1;
        match cause {
            EvictCause::Idle => self.stats.evicted_idle += 1,
            EvictCause::Capacity => self.stats.evicted_capacity += 1,
            EvictCause::Remove => {}
        }
        (flow, session)
    }

    /// Looks up `flow`, refreshing its LRU/idle clock to `now`.
    pub fn get_mut(&mut self, flow: FlowId, now: SimTime) -> Option<&mut S> {
        let (_, slot) = self.probe(flow).ok()?;
        self.touch(slot, now);
        self.slots[slot as usize].session.as_mut()
    }

    /// Whether a session for `flow` is live (no LRU refresh).
    pub fn contains(&self, flow: FlowId) -> bool {
        self.probe(flow).is_ok()
    }

    /// Looks up `flow` *without* refreshing its LRU/idle clock — for
    /// housekeeping paths (timer callbacks) that must not keep an otherwise
    /// idle session alive.
    pub fn peek_mut(&mut self, flow: FlowId) -> Option<&mut S> {
        let (_, slot) = self.probe(flow).ok()?;
        self.slots[slot as usize].session.as_mut()
    }

    /// Removes and returns `flow`'s session iff it is idle past the
    /// deadline (a targeted, O(1) alternative to a full
    /// [`FlowTable::sweep_idle`]).
    pub fn evict_if_idle(&mut self, flow: FlowId, now: SimTime) -> Option<S> {
        let (_, slot) = self.probe(flow).ok()?;
        if !self.is_idle(slot, now) {
            return None;
        }
        Some(self.evict_slot(slot, EvictCause::Idle).1)
    }

    /// Looks up `flow`, creating its session with `init` if absent, and
    /// returns `(created, slot)` — the stable handle for follow-up O(1)
    /// access via [`FlowTable::slot_entry_mut`]. Creation first reclaims
    /// idle sessions from the target shard's LRU tail, then — if the shard
    /// is still full — evicts its least recently used entry. Evicted
    /// sessions are dropped (callers that need teardown hooks should use
    /// [`FlowTable::sweep_idle`] proactively).
    pub fn ensure_slot(
        &mut self,
        flow: FlowId,
        now: SimTime,
        init: impl FnOnce() -> S,
    ) -> (bool, SlotId) {
        if let Ok((_, slot)) = self.probe(flow) {
            self.touch(slot, now);
            return (false, self.slot_id(slot));
        }
        let shard = self.shard_index(flow);
        // Touch times are monotone, so idle entries are a contiguous
        // suffix at the LRU tail: reclaim them all before LRU pressure
        // (identical policy to the legacy table's idle `retain`).
        loop {
            let tail = self.shards[shard].tail;
            if tail == NIL || !self.is_idle(tail, now) {
                break;
            }
            self.evict_slot(tail, EvictCause::Idle);
        }
        if self.shards[shard].len as usize >= self.cfg.per_shard {
            let tail = self.shards[shard].tail;
            self.evict_slot(tail, EvictCause::Capacity);
        }
        if self.shards[shard].len > 0 {
            self.stats.shard_collisions += 1;
        }
        self.stats.created += 1;
        let slot = self.alloc_slot(flow, now, init());
        let Err(pos) = self.probe(flow) else {
            unreachable!("freshly allocated flow is not yet indexed");
        };
        self.index[pos] = slot;
        (true, self.slot_id(slot))
    }

    fn slot_id(&self, slot: u32) -> SlotId {
        SlotId {
            index: slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Re-enters a slot by handle in O(1) (no hashing, no LRU refresh).
    /// Returns `None` when the handle is stale — the slot was evicted since
    /// the handle was issued, whoever occupies it now.
    pub fn slot_entry_mut(&mut self, slot: SlotId) -> Option<(FlowId, &mut S)> {
        let s = self.slots.get_mut(slot.index as usize)?;
        if s.gen != slot.gen {
            return None;
        }
        let flow = s.flow;
        s.session.as_mut().map(|session| (flow, session))
    }

    /// Looks up `flow`, creating its session with `init` if absent; returns
    /// `(created, session)`. See [`FlowTable::ensure_slot`] for the
    /// eviction steps a miss performs.
    pub fn get_or_insert_with(
        &mut self,
        flow: FlowId,
        now: SimTime,
        init: impl FnOnce() -> S,
    ) -> (bool, &mut S) {
        let (created, slot) = self.ensure_slot(flow, now, init);
        let session = self.slots[slot.index as usize]
            .session
            .as_mut()
            .expect("ensured slot holds a session");
        (created, session)
    }

    /// Removes and returns `flow`'s session.
    pub fn remove(&mut self, flow: FlowId) -> Option<S> {
        let (_, slot) = self.probe(flow).ok()?;
        Some(self.evict_slot(slot, EvictCause::Remove).1)
    }

    /// Reclaims every session idle past the deadline, returning them so
    /// callers can record per-flow teardown metrics.
    pub fn sweep_idle(&mut self, now: SimTime) -> Vec<(FlowId, S)> {
        let mut evicted = Vec::new();
        self.sweep_idle_into(now, &mut evicted);
        evicted
    }

    /// Allocation-reusing twin of [`FlowTable::sweep_idle`]: appends the
    /// reclaimed sessions to `out` (which steady-state callers keep warm).
    pub fn sweep_idle_into(&mut self, now: SimTime, out: &mut Vec<(FlowId, S)>) {
        self.sweep_idle_limit(now, usize::MAX, out);
    }

    /// Bounded-work sweep: reclaims at most `limit` idle sessions (oldest
    /// first within each shard), appending them to `out`, and returns how
    /// many were reclaimed. At 100k flows a full sweep can evict tens of
    /// thousands of sessions in one call; latency-sensitive callers chip
    /// away at the backlog across events instead. Stats stay exact under
    /// any interleaving of partial sweeps and [`FlowTable::take_stats`]
    /// drains (per-eviction accounting; see [`FlowTableStats`]).
    pub fn sweep_idle_limit(
        &mut self,
        now: SimTime,
        limit: usize,
        out: &mut Vec<(FlowId, S)>,
    ) -> usize {
        let mut evicted = 0usize;
        for shard in 0..self.shards.len() {
            loop {
                if evicted >= limit {
                    return evicted;
                }
                let tail = self.shards[shard].tail;
                if tail == NIL || !self.is_idle(tail, now) {
                    break;
                }
                out.push(self.evict_slot(tail, EvictCause::Idle));
                evicted += 1;
            }
        }
        evicted
    }

    /// Iterates live sessions in deterministic order (slot index order,
    /// i.e. the table's allocation history — identical across two tables
    /// fed identical operations, but not otherwise meaningful).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &S)> {
        self.slots
            .iter()
            .filter_map(|s| s.session.as_ref().map(|session| (s.flow, session)))
    }

    /// Mutable twin of [`FlowTable::iter`], same deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut S)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.session.as_mut().map(|session| (s.flow, session)))
    }

    /// Drains the counters accumulated since the last call (delta
    /// semantics, for feeding monotonic obs counters). Returns `None` when
    /// nothing changed so callers can skip the publish entirely.
    pub fn take_stats(&mut self) -> Option<FlowTableStats> {
        if self.stats.is_empty() {
            return None;
        }
        Some(core::mem::take(&mut self.stats))
    }
}

/// Counters for a [`FoldBuffer`]'s batch path, drained with
/// [`FoldBuffer::take_stats`] (delta semantics, like [`FlowTableStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Contiguous per-flow batches handed to the fold callback.
    pub batches: u64,
    /// Identifiers folded through the batch path.
    pub ids: u64,
    /// Identifiers dropped because their slot died before the flush (the
    /// flow was evicted; its sketch is gone, so the folds are moot).
    pub stale: u64,
}

impl FoldStats {
    fn is_empty(&self) -> bool {
        *self == FoldStats::default()
    }
}

/// Batches interleaved multi-flow arrivals for lane-parallel folding.
///
/// A shared vantage point sees packets of many flows interleaved, which
/// starves the producer's `insert_batch` (every flow's burst buffer fills
/// one identifier at a time). A `FoldBuffer` absorbs `(slot, identifier)`
/// pairs as packets arrive and, on [`FoldBuffer::flush`], sorts them
/// in-place by slot so each flow's identifiers form one contiguous run —
/// handed to the fold callback as a single batch. Sorting also canonicalizes
/// the fold order, which is safe because power sums are commutative.
///
/// **Flush discipline.** Deferred folds are invisible to the sketch until
/// flushed, so callers must flush before anything reads, resets, emits, or
/// evicts a buffered flow's sketch (in the proxies: before quACK emission,
/// before handling any control message, and before idle sweeps). A slot
/// evicted *with* folds still buffered is harmless: the generation check
/// rejects the stale entries at flush ([`FoldStats::stale`]) rather than
/// folding them into whatever session reuses the slot.
#[derive(Debug, Default)]
pub struct FoldBuffer {
    entries: Vec<(SlotId, u64)>,
    scratch: Vec<u64>,
    cap: usize,
    stats: FoldStats,
}

impl FoldBuffer {
    /// Default capacity: a few lane-widths of the batched fold, so bursty
    /// interleavings yield full lanes without holding folds for long.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a buffer that reports "full" at `cap` entries (clamped to at
    /// least 1). The backing storage is allocated lazily and reused across
    /// flushes, so a warmed buffer never touches the allocator.
    pub fn with_capacity(cap: usize) -> Self {
        FoldBuffer {
            entries: Vec::new(),
            scratch: Vec::new(),
            cap: cap.max(1),
            stats: FoldStats::default(),
        }
    }

    /// Buffers one identifier for the flow living in `slot`. Returns `true`
    /// when the buffer has reached capacity and should be flushed.
    pub fn push(&mut self, slot: SlotId, id: u64) -> bool {
        self.entries.push((slot, id));
        self.entries.len() >= self.cap
    }

    /// Buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all buffered entries without folding them (restart paths: the
    /// sessions the entries pointed at are gone wholesale).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Buckets the buffered entries by slot (one in-place sort) and hands
    /// each live flow's identifiers to `fold` as one contiguous batch.
    /// Entries whose slot died since they were pushed are dropped (counted
    /// in [`FoldStats::stale`]); the generation check guarantees they can
    /// never fold into a recycled slot's new session.
    pub fn flush<S>(
        &mut self,
        table: &mut FlowTable<S>,
        mut fold: impl FnMut(FlowId, &mut S, &[u64]),
    ) {
        if self.entries.is_empty() {
            return;
        }
        self.entries.sort_unstable();
        let mut start = 0;
        while start < self.entries.len() {
            let slot = self.entries[start].0;
            self.scratch.clear();
            let mut end = start;
            while end < self.entries.len() && self.entries[end].0 == slot {
                self.scratch.push(self.entries[end].1);
                end += 1;
            }
            match table.slot_entry_mut(slot) {
                Some((flow, session)) => {
                    self.stats.batches += 1;
                    self.stats.ids += self.scratch.len() as u64;
                    fold(flow, session, &self.scratch);
                }
                None => self.stats.stale += self.scratch.len() as u64,
            }
            start = end;
        }
        self.entries.clear();
    }

    /// Drains the batch-path counters accumulated since the last call
    /// (`None` when nothing changed).
    pub fn take_stats(&mut self) -> Option<FoldStats> {
        if self.stats.is_empty() {
            return None;
        }
        Some(core::mem::take(&mut self.stats))
    }
}

pub mod legacy {
    //! The original scan-based flow table (PR 4), kept verbatim as the
    //! equivalence oracle for the slab engine — the same role the legacy
    //! binary-heap scheduler plays for the netsim timer wheel. The property
    //! suite drives both tables with identical operation streams and
    //! requires identical surviving flows, session state, and stats; the
    //! many-flow benchmark uses it as the A/B baseline that the
    //! `manyflow_insert_speedup` headline is measured against.
    //!
    //! Policy (shared with the slab engine): a fixed shard count keyed by
    //! the Fibonacci multiplicative hash, a per-shard capacity cap, idle
    //! reclamation before LRU pressure. The difference is purely
    //! mechanical: lookups scan the shard `Vec` (O(shard size)), evictions
    //! `retain`/`remove` with element shifts, and per-call batch stat
    //! accounting — the costs and the mid-sweep accounting drift the slab
    //! engine exists to remove.

    use super::{FlowTableConfig, FlowTableStats};
    use sidecar_netsim::packet::FlowId;
    use sidecar_netsim::time::SimTime;

    struct Entry<S> {
        flow: FlowId,
        last_used: SimTime,
        session: S,
    }

    /// A sharded `FlowId → session` map with bounded capacity,
    /// LRU-within-shard eviction, and idle-deadline reclamation — the
    /// original `Vec`-scan implementation. See the module docs for why it
    /// is retained.
    pub struct FlowTable<S> {
        cfg: FlowTableConfig,
        shards: Vec<Vec<Entry<S>>>,
        stats: FlowTableStats,
    }

    impl<S> FlowTable<S> {
        /// Builds an empty table. Zero `shards`/`per_shard` are clamped
        /// to 1.
        pub fn new(cfg: FlowTableConfig) -> Self {
            let cfg = FlowTableConfig {
                shards: cfg.shards.max(1),
                per_shard: cfg.per_shard.max(1),
                ..cfg
            };
            let mut shards = Vec::with_capacity(cfg.shards);
            shards.resize_with(cfg.shards, Vec::new);
            FlowTable {
                cfg,
                shards,
                stats: FlowTableStats::default(),
            }
        }

        /// The table's configuration.
        pub fn config(&self) -> &FlowTableConfig {
            &self.cfg
        }

        /// Maximum number of live sessions.
        pub fn capacity(&self) -> usize {
            self.cfg.shards * self.cfg.per_shard
        }

        /// Number of live sessions.
        pub fn len(&self) -> usize {
            self.shards.iter().map(Vec::len).sum()
        }

        /// Whether the table holds no sessions.
        pub fn is_empty(&self) -> bool {
            self.shards.iter().all(Vec::is_empty)
        }

        /// Fibonacci multiplicative spread of the flow id over the shards
        /// (bit-identical to the slab engine's shard placement).
        fn shard_index(&self, flow: FlowId) -> usize {
            let mixed = (flow.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((mixed >> 32) as usize) % self.cfg.shards
        }

        /// Looks up `flow`, refreshing its LRU/idle clock to `now`.
        pub fn get_mut(&mut self, flow: FlowId, now: SimTime) -> Option<&mut S> {
            let shard = self.shard_index(flow);
            let entry = self.shards[shard].iter_mut().find(|e| e.flow == flow)?;
            entry.last_used = now;
            Some(&mut entry.session)
        }

        /// Whether a session for `flow` is live (no LRU refresh).
        pub fn contains(&self, flow: FlowId) -> bool {
            let shard = self.shard_index(flow);
            self.shards[shard].iter().any(|e| e.flow == flow)
        }

        /// Looks up `flow` *without* refreshing its LRU/idle clock.
        pub fn peek_mut(&mut self, flow: FlowId) -> Option<&mut S> {
            let shard = self.shard_index(flow);
            self.shards[shard]
                .iter_mut()
                .find(|e| e.flow == flow)
                .map(|e| &mut e.session)
        }

        /// Removes and returns `flow`'s session iff it is idle past the
        /// deadline.
        pub fn evict_if_idle(&mut self, flow: FlowId, now: SimTime) -> Option<S> {
            let deadline = self.cfg.idle_timeout;
            let shard = self.shard_index(flow);
            let pos = self.shards[shard]
                .iter()
                .position(|e| e.flow == flow && e.last_used + deadline <= now)?;
            self.stats.evicted_idle += 1;
            Some(self.shards[shard].remove(pos).session)
        }

        /// Looks up `flow`, creating its session with `init` if absent;
        /// returns `(created, session)`. Creation first reclaims idle
        /// sessions in the target shard, then — if the shard is still full
        /// — evicts its least recently used entry.
        pub fn get_or_insert_with(
            &mut self,
            flow: FlowId,
            now: SimTime,
            init: impl FnOnce() -> S,
        ) -> (bool, &mut S) {
            let shard = self.shard_index(flow);
            if let Some(pos) = self.shards[shard].iter().position(|e| e.flow == flow) {
                let entry = &mut self.shards[shard][pos];
                entry.last_used = now;
                return (false, &mut entry.session);
            }
            // Reclaim idle entries before applying LRU pressure.
            let deadline = self.cfg.idle_timeout;
            let before = self.shards[shard].len();
            self.shards[shard].retain(|e| e.last_used + deadline > now);
            self.stats.evicted_idle += (before - self.shards[shard].len()) as u64;
            if self.shards[shard].len() >= self.cfg.per_shard {
                let lru = self.shards[shard]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("full shard is non-empty");
                self.shards[shard].remove(lru);
                self.stats.evicted_capacity += 1;
            }
            if !self.shards[shard].is_empty() {
                self.stats.shard_collisions += 1;
            }
            self.stats.created += 1;
            self.shards[shard].push(Entry {
                flow,
                last_used: now,
                session: init(),
            });
            let entry = self.shards[shard].last_mut().expect("just pushed");
            (true, &mut entry.session)
        }

        /// Removes and returns `flow`'s session.
        pub fn remove(&mut self, flow: FlowId) -> Option<S> {
            let shard = self.shard_index(flow);
            let pos = self.shards[shard].iter().position(|e| e.flow == flow)?;
            Some(self.shards[shard].remove(pos).session)
        }

        /// Reclaims every session idle past the deadline.
        pub fn sweep_idle(&mut self, now: SimTime) -> Vec<(FlowId, S)> {
            let deadline = self.cfg.idle_timeout;
            let mut evicted = Vec::new();
            for shard in &mut self.shards {
                let mut kept = Vec::with_capacity(shard.len());
                for entry in shard.drain(..) {
                    if entry.last_used + deadline <= now {
                        evicted.push((entry.flow, entry.session));
                    } else {
                        kept.push(entry);
                    }
                }
                *shard = kept;
            }
            self.stats.evicted_idle += evicted.len() as u64;
            evicted
        }

        /// Iterates live sessions (shard index, then insertion order).
        pub fn iter(&self) -> impl Iterator<Item = (FlowId, &S)> {
            self.shards
                .iter()
                .flat_map(|shard| shard.iter().map(|e| (e.flow, &e.session)))
        }

        /// Mutable twin of [`FlowTable::iter`], same order.
        pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut S)> {
            self.shards
                .iter_mut()
                .flat_map(|shard| shard.iter_mut().map(|e| (e.flow, &mut e.session)))
        }

        /// Drains the counters accumulated since the last call.
        pub fn take_stats(&mut self) -> Option<FlowTableStats> {
            if self.stats == FlowTableStats::default() {
                return None;
            }
            Some(core::mem::take(&mut self.stats))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn small(shards: usize, per_shard: usize, idle_ms: u64) -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            shards,
            per_shard,
            idle_timeout: SimDuration::from_millis(idle_ms),
        })
    }

    #[test]
    fn create_lookup_remove() {
        let mut table = small(4, 4, 1000);
        let (created, s) = table.get_or_insert_with(FlowId(7), t(0), || 70);
        assert!(created);
        assert_eq!(*s, 70);
        let (created, s) = table.get_or_insert_with(FlowId(7), t(1), || 99);
        assert!(!created, "existing session must not be re-created");
        assert_eq!(*s, 70);
        assert_eq!(table.len(), 1);
        assert!(table.contains(FlowId(7)));
        assert_eq!(table.get_mut(FlowId(7), t(2)).copied(), Some(70));
        assert_eq!(table.remove(FlowId(7)), Some(70));
        assert!(table.is_empty());
        assert_eq!(table.get_mut(FlowId(7), t(3)), None);
    }

    #[test]
    fn capacity_is_respected_with_lru_eviction() {
        // One shard so every flow collides; cap 2.
        let mut table = small(1, 2, 1_000_000);
        table.get_or_insert_with(FlowId(1), t(0), || 1);
        table.get_or_insert_with(FlowId(2), t(1), || 2);
        // Touch flow 1 so flow 2 becomes the LRU victim.
        table.get_mut(FlowId(1), t(5));
        table.get_or_insert_with(FlowId(3), t(6), || 3);
        assert_eq!(table.len(), 2);
        assert!(table.contains(FlowId(1)), "recently used flow survives");
        assert!(!table.contains(FlowId(2)), "LRU flow evicted");
        assert!(table.contains(FlowId(3)));
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.evicted_capacity, 1);
        assert_eq!(stats.evicted_idle, 0);
        assert!(stats.shard_collisions >= 2);
    }

    #[test]
    fn idle_sessions_are_reclaimed_before_lru() {
        let mut table = small(1, 2, 100);
        table.get_or_insert_with(FlowId(1), t(0), || 1);
        table.get_or_insert_with(FlowId(2), t(90), || 2);
        // At t=200 flow 1 (idle 200ms) is past the 100ms deadline, flow 2
        // (idle 110ms) is too: both are reclaimed, so no LRU eviction.
        table.get_or_insert_with(FlowId(3), t(200), || 3);
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.evicted_idle, 2);
        assert_eq!(stats.evicted_capacity, 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn sweep_idle_returns_sessions() {
        let mut table = small(4, 4, 100);
        table.get_or_insert_with(FlowId(1), t(0), || 10);
        table.get_or_insert_with(FlowId(2), t(50), || 20);
        let mut swept = table.sweep_idle(t(120));
        swept.sort_by_key(|(f, _)| *f);
        assert_eq!(swept, vec![(FlowId(1), 10)]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.take_stats().unwrap().evicted_idle, 1);
        // Nothing further to drain.
        assert_eq!(table.take_stats(), None);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut a = small(8, 8, 1000);
        let mut b = small(8, 8, 1000);
        for f in [9u32, 3, 7, 1, 200, 42] {
            a.get_or_insert_with(FlowId(f), t(f as u64), || f);
            b.get_or_insert_with(FlowId(f), t(f as u64), || f);
        }
        let fa: Vec<_> = a.iter_mut().map(|(f, _)| f).collect();
        let fb: Vec<_> = b.iter_mut().map(|(f, _)| f).collect();
        assert_eq!(fa, fb);
        assert_eq!(fa.len(), 6);
    }

    #[test]
    fn zero_config_is_clamped() {
        let table: FlowTable<()> = FlowTable::new(FlowTableConfig {
            shards: 0,
            per_shard: 0,
            idle_timeout: SimDuration::from_secs(1),
        });
        assert_eq!(table.capacity(), 1);
    }

    #[test]
    fn flows_spread_across_shards() {
        let mut table = small(8, 256, 1000);
        for f in 0..64u32 {
            table.get_or_insert_with(FlowId(f), t(0), || f);
        }
        // The multiplicative hash should not funnel sequential ids into a
        // single shard: with 64 flows over 8 shards, collisions must be
        // well below the all-in-one-shard worst case of 63.
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 64);
        assert!(
            stats.shard_collisions <= 60,
            "hash degenerated: {} collisions",
            stats.shard_collisions
        );
        assert_eq!(table.len(), 64);
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let mut table = small(2, 2, 50);
        for round in 0..32u64 {
            let base = (round * 4) as u32;
            for k in 0..4u32 {
                table.get_or_insert_with(FlowId(base + k), t(round * 1000), || base + k);
            }
            // Next round's inserts find everything idle and reclaim it.
        }
        // Four distinct flows fit at once; the arena must have stopped
        // growing at capacity even though 128 sessions were created.
        assert!(table.len() <= table.capacity());
        assert!(
            table.slots.len() <= table.capacity(),
            "arena grew past capacity: {} slots",
            table.slots.len()
        );
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 128);
    }

    #[test]
    fn stale_slot_handles_are_rejected() {
        let mut table = small(1, 1, 100);
        let (created, slot) = table.ensure_slot(FlowId(1), t(0), || 10u32);
        assert!(created);
        assert_eq!(table.slot_entry_mut(slot), Some((FlowId(1), &mut 10)));
        // Capacity-evict flow 1 by inserting flow 2 into the 1-slot table;
        // flow 2 necessarily reuses the same arena slot.
        let (_, slot2) = table.ensure_slot(FlowId(2), t(10), || 20u32);
        assert_eq!(slot2.index, slot.index, "1-slot arena must reuse the slot");
        assert_eq!(
            table.slot_entry_mut(slot),
            None,
            "stale handle must not reach the recycled slot's new session"
        );
        assert_eq!(table.slot_entry_mut(slot2), Some((FlowId(2), &mut 20)));
        // Same flow returning also gets a fresh generation.
        table.remove(FlowId(2));
        let (_, slot3) = table.ensure_slot(FlowId(2), t(20), || 21u32);
        assert_eq!(table.slot_entry_mut(slot2), None);
        assert_eq!(table.slot_entry_mut(slot3), Some((FlowId(2), &mut 21)));
    }

    #[test]
    fn slot_generation_check_survives_u32_wraparound() {
        // `evict_slot` bumps with `wrapping_add`, so after 2^32 recycles a
        // slot's generation passes through u32::MAX -> 0. Generations are
        // compared by equality only; a handle minted at gen u32::MAX must
        // go stale across the wrap exactly as at any other boundary (ABA:
        // the recycled slot's new occupant must not honor the old handle).
        let mut table = small(1, 1, 100);
        let (_, first) = table.ensure_slot(FlowId(1), t(0), || 10u32);
        table.slots[first.index as usize].gen = u32::MAX;
        // Re-mint the handle at the doctored generation (probe hit returns
        // the current gen), then recycle the slot across the wrap.
        let (created, seed) = table.ensure_slot(FlowId(1), t(0), || 10u32);
        assert!(!created);
        assert_eq!(seed.gen, u32::MAX);
        table.remove(FlowId(1));
        // remove() bumped MAX -> 0; walk one full cycle edge explicitly.
        assert_eq!(table.slots[seed.index as usize].gen, 0);
        let (_, h0) = table.ensure_slot(FlowId(2), t(1), || 20u32);
        assert_eq!(h0.index, seed.index, "1-slot arena must reuse the slot");
        assert_eq!(h0.gen, 0, "generation wrapped to zero");
        assert_eq!(table.slot_entry_mut(seed), None, "pre-wrap handle is stale");
        assert_eq!(table.slot_entry_mut(h0), Some((FlowId(2), &mut 20)));
        // And a handle from the wrapped epoch goes stale on the next
        // recycle like any other.
        table.remove(FlowId(2));
        let (_, h1) = table.ensure_slot(FlowId(3), t(2), || 30u32);
        assert_eq!(h1.gen, 1);
        assert_eq!(table.slot_entry_mut(h0), None);
        assert_eq!(table.slot_entry_mut(h1), Some((FlowId(3), &mut 30)));
    }

    #[test]
    fn index_survives_heavy_delete_churn() {
        // Backward-shift deletion stress: interleave inserts and removes so
        // probe chains repeatedly form and compact, then verify every
        // membership answer against a model.
        let mut table = small(4, 64, 1_000_000);
        let mut model = std::collections::BTreeMap::new();
        let mut state = 0x1234_5678_u64;
        for step in 0..4096u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flow = FlowId((state >> 33) as u32 % 97);
            if state & 1 == 0 {
                table.get_or_insert_with(flow, t(step), || flow.0);
                model.insert(flow, flow.0);
            } else {
                assert_eq!(table.remove(flow), model.remove(&flow));
            }
        }
        for f in 0..97u32 {
            assert_eq!(
                table.contains(FlowId(f)),
                model.contains_key(&FlowId(f)),
                "membership diverged for flow {f}"
            );
        }
        assert_eq!(table.len(), model.len());
    }

    #[test]
    fn partial_sweep_accounting_is_exact() {
        // The regression the slab engine fixes: eviction counters are
        // bumped per eviction, so draining stats *between* the chunks of a
        // bounded sweep neither double-counts nor drops evictions.
        let mut table = small(4, 16, 100);
        for f in 0..40u32 {
            table.get_or_insert_with(FlowId(f), t(0), || f);
        }
        let mut out = Vec::new();
        let mut drained = 0u64;
        let mut total = 0usize;
        loop {
            let n = table.sweep_idle_limit(t(1000), 7, &mut out);
            total += n;
            if let Some(s) = table.take_stats() {
                assert_eq!(s.evicted_capacity, 0);
                drained += s.evicted_idle;
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(total, 40);
        assert_eq!(out.len(), 40);
        assert_eq!(
            drained, 40,
            "interleaved take_stats drains must sum to the true eviction count"
        );
    }

    #[test]
    fn fold_buffer_buckets_by_slot() {
        let mut table: FlowTable<Vec<u64>> = FlowTable::new(FlowTableConfig {
            shards: 8,
            per_shard: 8,
            idle_timeout: SimDuration::from_millis(1000),
        });
        let mut buf = FoldBuffer::with_capacity(64);
        // Round-robin interleaving of three flows.
        let flows = [FlowId(1), FlowId(2), FlowId(3)];
        for round in 0..5u64 {
            for (i, &f) in flows.iter().enumerate() {
                let (_, slot) = table.ensure_slot(f, t(round), Vec::<u64>::new);
                buf.push(slot, round * 10 + i as u64);
            }
        }
        buf.flush(&mut table, |_, session, ids| {
            assert!(ids.len() == 5, "each flow's run must arrive as one batch");
            session.extend_from_slice(ids);
        });
        assert!(buf.is_empty());
        for (i, &f) in flows.iter().enumerate() {
            let got = table.peek_mut(f).unwrap();
            let want: Vec<u64> = (0..5).map(|r| r * 10 + i as u64).collect();
            assert_eq!(*got, want, "flow {} folded the wrong identifiers", f.0);
        }
        let stats = buf.take_stats().unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.ids, 15);
        assert_eq!(stats.stale, 0);
    }

    #[test]
    fn fold_buffer_never_misattributes_across_eviction() {
        // Flow 1 buffers folds, is evicted, and the slot is recycled by
        // flow 2 (and then by flow 1 *again*): none of the pre-eviction
        // identifiers may reach the recycled sessions.
        let mut table: FlowTable<Vec<u64>> = FlowTable::new(FlowTableConfig {
            shards: 1,
            per_shard: 1,
            idle_timeout: SimDuration::from_millis(1_000_000),
        });
        let mut buf = FoldBuffer::with_capacity(64);
        let (_, slot1) = table.ensure_slot(FlowId(1), t(0), Vec::<u64>::new);
        buf.push(slot1, 100);
        buf.push(slot1, 101);
        let (_, slot2) = table.ensure_slot(FlowId(2), t(1), Vec::<u64>::new);
        buf.push(slot2, 200);
        // Flow 1 returns with a fresh session in the same arena slot.
        let (created, slot1b) = table.ensure_slot(FlowId(1), t(2), Vec::<u64>::new);
        assert!(created, "flow 1's original session was evicted");
        assert_eq!(slot1b.index, slot1.index);
        buf.push(slot1b, 300);
        buf.flush(&mut table, |_, session, ids| {
            session.extend_from_slice(ids);
        });
        assert_eq!(
            *table.peek_mut(FlowId(1)).unwrap(),
            vec![300],
            "pre-eviction folds must not contaminate the reborn session"
        );
        assert!(!table.contains(FlowId(2)), "flow 2 was itself evicted");
        let stats = buf.take_stats().unwrap();
        assert_eq!(stats.stale, 3, "ids 100, 101, 200 dropped as stale");
        assert_eq!(stats.ids, 1);
    }

    #[test]
    fn arena_bytes_are_bounded_and_reported() {
        let mut table: FlowTable<[u64; 4]> =
            FlowTable::new(FlowTableConfig::sized_for(1024, SimDuration::from_secs(10)));
        for f in 0..1024u32 {
            table.get_or_insert_with(FlowId(f), t(0), || [0u64; 4]);
        }
        assert_eq!(table.len(), 1024);
        let per_flow = table.bytes_per_flow();
        // Slot (session + flow + clock + links + gen) plus the index share:
        // generous ceiling, tight enough to catch accidental bloat.
        let ceiling = core::mem::size_of::<Slot<[u64; 4]>>() + 64;
        assert!(
            per_flow <= ceiling,
            "bytes/flow {per_flow} exceeded ceiling {ceiling}"
        );
    }

    #[test]
    fn legacy_table_still_behaves() {
        // The oracle itself gets a smoke test: same policy outcomes as the
        // slab engine on the canonical LRU script.
        let mut table: legacy::FlowTable<u32> = legacy::FlowTable::new(FlowTableConfig {
            shards: 1,
            per_shard: 2,
            idle_timeout: SimDuration::from_millis(1_000_000),
        });
        table.get_or_insert_with(FlowId(1), t(0), || 1);
        table.get_or_insert_with(FlowId(2), t(1), || 2);
        table.get_mut(FlowId(1), t(5));
        table.get_or_insert_with(FlowId(3), t(6), || 3);
        assert!(table.contains(FlowId(1)));
        assert!(!table.contains(FlowId(2)));
        assert!(table.contains(FlowId(3)));
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.evicted_capacity, 1);
    }
}
