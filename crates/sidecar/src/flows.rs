//! A bounded, sharded table of per-flow sidecar sessions.
//!
//! The paper's three protocols (§2.1–§2.3) are *per-connection* mechanisms:
//! a quACK sketch summarizes the packets of one flow, and mixing two flows
//! into one sketch makes the decoded missing-set meaningless to both. A
//! deployed sidecar therefore keys its producer/consumer state on the
//! cleartext 4-tuple ([`sidecar_netsim::packet::Packet::flow`]) — and,
//! because it serves arbitrarily many connections with finite memory, that
//! state must live behind a bounded table with an explicit eviction policy
//! (the central deployment problem for transparent QUIC PEPs; see
//! PEMI / Secure Middlebox-Assisted QUIC).
//!
//! [`FlowTable`] is that table: a fixed number of shards (flow ids are
//! spread by a multiplicative hash), a per-shard capacity cap, and two
//! eviction triggers — an idle deadline (a flow that has not been touched
//! for [`FlowTableConfig::idle_timeout`] is reclaimable) and LRU-within-
//! shard when an insert finds its shard full. Eviction is deliberately
//! *safe*: sidecar state is an accelerator, never the source of truth, so
//! a reclaimed session costs one epoch resynchronization round (the
//! existing `Reset`/`Hello` machinery) and the flow falls back to its
//! end-to-end transport in the meantime.
//!
//! The table is deterministic: shard placement depends only on the flow id
//! and iteration order only on placement plus insertion order, so simulated
//! runs stay reproducible for a given seed.

use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};

/// Sizing and eviction knobs for a [`FlowTable`].
#[derive(Clone, Copy, Debug)]
pub struct FlowTableConfig {
    /// Number of shards (fixed at construction; values are clamped to at
    /// least 1). Flow ids are spread across shards by a multiplicative
    /// hash, so shard count bounds worst-case scan cost, not correctness.
    pub shards: usize,
    /// Maximum live sessions per shard (clamped to at least 1). Total
    /// capacity is `shards * per_shard`.
    pub per_shard: usize,
    /// A session untouched for this long is evictable: inserts reclaim
    /// idle sessions before resorting to LRU, and [`FlowTable::sweep_idle`]
    /// reclaims them eagerly.
    pub idle_timeout: SimDuration,
}

impl Default for FlowTableConfig {
    /// Defaults sized so the classic single-flow scenarios never evict
    /// (capacity 8×64 = 512, idle deadline beyond their 120 s horizon).
    fn default() -> Self {
        FlowTableConfig {
            shards: 8,
            per_shard: 64,
            idle_timeout: SimDuration::from_secs(300),
        }
    }
}

/// Monotonic occupancy/eviction counters, drained with
/// [`FlowTable::take_stats`] (delta-since-last-drain, so callers can feed
/// them straight into monotonic obs counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Sessions created.
    pub created: u64,
    /// Sessions reclaimed by the idle deadline.
    pub evicted_idle: u64,
    /// Sessions reclaimed by LRU pressure (insert into a full shard).
    pub evicted_capacity: u64,
    /// Inserts that landed in a shard already holding another flow.
    pub shard_collisions: u64,
}

impl FlowTableStats {
    /// Total evictions, either cause.
    pub fn evicted(&self) -> u64 {
        self.evicted_idle + self.evicted_capacity
    }

    fn is_empty(&self) -> bool {
        *self == FlowTableStats::default()
    }
}

struct Entry<S> {
    flow: FlowId,
    last_used: SimTime,
    session: S,
}

/// A sharded `FlowId → session` map with bounded capacity, LRU-within-shard
/// eviction, and idle-deadline reclamation. See the module docs for policy.
pub struct FlowTable<S> {
    cfg: FlowTableConfig,
    shards: Vec<Vec<Entry<S>>>,
    stats: FlowTableStats,
}

impl<S> FlowTable<S> {
    /// Builds an empty table. Zero `shards`/`per_shard` are clamped to 1.
    pub fn new(cfg: FlowTableConfig) -> Self {
        let cfg = FlowTableConfig {
            shards: cfg.shards.max(1),
            per_shard: cfg.per_shard.max(1),
            ..cfg
        };
        let mut shards = Vec::with_capacity(cfg.shards);
        shards.resize_with(cfg.shards, Vec::new);
        FlowTable {
            cfg,
            shards,
            stats: FlowTableStats::default(),
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &FlowTableConfig {
        &self.cfg
    }

    /// Maximum number of live sessions.
    pub fn capacity(&self) -> usize {
        self.cfg.shards * self.cfg.per_shard
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether the table holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Fibonacci multiplicative spread of the flow id over the shards:
    /// cheap, stateless, and well-distributed even for sequential ids.
    fn shard_index(&self, flow: FlowId) -> usize {
        let mixed = (flow.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.cfg.shards
    }

    /// Looks up `flow`, refreshing its LRU/idle clock to `now`.
    pub fn get_mut(&mut self, flow: FlowId, now: SimTime) -> Option<&mut S> {
        let shard = self.shard_index(flow);
        let entry = self.shards[shard].iter_mut().find(|e| e.flow == flow)?;
        entry.last_used = now;
        Some(&mut entry.session)
    }

    /// Whether a session for `flow` is live (no LRU refresh).
    pub fn contains(&self, flow: FlowId) -> bool {
        let shard = self.shard_index(flow);
        self.shards[shard].iter().any(|e| e.flow == flow)
    }

    /// Looks up `flow` *without* refreshing its LRU/idle clock — for
    /// housekeeping paths (timer callbacks) that must not keep an otherwise
    /// idle session alive.
    pub fn peek_mut(&mut self, flow: FlowId) -> Option<&mut S> {
        let shard = self.shard_index(flow);
        self.shards[shard]
            .iter_mut()
            .find(|e| e.flow == flow)
            .map(|e| &mut e.session)
    }

    /// Removes and returns `flow`'s session iff it is idle past the
    /// deadline (a targeted, O(shard) alternative to a full
    /// [`FlowTable::sweep_idle`]).
    pub fn evict_if_idle(&mut self, flow: FlowId, now: SimTime) -> Option<S> {
        let deadline = self.cfg.idle_timeout;
        let shard = self.shard_index(flow);
        let pos = self.shards[shard]
            .iter()
            .position(|e| e.flow == flow && e.last_used + deadline <= now)?;
        self.stats.evicted_idle += 1;
        Some(self.shards[shard].remove(pos).session)
    }

    /// Looks up `flow`, creating its session with `init` if absent; returns
    /// `(created, session)`. Creation first reclaims idle sessions in the
    /// target shard, then — if the shard is still full — evicts its least
    /// recently used entry. Evicted sessions are dropped (callers that need
    /// teardown hooks should use [`FlowTable::sweep_idle`] proactively).
    pub fn get_or_insert_with(
        &mut self,
        flow: FlowId,
        now: SimTime,
        init: impl FnOnce() -> S,
    ) -> (bool, &mut S) {
        let shard = self.shard_index(flow);
        if let Some(pos) = self.shards[shard].iter().position(|e| e.flow == flow) {
            let entry = &mut self.shards[shard][pos];
            entry.last_used = now;
            return (false, &mut entry.session);
        }
        // Reclaim idle entries before applying LRU pressure.
        let deadline = self.cfg.idle_timeout;
        let before = self.shards[shard].len();
        self.shards[shard].retain(|e| e.last_used + deadline > now);
        self.stats.evicted_idle += (before - self.shards[shard].len()) as u64;
        if self.shards[shard].len() >= self.cfg.per_shard {
            let lru = self.shards[shard]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("full shard is non-empty");
            self.shards[shard].remove(lru);
            self.stats.evicted_capacity += 1;
        }
        if !self.shards[shard].is_empty() {
            self.stats.shard_collisions += 1;
        }
        self.stats.created += 1;
        self.shards[shard].push(Entry {
            flow,
            last_used: now,
            session: init(),
        });
        let entry = self.shards[shard].last_mut().expect("just pushed");
        (true, &mut entry.session)
    }

    /// Removes and returns `flow`'s session.
    pub fn remove(&mut self, flow: FlowId) -> Option<S> {
        let shard = self.shard_index(flow);
        let pos = self.shards[shard].iter().position(|e| e.flow == flow)?;
        Some(self.shards[shard].remove(pos).session)
    }

    /// Reclaims every session idle past the deadline, returning them so
    /// callers can record per-flow teardown metrics.
    pub fn sweep_idle(&mut self, now: SimTime) -> Vec<(FlowId, S)> {
        let deadline = self.cfg.idle_timeout;
        let mut evicted = Vec::new();
        for shard in &mut self.shards {
            let mut kept = Vec::with_capacity(shard.len());
            for entry in shard.drain(..) {
                if entry.last_used + deadline <= now {
                    evicted.push((entry.flow, entry.session));
                } else {
                    kept.push(entry);
                }
            }
            *shard = kept;
        }
        self.stats.evicted_idle += evicted.len() as u64;
        evicted
    }

    /// Iterates live sessions in deterministic order (shard index, then
    /// insertion order within the shard).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &S)> {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter().map(|e| (e.flow, &e.session)))
    }

    /// Mutable twin of [`FlowTable::iter`], same deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowId, &mut S)> {
        self.shards
            .iter_mut()
            .flat_map(|shard| shard.iter_mut().map(|e| (e.flow, &mut e.session)))
    }

    /// Drains the counters accumulated since the last call (delta
    /// semantics, for feeding monotonic obs counters). Returns `None` when
    /// nothing changed so callers can skip the publish entirely.
    pub fn take_stats(&mut self) -> Option<FlowTableStats> {
        if self.stats.is_empty() {
            return None;
        }
        Some(core::mem::take(&mut self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn small(shards: usize, per_shard: usize, idle_ms: u64) -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            shards,
            per_shard,
            idle_timeout: SimDuration::from_millis(idle_ms),
        })
    }

    #[test]
    fn create_lookup_remove() {
        let mut table = small(4, 4, 1000);
        let (created, s) = table.get_or_insert_with(FlowId(7), t(0), || 70);
        assert!(created);
        assert_eq!(*s, 70);
        let (created, s) = table.get_or_insert_with(FlowId(7), t(1), || 99);
        assert!(!created, "existing session must not be re-created");
        assert_eq!(*s, 70);
        assert_eq!(table.len(), 1);
        assert!(table.contains(FlowId(7)));
        assert_eq!(table.get_mut(FlowId(7), t(2)).copied(), Some(70));
        assert_eq!(table.remove(FlowId(7)), Some(70));
        assert!(table.is_empty());
        assert_eq!(table.get_mut(FlowId(7), t(3)), None);
    }

    #[test]
    fn capacity_is_respected_with_lru_eviction() {
        // One shard so every flow collides; cap 2.
        let mut table = small(1, 2, 1_000_000);
        table.get_or_insert_with(FlowId(1), t(0), || 1);
        table.get_or_insert_with(FlowId(2), t(1), || 2);
        // Touch flow 1 so flow 2 becomes the LRU victim.
        table.get_mut(FlowId(1), t(5));
        table.get_or_insert_with(FlowId(3), t(6), || 3);
        assert_eq!(table.len(), 2);
        assert!(table.contains(FlowId(1)), "recently used flow survives");
        assert!(!table.contains(FlowId(2)), "LRU flow evicted");
        assert!(table.contains(FlowId(3)));
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.evicted_capacity, 1);
        assert_eq!(stats.evicted_idle, 0);
        assert!(stats.shard_collisions >= 2);
    }

    #[test]
    fn idle_sessions_are_reclaimed_before_lru() {
        let mut table = small(1, 2, 100);
        table.get_or_insert_with(FlowId(1), t(0), || 1);
        table.get_or_insert_with(FlowId(2), t(90), || 2);
        // At t=200 flow 1 (idle 200ms) is past the 100ms deadline, flow 2
        // (idle 110ms) is too: both are reclaimed, so no LRU eviction.
        table.get_or_insert_with(FlowId(3), t(200), || 3);
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.evicted_idle, 2);
        assert_eq!(stats.evicted_capacity, 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn sweep_idle_returns_sessions() {
        let mut table = small(4, 4, 100);
        table.get_or_insert_with(FlowId(1), t(0), || 10);
        table.get_or_insert_with(FlowId(2), t(50), || 20);
        let mut swept = table.sweep_idle(t(120));
        swept.sort_by_key(|(f, _)| *f);
        assert_eq!(swept, vec![(FlowId(1), 10)]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.take_stats().unwrap().evicted_idle, 1);
        // Nothing further to drain.
        assert_eq!(table.take_stats(), None);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut a = small(8, 8, 1000);
        let mut b = small(8, 8, 1000);
        for f in [9u32, 3, 7, 1, 200, 42] {
            a.get_or_insert_with(FlowId(f), t(f as u64), || f);
            b.get_or_insert_with(FlowId(f), t(f as u64), || f);
        }
        let fa: Vec<_> = a.iter_mut().map(|(f, _)| f).collect();
        let fb: Vec<_> = b.iter_mut().map(|(f, _)| f).collect();
        assert_eq!(fa, fb);
        assert_eq!(fa.len(), 6);
    }

    #[test]
    fn zero_config_is_clamped() {
        let table: FlowTable<()> = FlowTable::new(FlowTableConfig {
            shards: 0,
            per_shard: 0,
            idle_timeout: SimDuration::from_secs(1),
        });
        assert_eq!(table.capacity(), 1);
    }

    #[test]
    fn flows_spread_across_shards() {
        let mut table = small(8, 256, 1000);
        for f in 0..64u32 {
            table.get_or_insert_with(FlowId(f), t(0), || f);
        }
        // The multiplicative hash should not funnel sequential ids into a
        // single shard: with 64 flows over 8 shards, collisions must be
        // well below the all-in-one-shard worst case of 63.
        let stats = table.take_stats().unwrap();
        assert_eq!(stats.created, 64);
        assert!(
            stats.shard_collisions <= 60,
            "hash degenerated: {} collisions",
            stats.shard_collisions
        );
        assert_eq!(table.len(), 64);
    }
}
