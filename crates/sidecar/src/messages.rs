//! Sidecar protocol wire messages.
//!
//! Sidecars "communicate with each other by sending quACKs … They can also
//! configure sidecar protocol parameters with each other such as the
//! communication frequency and properties of the quACK" (paper §2). This
//! module defines the small message vocabulary and a compact binary
//! encoding; messages travel in [`sidecar_netsim::Payload::Sidecar`]
//! datagrams (the sidecar protocol is spoken in the clear between
//! consenting sidecars — it never touches the E2E-encrypted base protocol).

use sidecar_netsim::time::SimDuration;

/// Message-type tags (the `proto` byte of `Payload::Sidecar`).
///
/// Each legacy tag has a flow-tagged twin at `tag + FLOW_OFFSET` whose body
/// is prefixed with a 4-byte big-endian flow id (carried next to the epoch
/// for `Quack`). Flow 0 always encodes with the legacy tag, so single-flow
/// wire traffic is byte-identical to pre-flow-table builds, and legacy
/// untagged messages parse as flow 0.
pub mod tag {
    /// A quACK payload.
    pub const QUACK: u8 = 1;
    /// A configuration update (e.g. new emission interval).
    pub const CONFIGURE: u8 = 2;
    /// A reset announcement (threshold exceeded; new epoch).
    pub const RESET: u8 = 3;
    /// A parameter offer opening (or re-opening) a sidecar session.
    pub const HELLO: u8 = 4;
    /// Distance between a legacy tag and its flow-tagged twin.
    pub const FLOW_OFFSET: u8 = 4;
    /// A quACK payload tagged with a non-zero flow id.
    pub const QUACK_FLOW: u8 = QUACK + FLOW_OFFSET;
    /// A configuration update tagged with a non-zero flow id.
    pub const CONFIGURE_FLOW: u8 = CONFIGURE + FLOW_OFFSET;
    /// A reset announcement tagged with a non-zero flow id.
    pub const RESET_FLOW: u8 = RESET + FLOW_OFFSET;
    /// A parameter offer tagged with a non-zero flow id.
    pub const HELLO_FLOW: u8 = HELLO + FLOW_OFFSET;
    /// Distance between a wire tag (legacy 1..=4 or flow-tagged 5..=8) and
    /// its authenticated twin (9..=16): the sealed envelope of
    /// [`crate::auth::ChannelAuth`] reuses the inner encoding under
    /// `inner_tag + AUTH_OFFSET`. To the plain decoders these tags are
    /// simply unknown (auth-unaware endpoints reject sealed traffic), so
    /// legacy and flow wire images are untouched.
    pub const AUTH_OFFSET: u8 = 8;
    /// An authenticated (sealed) legacy quACK.
    pub const QUACK_AUTH: u8 = QUACK + AUTH_OFFSET;
    /// An authenticated (sealed) legacy configuration update.
    pub const CONFIGURE_AUTH: u8 = CONFIGURE + AUTH_OFFSET;
    /// An authenticated (sealed) legacy reset announcement.
    pub const RESET_AUTH: u8 = RESET + AUTH_OFFSET;
    /// An authenticated (sealed) legacy parameter offer.
    pub const HELLO_AUTH: u8 = HELLO + AUTH_OFFSET;
    /// An authenticated (sealed) flow-tagged quACK.
    pub const QUACK_FLOW_AUTH: u8 = QUACK_FLOW + AUTH_OFFSET;
    /// An authenticated (sealed) flow-tagged configuration update.
    pub const CONFIGURE_FLOW_AUTH: u8 = CONFIGURE_FLOW + AUTH_OFFSET;
    /// An authenticated (sealed) flow-tagged reset announcement.
    pub const RESET_FLOW_AUTH: u8 = RESET_FLOW + AUTH_OFFSET;
    /// An authenticated (sealed) flow-tagged parameter offer.
    pub const HELLO_FLOW_AUTH: u8 = HELLO_FLOW + AUTH_OFFSET;
}

/// Nominal UDP/IPv4 header overhead added to every sidecar datagram body
/// for link accounting.
pub const HEADER_OVERHEAD: u32 = 28;

/// Largest sidecar datagram body that fits in one real UDP datagram: the
/// IPv4 maximum UDP payload (65,507 bytes) minus [`HEADER_OVERHEAD`].
/// Bodies beyond this cannot be emitted on a live socket, and the legacy
/// `wire_size` arithmetic would silently truncate their length accounting —
/// the checked encoders reject them with [`MessageError::Oversized`]
/// instead.
pub const MAX_BODY: usize = 65_507 - HEADER_OVERHEAD as usize;

/// A decoded sidecar message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SidecarMessage {
    /// An encoded quACK (opaque to the simulator; decoded by the consumer
    /// with the negotiated [`crate::SidecarConfig`]). `epoch` guards against
    /// mixing sums across resets.
    Quack {
        /// Reset epoch the quACK belongs to.
        epoch: u32,
        /// Wire-encoded quACK (`b·t + c` bits).
        bytes: Vec<u8>,
    },
    /// Consumer-to-producer tuning: change the emission interval
    /// (in-network retransmission adapts this to the loss ratio, §2.3).
    Configure {
        /// New emission interval.
        interval: SimDuration,
    },
    /// Either side announces a reset to a new epoch (§3.3 "Exceeding the
    /// threshold").
    Reset {
        /// The new epoch number.
        epoch: u32,
    },
    /// A parameter offer: the quACK properties and emission schedule the
    /// offering sidecar wants to use (§3.2's three parameters). The
    /// responder either adopts it (within its capabilities, see
    /// [`crate::negotiate::accept_hello`]) or the session does not start.
    Hello {
        /// Proposed threshold `t`.
        threshold: u32,
        /// Proposed identifier width `b` in bits.
        id_bits: u8,
        /// Proposed count width `c` in bits.
        count_bits: u8,
        /// Proposed emission interval (0 = per-packet schedule).
        interval: SimDuration,
    },
}

/// Encoding/decoding failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageError {
    /// The tag byte is not a known message type.
    UnknownTag(u8),
    /// The body is too short for the message type.
    Truncated,
    /// The encoded body exceeds [`MAX_BODY`] and cannot travel in one UDP
    /// datagram (the carried value is the offending body length).
    Oversized(usize),
}

impl core::fmt::Display for MessageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MessageError::UnknownTag(t) => write!(f, "unknown sidecar message tag {t}"),
            MessageError::Truncated => write!(f, "truncated sidecar message"),
            MessageError::Oversized(len) => {
                write!(f, "sidecar message body of {len} bytes exceeds {MAX_BODY}")
            }
        }
    }
}

impl std::error::Error for MessageError {}

impl SidecarMessage {
    /// Serializes to `(tag, body)` for a sidecar datagram.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            SidecarMessage::Quack { epoch, bytes } => {
                let mut body = Vec::with_capacity(4 + bytes.len());
                body.extend_from_slice(&epoch.to_be_bytes());
                body.extend_from_slice(bytes);
                (tag::QUACK, body)
            }
            SidecarMessage::Configure { interval } => {
                (tag::CONFIGURE, interval.as_nanos().to_be_bytes().to_vec())
            }
            SidecarMessage::Reset { epoch } => (tag::RESET, epoch.to_be_bytes().to_vec()),
            SidecarMessage::Hello {
                threshold,
                id_bits,
                count_bits,
                interval,
            } => {
                let mut body = Vec::with_capacity(14);
                body.extend_from_slice(&threshold.to_be_bytes());
                body.push(*id_bits);
                body.push(*count_bits);
                body.extend_from_slice(&interval.as_nanos().to_be_bytes());
                (tag::HELLO, body)
            }
        }
    }

    /// Parses a sidecar datagram body.
    pub fn decode(tag_byte: u8, body: &[u8]) -> Result<Self, MessageError> {
        match tag_byte {
            tag::QUACK => {
                if body.len() < 4 {
                    return Err(MessageError::Truncated);
                }
                let epoch = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
                Ok(SidecarMessage::Quack {
                    epoch,
                    bytes: body[4..].to_vec(),
                })
            }
            tag::CONFIGURE => {
                let ns: [u8; 8] = body.try_into().map_err(|_| MessageError::Truncated)?;
                Ok(SidecarMessage::Configure {
                    interval: SimDuration::from_nanos(u64::from_be_bytes(ns)),
                })
            }
            tag::RESET => {
                let e: [u8; 4] = body.try_into().map_err(|_| MessageError::Truncated)?;
                Ok(SidecarMessage::Reset {
                    epoch: u32::from_be_bytes(e),
                })
            }
            tag::HELLO => {
                if body.len() != 14 {
                    return Err(MessageError::Truncated);
                }
                Ok(SidecarMessage::Hello {
                    threshold: u32::from_be_bytes(body[..4].try_into().expect("4 bytes")),
                    id_bits: body[4],
                    count_bits: body[5],
                    interval: SimDuration::from_nanos(u64::from_be_bytes(
                        body[6..14].try_into().expect("8 bytes"),
                    )),
                })
            }
            other => Err(MessageError::UnknownTag(other)),
        }
    }

    /// Serializes to `(tag, body)` for a sidecar datagram belonging to
    /// `flow`. Flow 0 uses the legacy untagged encoding (byte-identical to
    /// [`SidecarMessage::encode`]); any other flow uses the flow-tagged twin
    /// tag with the flow id as a 4-byte big-endian body prefix, sitting
    /// right next to the epoch for `Quack` bodies.
    pub fn encode_for_flow(&self, flow: u32) -> (u8, Vec<u8>) {
        let (t, body) = self.encode();
        if flow == 0 {
            return (t, body);
        }
        let mut tagged = Vec::with_capacity(4 + body.len());
        tagged.extend_from_slice(&flow.to_be_bytes());
        tagged.extend_from_slice(&body);
        (t + tag::FLOW_OFFSET, tagged)
    }

    /// Parses a sidecar datagram body into `(flow, message)`. Legacy tags
    /// parse as flow 0; flow-tagged twins strip the 4-byte flow prefix and
    /// parse the remainder with the legacy decoder.
    pub fn decode_flow(tag_byte: u8, body: &[u8]) -> Result<(u32, Self), MessageError> {
        if (tag::QUACK_FLOW..=tag::HELLO_FLOW).contains(&tag_byte) {
            if body.len() < 4 {
                return Err(MessageError::Truncated);
            }
            let flow = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
            let msg = Self::decode(tag_byte - tag::FLOW_OFFSET, &body[4..])?;
            Ok((flow, msg))
        } else {
            Ok((0, Self::decode(tag_byte, body)?))
        }
    }

    /// Serializes to `(tag, body)`, rejecting bodies over [`MAX_BODY`] with
    /// a typed error instead of letting an impossible-to-transmit datagram
    /// reach the wire (where the old length accounting silently truncated).
    pub fn try_encode(&self) -> Result<(u8, Vec<u8>), MessageError> {
        let (t, body) = self.encode();
        if body.len() > MAX_BODY {
            return Err(MessageError::Oversized(body.len()));
        }
        Ok((t, body))
    }

    /// [`SidecarMessage::encode_for_flow`] with the [`MAX_BODY`] check: the
    /// flow prefix counts toward the limit, so a body that fits untagged can
    /// still be rejected for a non-zero flow.
    pub fn try_encode_for_flow(&self, flow: u32) -> Result<(u8, Vec<u8>), MessageError> {
        let (t, body) = self.encode_for_flow(flow);
        if body.len() > MAX_BODY {
            return Err(MessageError::Oversized(body.len()));
        }
        Ok((t, body))
    }

    /// On-the-wire size of the sidecar datagram body plus a nominal
    /// UDP/IP-style header overhead used for link accounting. Saturates
    /// (rather than truncating) on bodies too large to encode — such
    /// messages are rejected by [`SidecarMessage::try_encode`] before any
    /// wire accounting can see them.
    pub fn wire_size(&self) -> u32 {
        let (_, body) = self.encode();
        HEADER_OVERHEAD.saturating_add(u32::try_from(body.len()).unwrap_or(u32::MAX))
    }

    /// [`SidecarMessage::wire_size`] for the flow-tagged encoding: non-zero
    /// flows pay 4 extra bytes for the flow id prefix.
    pub fn wire_size_for_flow(&self, flow: u32) -> u32 {
        self.wire_size() + if flow == 0 { 0 } else { 4 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quack_roundtrip() {
        let msg = SidecarMessage::Quack {
            epoch: 7,
            bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
        };
        let (t, body) = msg.encode();
        assert_eq!(t, tag::QUACK);
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn configure_roundtrip() {
        let msg = SidecarMessage::Configure {
            interval: SimDuration::from_millis(120),
        };
        let (t, body) = msg.encode();
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn reset_roundtrip() {
        let msg = SidecarMessage::Reset { epoch: 42 };
        let (t, body) = msg.encode();
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn hello_roundtrip() {
        let msg = SidecarMessage::Hello {
            threshold: 20,
            id_bits: 32,
            count_bits: 16,
            interval: SimDuration::from_millis(60),
        };
        let (t, body) = msg.encode();
        assert_eq!(t, tag::HELLO);
        assert_eq!(body.len(), 14);
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
        assert_eq!(
            SidecarMessage::decode(tag::HELLO, &body[..13]),
            Err(MessageError::Truncated)
        );
    }

    #[test]
    fn decode_errors() {
        assert_eq!(
            SidecarMessage::decode(99, &[]),
            Err(MessageError::UnknownTag(99))
        );
        assert_eq!(
            SidecarMessage::decode(tag::QUACK, &[1, 2]),
            Err(MessageError::Truncated)
        );
        assert_eq!(
            SidecarMessage::decode(tag::CONFIGURE, &[0; 7]),
            Err(MessageError::Truncated)
        );
        assert_eq!(
            SidecarMessage::decode(tag::RESET, &[0; 5]),
            Err(MessageError::Truncated)
        );
        assert!(MessageError::UnknownTag(99).to_string().contains("99"));
    }

    #[test]
    fn flow_zero_encodes_legacy() {
        // Flow 0 must stay byte-identical to the untagged encoding so
        // pre-flow-table golden traces and wire sizes are unchanged.
        let msg = SidecarMessage::Quack {
            epoch: 3,
            bytes: vec![1, 2, 3],
        };
        assert_eq!(msg.encode_for_flow(0), msg.encode());
        assert_eq!(msg.wire_size_for_flow(0), msg.wire_size());
    }

    #[test]
    fn flow_tagged_roundtrip_every_message() {
        let msgs = [
            SidecarMessage::Quack {
                epoch: 9,
                bytes: vec![0xAB; 82],
            },
            SidecarMessage::Configure {
                interval: SimDuration::from_millis(7),
            },
            SidecarMessage::Reset { epoch: 11 },
            SidecarMessage::Hello {
                threshold: 20,
                id_bits: 32,
                count_bits: 16,
                interval: SimDuration::from_millis(60),
            },
        ];
        for msg in msgs {
            let (t, body) = msg.encode_for_flow(0xC0FFEE);
            let (legacy_t, _) = msg.encode();
            assert_eq!(t, legacy_t + tag::FLOW_OFFSET);
            assert_eq!(&body[..4], &0xC0FFEE_u32.to_be_bytes());
            let (flow, decoded) = SidecarMessage::decode_flow(t, &body).unwrap();
            assert_eq!(flow, 0xC0FFEE);
            assert_eq!(decoded, msg);
            assert_eq!(msg.wire_size_for_flow(0xC0FFEE), msg.wire_size() + 4);
        }
    }

    #[test]
    fn legacy_tags_decode_as_flow_zero() {
        let msg = SidecarMessage::Reset { epoch: 5 };
        let (t, body) = msg.encode();
        assert_eq!(SidecarMessage::decode_flow(t, &body).unwrap(), (0, msg));
    }

    #[test]
    fn flow_tagged_decode_errors() {
        // Too short for even the flow prefix.
        assert_eq!(
            SidecarMessage::decode_flow(tag::QUACK_FLOW, &[1, 2]),
            Err(MessageError::Truncated)
        );
        // Flow prefix present but inner body truncated (Reset wants 4 bytes).
        assert_eq!(
            SidecarMessage::decode_flow(tag::RESET_FLOW, &[0, 0, 0, 1, 9]),
            Err(MessageError::Truncated)
        );
        // Unknown tag above the flow-tagged range.
        assert_eq!(
            SidecarMessage::decode_flow(99, &[0; 8]),
            Err(MessageError::UnknownTag(99))
        );
    }

    #[test]
    fn auth_tags_are_unknown_to_the_plain_decoders() {
        // Sealed envelopes must be opaque to auth-unaware endpoints: the
        // authenticated twin range falls through `decode_flow`'s range
        // check into the legacy decoder and comes back UnknownTag.
        for t in tag::QUACK_AUTH..=tag::HELLO_FLOW_AUTH {
            assert_eq!(
                SidecarMessage::decode_flow(t, &[0; 64]),
                Err(MessageError::UnknownTag(t)),
            );
            assert_eq!(
                SidecarMessage::decode(t, &[0; 64]),
                Err(MessageError::UnknownTag(t)),
            );
        }
    }

    #[test]
    fn oversized_bodies_rejected_with_typed_error() {
        // Quack body = 4-byte epoch + sketch bytes, so MAX_BODY - 4 sketch
        // bytes is the largest encodable quACK.
        let at_limit = SidecarMessage::Quack {
            epoch: 1,
            bytes: vec![0; MAX_BODY - 4],
        };
        assert!(at_limit.try_encode().is_ok());
        // The same message no longer fits once the 4-byte flow prefix is
        // added.
        assert_eq!(
            at_limit.try_encode_for_flow(7),
            Err(MessageError::Oversized(MAX_BODY + 4))
        );
        let over = SidecarMessage::Quack {
            epoch: 1,
            bytes: vec![0; MAX_BODY - 3],
        };
        assert_eq!(
            over.try_encode(),
            Err(MessageError::Oversized(MAX_BODY + 1))
        );
        assert_eq!(over.try_encode_for_flow(0), over.try_encode());
        let display = MessageError::Oversized(MAX_BODY + 1).to_string();
        assert!(display.contains("65479"), "{display}");
        // wire_size saturates rather than wrapping for oversized bodies.
        assert_eq!(over.wire_size(), HEADER_OVERHEAD + (MAX_BODY as u32) + 1);
    }

    #[test]
    fn paper_quack_wire_size() {
        // An 82-byte quACK plus epoch and headers.
        let msg = SidecarMessage::Quack {
            epoch: 0,
            bytes: vec![0; 82],
        };
        assert_eq!(msg.wire_size(), 28 + 4 + 82);
    }
}
