//! Sidecar protocol wire messages.
//!
//! Sidecars "communicate with each other by sending quACKs … They can also
//! configure sidecar protocol parameters with each other such as the
//! communication frequency and properties of the quACK" (paper §2). This
//! module defines the small message vocabulary and a compact binary
//! encoding; messages travel in [`sidecar_netsim::Payload::Sidecar`]
//! datagrams (the sidecar protocol is spoken in the clear between
//! consenting sidecars — it never touches the E2E-encrypted base protocol).

use sidecar_netsim::time::SimDuration;

/// Message-type tags (the `proto` byte of `Payload::Sidecar`).
pub mod tag {
    /// A quACK payload.
    pub const QUACK: u8 = 1;
    /// A configuration update (e.g. new emission interval).
    pub const CONFIGURE: u8 = 2;
    /// A reset announcement (threshold exceeded; new epoch).
    pub const RESET: u8 = 3;
    /// A parameter offer opening (or re-opening) a sidecar session.
    pub const HELLO: u8 = 4;
}

/// A decoded sidecar message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SidecarMessage {
    /// An encoded quACK (opaque to the simulator; decoded by the consumer
    /// with the negotiated [`crate::SidecarConfig`]). `epoch` guards against
    /// mixing sums across resets.
    Quack {
        /// Reset epoch the quACK belongs to.
        epoch: u32,
        /// Wire-encoded quACK (`b·t + c` bits).
        bytes: Vec<u8>,
    },
    /// Consumer-to-producer tuning: change the emission interval
    /// (in-network retransmission adapts this to the loss ratio, §2.3).
    Configure {
        /// New emission interval.
        interval: SimDuration,
    },
    /// Either side announces a reset to a new epoch (§3.3 "Exceeding the
    /// threshold").
    Reset {
        /// The new epoch number.
        epoch: u32,
    },
    /// A parameter offer: the quACK properties and emission schedule the
    /// offering sidecar wants to use (§3.2's three parameters). The
    /// responder either adopts it (within its capabilities, see
    /// [`crate::negotiate::accept_hello`]) or the session does not start.
    Hello {
        /// Proposed threshold `t`.
        threshold: u32,
        /// Proposed identifier width `b` in bits.
        id_bits: u8,
        /// Proposed count width `c` in bits.
        count_bits: u8,
        /// Proposed emission interval (0 = per-packet schedule).
        interval: SimDuration,
    },
}

/// Encoding/decoding failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageError {
    /// The tag byte is not a known message type.
    UnknownTag(u8),
    /// The body is too short for the message type.
    Truncated,
}

impl core::fmt::Display for MessageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MessageError::UnknownTag(t) => write!(f, "unknown sidecar message tag {t}"),
            MessageError::Truncated => write!(f, "truncated sidecar message"),
        }
    }
}

impl std::error::Error for MessageError {}

impl SidecarMessage {
    /// Serializes to `(tag, body)` for a sidecar datagram.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            SidecarMessage::Quack { epoch, bytes } => {
                let mut body = Vec::with_capacity(4 + bytes.len());
                body.extend_from_slice(&epoch.to_be_bytes());
                body.extend_from_slice(bytes);
                (tag::QUACK, body)
            }
            SidecarMessage::Configure { interval } => {
                (tag::CONFIGURE, interval.as_nanos().to_be_bytes().to_vec())
            }
            SidecarMessage::Reset { epoch } => (tag::RESET, epoch.to_be_bytes().to_vec()),
            SidecarMessage::Hello {
                threshold,
                id_bits,
                count_bits,
                interval,
            } => {
                let mut body = Vec::with_capacity(14);
                body.extend_from_slice(&threshold.to_be_bytes());
                body.push(*id_bits);
                body.push(*count_bits);
                body.extend_from_slice(&interval.as_nanos().to_be_bytes());
                (tag::HELLO, body)
            }
        }
    }

    /// Parses a sidecar datagram body.
    pub fn decode(tag_byte: u8, body: &[u8]) -> Result<Self, MessageError> {
        match tag_byte {
            tag::QUACK => {
                if body.len() < 4 {
                    return Err(MessageError::Truncated);
                }
                let epoch = u32::from_be_bytes(body[..4].try_into().expect("4 bytes"));
                Ok(SidecarMessage::Quack {
                    epoch,
                    bytes: body[4..].to_vec(),
                })
            }
            tag::CONFIGURE => {
                let ns: [u8; 8] = body.try_into().map_err(|_| MessageError::Truncated)?;
                Ok(SidecarMessage::Configure {
                    interval: SimDuration::from_nanos(u64::from_be_bytes(ns)),
                })
            }
            tag::RESET => {
                let e: [u8; 4] = body.try_into().map_err(|_| MessageError::Truncated)?;
                Ok(SidecarMessage::Reset {
                    epoch: u32::from_be_bytes(e),
                })
            }
            tag::HELLO => {
                if body.len() != 14 {
                    return Err(MessageError::Truncated);
                }
                Ok(SidecarMessage::Hello {
                    threshold: u32::from_be_bytes(body[..4].try_into().expect("4 bytes")),
                    id_bits: body[4],
                    count_bits: body[5],
                    interval: SimDuration::from_nanos(u64::from_be_bytes(
                        body[6..14].try_into().expect("8 bytes"),
                    )),
                })
            }
            other => Err(MessageError::UnknownTag(other)),
        }
    }

    /// On-the-wire size of the sidecar datagram body plus a nominal
    /// UDP/IP-style header overhead used for link accounting.
    pub fn wire_size(&self) -> u32 {
        const HEADER_OVERHEAD: u32 = 28; // IPv4 + UDP
        let (_, body) = self.encode();
        HEADER_OVERHEAD + body.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quack_roundtrip() {
        let msg = SidecarMessage::Quack {
            epoch: 7,
            bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
        };
        let (t, body) = msg.encode();
        assert_eq!(t, tag::QUACK);
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn configure_roundtrip() {
        let msg = SidecarMessage::Configure {
            interval: SimDuration::from_millis(120),
        };
        let (t, body) = msg.encode();
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn reset_roundtrip() {
        let msg = SidecarMessage::Reset { epoch: 42 };
        let (t, body) = msg.encode();
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
    }

    #[test]
    fn hello_roundtrip() {
        let msg = SidecarMessage::Hello {
            threshold: 20,
            id_bits: 32,
            count_bits: 16,
            interval: SimDuration::from_millis(60),
        };
        let (t, body) = msg.encode();
        assert_eq!(t, tag::HELLO);
        assert_eq!(body.len(), 14);
        assert_eq!(SidecarMessage::decode(t, &body).unwrap(), msg);
        assert_eq!(
            SidecarMessage::decode(tag::HELLO, &body[..13]),
            Err(MessageError::Truncated)
        );
    }

    #[test]
    fn decode_errors() {
        assert_eq!(
            SidecarMessage::decode(99, &[]),
            Err(MessageError::UnknownTag(99))
        );
        assert_eq!(
            SidecarMessage::decode(tag::QUACK, &[1, 2]),
            Err(MessageError::Truncated)
        );
        assert_eq!(
            SidecarMessage::decode(tag::CONFIGURE, &[0; 7]),
            Err(MessageError::Truncated)
        );
        assert_eq!(
            SidecarMessage::decode(tag::RESET, &[0; 5]),
            Err(MessageError::Truncated)
        );
        assert!(MessageError::UnknownTag(99).to_string().contains("99"));
    }

    #[test]
    fn paper_quack_wire_size() {
        // An 82-byte quACK plus epoch and headers.
        let msg = SidecarMessage::Quack {
            epoch: 0,
            bytes: vec![0; 82],
        };
        assert_eq!(msg.wire_size(), 28 + 4 + 82);
    }
}
