//! Sidecar protocols: PEP-style performance enhancements for E2E-encrypted
//! ("paranoid") transports, built on the quACK.
//!
//! Reproduces §2 of [Sidecar (HotNets '22)]: a *sidecar protocol* is spoken
//! between sidecars on hosts and proxies, loosely coupled to the unchanged
//! base transport. Proxies stay regular routers — they "can withhold or
//! delay packets, but they cannot modify the packets or make decisions
//! based on their contents"; the sidecar only ever reads the opaque
//! per-packet identifier.
//!
//! * [`endpoint`] — [`QuackProducer`]/[`QuackConsumer`] state machines with
//!   all the §3.3 practical considerations (threshold reset, reorder grace,
//!   in-flight truncation, epoch resets, dropped/stale quACK handling).
//! * [`messages`] — the sidecar wire vocabulary (quACK, configure, reset,
//!   hello).
//! * [`negotiate`] — the offer/accept handshake turning a `Hello` into an
//!   agreed parameter set (§3.2's `t`, `b`, `c` and the schedule).
//! * [`auth`] — the HMAC-authenticated, replay-protected control channel
//!   (sealed twin wire tags, per-session keys from a pre-shared secret,
//!   RFC 4303-style sliding replay window).
//! * [`flows`] — the bounded, sharded [`FlowTable`] mapping flow ids to
//!   per-flow sidecar sessions (a proxy serves many connections; each gets
//!   its own sketch, epoch, and supervision).
//! * [`protocols`] — the three protocols of Table 1 as runnable simulation
//!   scenarios with baselines:
//!   [`protocols::ccd`] (congestion-control division, §2.1),
//!   [`protocols::ack_reduction`] (§2.2), and
//!   [`protocols::retx`] (in-network retransmission, §2.3).
//!
//! [Sidecar (HotNets '22)]: https://doi.org/10.1145/3563766.3564113

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod config;
pub mod endpoint;
pub mod flows;
pub mod messages;
pub mod negotiate;
pub mod protocols;
pub mod supervise;

#[cfg(feature = "auth")]
pub use auth::{hmac_sha256, ReplayWindow};
pub use auth::{AuthError, AuthStats, ChannelAuth, AUTH_OVERHEAD, MAC_LEN, REPLAY_WINDOW};
pub use config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
pub use endpoint::{
    ConfirmedLoss, ConsumerStats, LogEntry, ProcessError, QuackConsumer, QuackProducer, QuackReport,
};
pub use flows::{FlowTable, FlowTableConfig, FlowTableStats, FoldBuffer, FoldStats, SlotId};
pub use messages::{MessageError, SidecarMessage};
pub use negotiate::{accept_hello, offer, Capabilities, NegotiationError};
pub use supervise::{PollOutcome, Supervisor, SupervisorState, SupervisorStats};
