//! §2.1 Congestion-control division (paper Fig. 1b).
//!
//! The end-to-end path is divided at the proxy into two segments, each with
//! its own control loop — PEP-style connection splitting *without touching
//! the E2E-encrypted connection*:
//!
//! * the **client** sidecar quACKs once per RTT to the **proxy**, which
//!   paces its downstream forwarding buffer accordingly ("the proxy can
//!   drain a buffer of unforwarded QUIC packets at a slower rate if it
//!   detects a large number of packets have yet to be received");
//! * the **proxy** sidecar quACKs once per RTT to the **server**, which
//!   steers its congestion window from that feedback instead of waiting for
//!   end-to-end ACKs ("the server no longer needs to rely on end-to-end
//!   ACKs to make decisions to increase the cwnd, though these ACKs still
//!   govern the retransmission logic").
//!
//! End hosts change only by "installing a library" — here, composing the
//!   unchanged transport cores with a sidecar.

use crate::auth::ChannelAuth;
use crate::config::{AuthConfig, SidecarConfig, SupervisionConfig};
use crate::endpoint::{ProcessError, QuackConsumer, QuackProducer};
use crate::flows::{FlowTable, FlowTableConfig, FoldBuffer, SlotId};
use crate::messages::SidecarMessage;
use crate::negotiate::{accept_hello, offer, Capabilities};
use crate::protocols::{
    obs, open_ctrl, restart_epoch, send_sidecar, FaultScript, GuardedTimer, ScenarioReport,
};
use crate::supervise::Supervisor;
use sidecar_galois::Fp32;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{FlowId, Packet, PacketKind, Payload};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverCore, ReceiverNode, SenderConfig, SenderCore, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use std::any::Any;
use std::collections::VecDeque;

const TOKEN_EMIT: u64 = 1;
const TOKEN_GRACE: u64 = 2;
const TOKEN_DRAIN: u64 = 3;
const TOKEN_RTO: u64 = 4;
const TOKEN_DELAYED_ACK: u64 = 5;
const TOKEN_SUPERVISE: u64 = 6;

/// The window-steering "congestion control" of the sidecar run: effectively
/// unbounded, with the real window enforced through the cwnd cap.
pub(crate) const STEERED_CC: CcAlgorithm = CcAlgorithm::Fixed(u64::MAX / 2);

/// The client end host: unchanged transport receiver plus a quACK-producing
/// sidecar library.
pub struct CcdClient {
    transport: ReceiverCore,
    sidecar: QuackProducer<Fp32>,
    /// The connection this sidecar belongs to; its messages carry this flow
    /// and inbound control for other flows is ignored.
    flow: FlowId,
    interval: SimDuration,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// QuACK datagrams emitted.
    pub quacks_sent: u64,
    /// QuACK bytes emitted.
    pub quack_bytes: u64,
}

impl CcdClient {
    /// Creates the client. `interval` is the quACK period (≈ one RTT).
    pub fn new(transport: ReceiverConfig, sidecar: SidecarConfig, interval: SimDuration) -> Self {
        let flow = transport.flow;
        CcdClient {
            transport: ReceiverCore::new(transport),
            sidecar: QuackProducer::new(sidecar),
            flow,
            interval,
            auth: None,
            quacks_sent: 0,
            quack_bytes: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Transport statistics.
    pub fn stats(&self) -> &sidecar_netsim::transport::ReceiverStats {
        self.transport.stats()
    }
}

impl Node for CcdClient {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(self.interval, TOKEN_EMIT);
    }

    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match packet.payload {
            Payload::Sidecar { proto, ref bytes } => {
                match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                    // An end-host sidecar owns exactly one connection:
                    // control tagged for any other flow is not ours.
                    Ok((mflow, _)) if mflow != self.flow.0 => {
                        #[cfg(feature = "obs")]
                        ctx.obs_inc("sidecar.flow_mismatch");
                    }
                    Ok((_, SidecarMessage::Reset { epoch })) => self.sidecar.reset(epoch),
                    Ok((_, hello @ SidecarMessage::Hello { .. })) => {
                        let accepted = accept_hello(&Capabilities::default(), &hello).is_ok();
                        obs::handshake(ctx, accepted);
                        if accepted {
                            // Pristine producer: keep the epoch (startup
                            // handshake is zero-cost). Otherwise this is a
                            // recovery handshake — the consumer's mirror is
                            // empty, so start a fresh epoch to match.
                            let epoch = if self.sidecar.count() == 0 {
                                self.sidecar.epoch()
                            } else {
                                let e = self.sidecar.epoch().wrapping_add(1);
                                self.sidecar.reset(e);
                                e
                            };
                            let _ = send_sidecar(
                                SidecarMessage::Reset { epoch },
                                self.flow,
                                IfaceId(0),
                                &mut self.auth,
                                ctx,
                            );
                        }
                    }
                    _ => {}
                }
            }
            _ if packet.kind == PacketKind::Data => {
                self.sidecar.observe(packet.id);
                obs::observed(ctx);
                obs::quack_fold(ctx, packet.flow.0, packet.seq);
                if let Some(ack) = self.transport.on_data(&packet, ctx.now()) {
                    ctx.send(IfaceId(0), ack);
                } else if let Some(deadline) = self.transport.ack_deadline() {
                    ctx.set_timer_at(deadline, TOKEN_DELAYED_ACK);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOKEN_EMIT => {
                let fill = self.sidecar.burst_fill();
                let msg = self.sidecar.emit();
                self.quacks_sent += 1;
                let bytes = send_sidecar(msg, self.flow, IfaceId(0), &mut self.auth, ctx);
                self.quack_bytes += bytes as u64;
                obs::quack_emitted(ctx, self.sidecar.epoch(), self.sidecar.count(), fill, bytes);
                ctx.set_timer_after(self.interval, TOKEN_EMIT);
            }
            TOKEN_DELAYED_ACK => {
                if let Some(ack) = self.transport.poll_delayed_ack(ctx.now()) {
                    ctx.send(IfaceId(0), ack);
                }
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // The sketch died with the process: start a fresh, time-derived
        // epoch and announce it so the proxy resyncs its mirror.
        let epoch = restart_epoch(ctx.now());
        self.sidecar.reset(epoch);
        let _ = send_sidecar(
            SidecarMessage::Reset { epoch },
            self.flow,
            IfaceId(0),
            &mut self.auth,
            ctx,
        );
        ctx.set_timer_after(self.interval, TOKEN_EMIT);
    }

    fn name(&self) -> &str {
        "ccd-client"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// AIMD pacing-rate controller driven by quACK feedback.
#[derive(Clone, Debug)]
struct RateController {
    rate_bps: f64,
    min_bps: f64,
    max_bps: f64,
}

impl RateController {
    fn new(initial_bps: f64, min_bps: f64, max_bps: f64) -> Self {
        RateController {
            rate_bps: initial_bps,
            min_bps,
            max_bps,
        }
    }

    /// One quACK's verdict: `received` packets confirmed, `missing` newly
    /// missing.
    fn on_feedback(&mut self, received: usize, missing: usize) {
        let total = received + missing;
        if total == 0 {
            return;
        }
        let loss = missing as f64 / total as f64;
        if loss > 0.01 {
            self.rate_bps *= 0.8;
        } else {
            self.rate_bps *= 1.1;
        }
        self.rate_bps = self.rate_bps.clamp(self.min_bps, self.max_bps);
    }
}

/// One flow's sidecar state inside the division proxy: the upstream
/// producer (server→proxy segment), the downstream consumer mirror
/// (proxy→client segment), and that downstream session's supervision.
struct CcdFlow {
    /// QuACK producer toward the server (covers the server→proxy segment).
    upstream_producer: QuackProducer<Fp32>,
    /// QuACK consumer for client quACKs (covers the proxy→client segment).
    downstream_consumer: QuackConsumer<Fp32>,
    /// Local tag counter for the downstream mirror log.
    next_tag: u64,
    /// Supervises the proxy→client quACK session (the adaptive pacing loop).
    supervisor: Supervisor,
    /// QuACKs emitted upstream for this flow.
    quacks: u64,
}

/// The division proxy: a regular router for the base protocol that paces
/// its downstream egress, produces quACKs upstream, and consumes the
/// client's quACKs (paper Fig. 1b) — per flow, muxed through a bounded
/// [`FlowTable`]. The pacing buffer and rate controller stay shared: the
/// proxy meters one egress link, whatever mix of flows crosses it.
pub struct CcdProxy {
    /// Sidecar parameters (kept for handshakes and new-flow sessions).
    cfg: SidecarConfig,
    table: FlowTable<CcdFlow>,
    /// Batched fold path for the upstream producers: identifiers of
    /// interleaved arrivals buffer here (bucketed by table slot) and reach
    /// each flow's sketch via lane-parallel `observe_batch`. Flushed
    /// before quACK emission, control handling, and idle sweeps; safe to
    /// defer because upstream emission is interval-driven and power-sum
    /// folds commute within an epoch.
    folds: FoldBuffer,
    /// Pacing buffer of data packets awaiting the downstream segment.
    buffer: VecDeque<Packet>,
    /// Buffer capacity; overflow drops (creating segment-1 backpressure).
    buffer_cap: usize,
    rate: RateController,
    /// Configured initial pacing rate — the degraded fallback.
    initial_rate_bps: f64,
    /// Emission interval toward the server.
    interval: SimDuration,
    /// Downstream in-transit window (for consumer builds).
    downstream_rtt: SimDuration,
    /// Whether a drain timer is outstanding.
    drain_armed: bool,
    supervision: SupervisionConfig,
    /// Set after a restart: the fresh epoch each recreated flow announces
    /// upstream when its data reappears.
    restart_announce: Option<u32>,
    /// Supervisor outcomes of sessions the table already reclaimed
    /// (`(degradations, recoveries)`), so report totals survive eviction.
    evicted_sup: (u64, u64),
    /// The shared `TOKEN_GRACE` chain: arms are deduped and superseded
    /// chains cancelled in the queue, so one event per proxy is pending.
    grace: GuardedTimer,
    /// The shared `TOKEN_SUPERVISE` chain (same guard).
    sup: GuardedTimer,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// QuACKs emitted upstream (all flows).
    pub quacks_sent: u64,
    /// QuACK bytes emitted upstream (all flows).
    pub quack_bytes: u64,
    /// Packets dropped by the pacing buffer.
    pub buffer_drops: u64,
}

impl CcdProxy {
    /// Creates the proxy.
    pub fn new(
        sidecar: SidecarConfig,
        interval: SimDuration,
        initial_rate_bps: f64,
        buffer_cap: usize,
        downstream_rtt: SimDuration,
        supervision: SupervisionConfig,
    ) -> Self {
        Self::with_flow_table(
            sidecar,
            interval,
            initial_rate_bps,
            buffer_cap,
            downstream_rtt,
            supervision,
            FlowTableConfig::default(),
        )
    }

    /// Creates the proxy with explicit flow-table sizing.
    #[allow(clippy::too_many_arguments)]
    pub fn with_flow_table(
        sidecar: SidecarConfig,
        interval: SimDuration,
        initial_rate_bps: f64,
        buffer_cap: usize,
        downstream_rtt: SimDuration,
        supervision: SupervisionConfig,
        table: FlowTableConfig,
    ) -> Self {
        CcdProxy {
            cfg: sidecar,
            table: FlowTable::new(table),
            folds: FoldBuffer::with_capacity(FoldBuffer::DEFAULT_CAPACITY),
            buffer: VecDeque::new(),
            buffer_cap,
            rate: RateController::new(initial_rate_bps, 1_000_000.0, 10_000_000_000.0),
            initial_rate_bps,
            interval,
            downstream_rtt,
            drain_armed: false,
            supervision,
            restart_announce: None,
            evicted_sup: (0, 0),
            grace: GuardedTimer::default(),
            sup: GuardedTimer::default(),
            auth: None,
            quacks_sent: 0,
            quack_bytes: 0,
            buffer_drops: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// The current paced rate (bits/s).
    pub fn pacing_rate_bps(&self) -> f64 {
        self.rate.rate_bps
    }

    /// Live per-flow sessions.
    pub fn live_flows(&self) -> usize {
        self.table.len()
    }

    /// Supervisor degradations summed over live and reclaimed sessions.
    pub fn degradations(&self) -> u64 {
        self.evicted_sup.0
            + self
                .table
                .iter()
                .map(|(_, s)| s.supervisor.stats.degradations)
                .sum::<u64>()
    }

    /// Supervisor recoveries summed over live and reclaimed sessions.
    pub fn recoveries(&self) -> u64 {
        self.evicted_sup.1
            + self
                .table
                .iter()
                .map(|(_, s)| s.supervisor.stats.recoveries)
                .sum::<u64>()
    }

    fn any_enabled(&self) -> bool {
        self.table.iter().any(|(_, s)| s.supervisor.enabled())
    }

    /// Ensures `flow` has a session. A fresh session is supervised at once
    /// (its downstream Hello is queued before the data packet that created
    /// it reaches the pacing buffer's egress), and — post-restart — tells
    /// the server this flow's fresh upstream epoch.
    fn ensure_session(&mut self, flow: FlowId, ctx: &mut Context) -> SlotId {
        let cfg = self.cfg;
        let rtt = self.downstream_rtt;
        let supervision = self.supervision;
        let epoch = self.restart_announce;
        let now = ctx.now();
        let (created, slot) = self.table.ensure_slot(flow, now, || {
            let mut upstream_producer = QuackProducer::new(cfg);
            if let Some(e) = epoch {
                upstream_producer.reset(e);
            }
            CcdFlow {
                upstream_producer,
                downstream_consumer: QuackConsumer::new(cfg, rtt),
                next_tag: 0,
                supervisor: Supervisor::new(supervision),
                quacks: 0,
            }
        });
        if created {
            if let Some(e) = epoch {
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch: e },
                    flow,
                    IfaceId(0),
                    &mut self.auth,
                    ctx,
                );
            }
            self.supervise_flow(flow, ctx);
        }
        slot
    }

    /// Drains the fold buffer: buckets buffered identifiers by slot and
    /// feeds each flow's run to its upstream producer as one batch.
    fn flush_folds(&mut self, ctx: &mut Context) {
        if self.folds.is_empty() {
            return;
        }
        self.folds.flush(&mut self.table, |_, session, ids| {
            session.upstream_producer.observe_batch(ids);
        });
        obs::fold_flush(ctx, &mut self.folds);
    }

    fn arm_drain(&mut self, pkt_size: u32, ctx: &mut Context) {
        let gap = SimDuration::from_secs_f64(pkt_size as f64 * 8.0 / self.rate.rate_bps);
        self.drain_armed = true;
        ctx.set_timer_after(gap, TOKEN_DRAIN);
    }

    fn drain_one(&mut self, ctx: &mut Context) {
        self.drain_armed = false;
        if let Some(pkt) = self.buffer.pop_front() {
            // Forwarding downstream: mirror the identifier into the packet's
            // flow session (tag is a local counter — the proxy never reads
            // protocol fields). A degraded or reclaimed session forwards
            // unmirrored: the proxy is then a plain pacer for that flow.
            let now = ctx.now();
            if let Some(session) = self.table.peek_mut(pkt.flow) {
                if session.supervisor.enabled() {
                    let tag = session.next_tag;
                    session.next_tag += 1;
                    session.downstream_consumer.record_sent(pkt.id, tag, now);
                    session.supervisor.note_send(now);
                }
            }
            let size = pkt.size;
            ctx.send(IfaceId(1), pkt);
            if !self.buffer.is_empty() {
                self.arm_drain(size, ctx);
            }
        }
    }

    fn handle_client_quack(&mut self, flow: FlowId, epoch: u32, bytes: &[u8], ctx: &mut Context) {
        let now = ctx.now();
        let result = match self.table.peek_mut(flow) {
            Some(session) => session.downstream_consumer.process_quack(now, epoch, bytes),
            None => {
                // QuACK for a flow with no mirror (never seen or already
                // reclaimed): nothing to decode against.
                #[cfg(feature = "obs")]
                ctx.obs_inc("sidecar.flow_mismatch");
                return;
            }
        };
        obs::quack_outcome(ctx, flow.0, &result);
        match result {
            Ok(report) => {
                self.rate
                    .on_feedback(report.received.len(), report.newly_missing.len());
                if let Some(session) = self.table.peek_mut(flow) {
                    session.supervisor.on_feedback_ok(now);
                }
                self.arm_grace(ctx);
            }
            Err(
                err @ (ProcessError::ThresholdExceeded { .. } | ProcessError::CountInconsistent),
            ) => {
                // Heavy downstream loss: slash the rate and reset the
                // segment sidecar.
                self.rate.rate_bps = (self.rate.rate_bps * 0.5).max(self.rate.min_bps);
                let (new_epoch, degrade) = {
                    let session = self.table.peek_mut(flow).expect("session checked above");
                    let new_epoch = session.downstream_consumer.epoch().wrapping_add(1);
                    let _ = session.downstream_consumer.reset(new_epoch);
                    (new_epoch, session.supervisor.on_quack_error(&err, now))
                };
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch: new_epoch },
                    flow,
                    IfaceId(1),
                    &mut self.auth,
                    ctx,
                );
                if degrade {
                    self.enter_degraded_flow(flow, ctx);
                }
                self.supervise_flow(flow, ctx);
            }
            Err(err) => {
                let degrade = self
                    .table
                    .peek_mut(flow)
                    .is_some_and(|s| s.supervisor.on_quack_error(&err, now));
                if degrade {
                    self.enter_degraded_flow(flow, ctx);
                }
                self.supervise_flow(flow, ctx);
            }
        }
        if let Some(session) = self.table.peek_mut(flow) {
            obs::sup_flush(ctx, &mut session.supervisor);
        }
    }

    /// One flow's downstream session fell back to plain forwarding. Only
    /// when *no* trusted session remains does the proxy stop metering
    /// altogether (flush the shared buffer, line-rate pacing) — a single
    /// bad flow must not unpace everyone else.
    fn enter_degraded_flow(&mut self, flow: FlowId, ctx: &mut Context) {
        if let Some(session) = self.table.peek_mut(flow) {
            let epoch = session.downstream_consumer.epoch().wrapping_add(1);
            let _ = session.downstream_consumer.reset(epoch);
        }
        if !self.any_enabled() {
            while let Some(pkt) = self.buffer.pop_front() {
                ctx.send(IfaceId(1), pkt);
            }
            self.drain_armed = false;
            self.rate.rate_bps = self
                .initial_rate_bps
                .clamp(self.rate.min_bps, self.rate.max_bps);
        }
    }

    /// Drives one flow's downstream supervisor: hellos while connecting or
    /// degraded, liveness while active. The supervision timer is shared;
    /// every fire polls all flows, so the earliest deadline wins.
    fn supervise_flow(&mut self, flow: FlowId, ctx: &mut Context) {
        let cfg = self.cfg;
        let buffered = !self.buffer.is_empty();
        let now = ctx.now();
        let (degraded_now, send_hello, next_deadline) = {
            let Some(session) = self.table.peek_mut(flow) else {
                return;
            };
            let expecting = buffered || session.downstream_consumer.log_len() > 0;
            let outcome = session.supervisor.poll(now, expecting);
            (
                outcome.degraded_now,
                outcome.send_hello,
                outcome.next_deadline,
            )
        };
        if degraded_now {
            self.enter_degraded_flow(flow, ctx);
        }
        if send_hello {
            let _ = send_sidecar(offer(&cfg), flow, IfaceId(1), &mut self.auth, ctx);
        }
        if let Some(deadline) = next_deadline {
            self.arm_supervise(deadline, ctx);
        }
        if let Some(session) = self.table.peek_mut(flow) {
            obs::sup_flush(ctx, &mut session.supervisor);
        }
    }

    fn supervise_all(&mut self, ctx: &mut Context) {
        let flows: Vec<FlowId> = self.table.iter().map(|(f, _)| f).collect();
        for flow in flows {
            self.supervise_flow(flow, ctx);
        }
    }

    /// Arms the shared supervision timer, keeping at most one live chain.
    fn arm_supervise(&mut self, deadline: SimTime, ctx: &mut Context) {
        self.sup.arm(deadline, TOKEN_SUPERVISE, ctx);
    }

    /// Arms the shared grace timer at the earliest deadline across flows.
    fn arm_grace(&mut self, ctx: &mut Context) {
        let deadline = self
            .table
            .iter()
            .filter_map(|(_, s)| s.downstream_consumer.next_grace_deadline())
            .min();
        let Some(deadline) = deadline else {
            return;
        };
        self.grace.arm(deadline, TOKEN_GRACE, ctx);
    }
}

impl Node for CcdProxy {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the server: observe + enqueue for paced downstream
            // forwarding.
            IfaceId(0) => {
                if packet.kind == PacketKind::Data {
                    let slot = self.ensure_session(packet.flow, ctx);
                    let enabled = self
                        .table
                        .slot_entry_mut(slot)
                        .is_some_and(|(_, s)| s.supervisor.enabled());
                    if !enabled {
                        // Degraded flow: plain forwarding, no pacing. The
                        // upstream producer keeps observing — that session
                        // belongs to the server, not to this one. Folds are
                        // deferred through the slot-bucketed batch path.
                        if self.folds.push(slot, packet.id) {
                            self.flush_folds(ctx);
                        }
                        obs::observed(ctx);
                        obs::quack_fold(ctx, packet.flow.0, packet.seq);
                        obs::flow_table(ctx, &mut self.table);
                        ctx.send(IfaceId(1), packet);
                        return;
                    }
                    if self.buffer.len() >= self.buffer_cap {
                        // Drop *without* observing: the server's sidecar
                        // sees it as missing on segment 1 and slows down.
                        self.buffer_drops += 1;
                        return;
                    }
                    if self.folds.push(slot, packet.id) {
                        self.flush_folds(ctx);
                    }
                    obs::observed(ctx);
                    obs::quack_fold(ctx, packet.flow.0, packet.seq);
                    obs::flow_table(ctx, &mut self.table);
                    let size = packet.size;
                    self.buffer.push_back(packet);
                    if !self.drain_armed {
                        self.arm_drain(size, ctx);
                    }
                } else {
                    // Control/sidecar traffic from the server side. Control
                    // handling reads and resets producer state, so deferred
                    // folds must land first.
                    if let Payload::Sidecar { proto, ref bytes } = packet.payload {
                        self.flush_folds(ctx);
                        match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                            Ok((mflow, SidecarMessage::Reset { epoch })) => {
                                let flow = FlowId(mflow);
                                self.ensure_session(flow, ctx);
                                if let Some(session) = self.table.peek_mut(flow) {
                                    session.upstream_producer.reset(epoch);
                                }
                            }
                            Ok((mflow, hello @ SidecarMessage::Hello { .. })) => {
                                let flow = FlowId(mflow);
                                let accepted =
                                    accept_hello(&Capabilities::default(), &hello).is_ok();
                                obs::handshake(ctx, accepted);
                                if accepted {
                                    // The server (re)offering the upstream
                                    // session; reply with the flow producer's
                                    // epoch (fresh if the sketch already has
                                    // history).
                                    self.ensure_session(flow, ctx);
                                    let epoch = {
                                        let session = self
                                            .table
                                            .peek_mut(flow)
                                            .expect("session just ensured");
                                        if session.upstream_producer.count() == 0 {
                                            session.upstream_producer.epoch()
                                        } else {
                                            let e =
                                                session.upstream_producer.epoch().wrapping_add(1);
                                            session.upstream_producer.reset(e);
                                            e
                                        }
                                    };
                                    let _ = send_sidecar(
                                        SidecarMessage::Reset { epoch },
                                        flow,
                                        IfaceId(0),
                                        &mut self.auth,
                                        ctx,
                                    );
                                }
                            }
                            _ => {}
                        }
                        obs::flow_table(ctx, &mut self.table);
                        return;
                    }
                    ctx.send(IfaceId(1), packet);
                }
            }
            // From the client: consume quACKs, forward the rest upstream.
            IfaceId(1) => match packet.payload {
                Payload::Sidecar { proto, ref bytes } => {
                    // Degradation or resync below may evict or reset
                    // sessions; land deferred folds first.
                    self.flush_folds(ctx);
                    match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                        Ok((mflow, SidecarMessage::Quack { epoch, bytes })) => {
                            let flow = FlowId(mflow);
                            let enabled = self
                                .table
                                .peek_mut(flow)
                                .is_some_and(|s| s.supervisor.enabled());
                            if enabled {
                                self.handle_client_quack(flow, epoch, &bytes, ctx);
                            }
                        }
                        Ok((mflow, SidecarMessage::Reset { epoch })) => {
                            // Handshake-ack / resync from the client's
                            // producer.
                            let flow = FlowId(mflow);
                            self.ensure_session(flow, ctx);
                            if let Some(session) = self.table.peek_mut(flow) {
                                if epoch != session.downstream_consumer.epoch() {
                                    let _ = session.downstream_consumer.reset(epoch);
                                }
                                session.supervisor.on_handshake_ack(ctx.now());
                            }
                            self.supervise_flow(flow, ctx);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            // Undecodable sidecar datagram (e.g. corrupted
                            // in flight): a hard session error, never a
                            // panic. Content is garbage, so attribute it by
                            // the datagram's 4-tuple.
                            let flow = packet.flow;
                            let degrade = self
                                .table
                                .peek_mut(flow)
                                .is_some_and(|s| s.supervisor.note_error(ctx.now()));
                            if degrade {
                                self.enter_degraded_flow(flow, ctx);
                            }
                            self.supervise_flow(flow, ctx);
                        }
                    }
                    obs::flow_table(ctx, &mut self.table);
                }
                _ => ctx.send(IfaceId(0), packet),
            },
            other => panic!("ccd proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(self.interval, TOKEN_EMIT);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOKEN_EMIT => {
                // Emission reads every producer sketch: deferred folds must
                // be in the power sums before the snapshots below.
                self.flush_folds(ctx);
                // Reap idle flows first: finished flows stop costing
                // upstream emissions on the very next tick.
                for (f, session) in self.table.sweep_idle(ctx.now()) {
                    self.evicted_sup.0 += session.supervisor.stats.degradations;
                    self.evicted_sup.1 += session.supervisor.stats.recoveries;
                    obs::flow_evicted(ctx, f.0, session.quacks);
                }
                let flows: Vec<FlowId> = self.table.iter().map(|(f, _)| f).collect();
                for flow in flows {
                    let (msg, fill, epoch, count) = {
                        let session = self.table.peek_mut(flow).expect("listed above");
                        let fill = session.upstream_producer.burst_fill();
                        let msg = session.upstream_producer.emit();
                        session.quacks += 1;
                        (
                            msg,
                            fill,
                            session.upstream_producer.epoch(),
                            session.upstream_producer.count(),
                        )
                    };
                    self.quacks_sent += 1;
                    let bytes = send_sidecar(msg, flow, IfaceId(0), &mut self.auth, ctx);
                    self.quack_bytes += bytes as u64;
                    obs::quack_emitted(ctx, epoch, count, fill, bytes);
                }
                obs::flow_table(ctx, &mut self.table);
                ctx.set_timer_after(self.interval, TOKEN_EMIT);
            }
            TOKEN_DRAIN => self.drain_one(ctx),
            // Superseded chains are cancelled in the queue; `fire` filters
            // the rare stragglers (chains orphaned by a crash).
            TOKEN_GRACE => {
                if !self.grace.fire(ctx) {
                    return;
                }
                // Confirmed downstream losses: the client will recover via
                // the end-to-end protocol; the proxy only meters its rate.
                let flows: Vec<FlowId> = self.table.iter().map(|(f, _)| f).collect();
                for flow in flows {
                    if let Some(session) = self.table.peek_mut(flow) {
                        let _ = session.downstream_consumer.poll_expired(ctx.now());
                    }
                }
                self.arm_grace(ctx);
            }
            TOKEN_SUPERVISE if self.sup.fire(ctx) => {
                self.supervise_all(ctx);
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // Everything volatile is gone: pacing buffer, sketches, mirror
        // logs, session state. Each flow resyncs lazily as its data
        // reappears — announcing a fresh time-derived upstream epoch and
        // re-handshaking its downstream session from scratch.
        self.buffer.clear();
        self.drain_armed = false;
        self.rate.rate_bps = self
            .initial_rate_bps
            .clamp(self.rate.min_bps, self.rate.max_bps);
        let (mut deg, mut rec) = (0, 0);
        for (_, s) in self.table.iter() {
            deg += s.supervisor.stats.degradations;
            rec += s.supervisor.stats.recoveries;
        }
        self.evicted_sup.0 += deg;
        self.evicted_sup.1 += rec;
        self.table = FlowTable::new(*self.table.config());
        self.folds.clear();
        // Stale guards would suppress re-arming for reborn sessions;
        // disarm cancels whatever chains survived the outage.
        self.grace.disarm(ctx);
        self.sup.disarm(ctx);
        self.restart_announce = Some(restart_epoch(ctx.now()));
        ctx.set_timer_after(self.interval, TOKEN_EMIT);
    }

    fn name(&self) -> &str {
        "ccd-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The server end host: unchanged transport sender whose congestion window
/// is steered by the proxy's quACKs (the "library install" of §2.1).
pub struct CcdServer {
    transport: SenderCore,
    cfg: SidecarConfig,
    sidecar: QuackConsumer<Fp32>,
    /// The connection this sidecar belongs to; its messages carry this flow
    /// and inbound control for other flows is ignored.
    flow: FlowId,
    /// Sidecar-controlled window (packets).
    window: f64,
    max_window: f64,
    /// End-to-end congestion control to fall back on when the sidecar
    /// session degrades (the paper's "no worse than no sidecar" guarantee).
    fallback_cc: CcAlgorithm,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// Supervises the proxy→server quACK session (the window-steering loop).
    pub supervisor: Supervisor,
    /// The shared `TOKEN_RTO` chain. `pump` runs on every packet and ACK;
    /// the guard keeps one live chain instead of one per call.
    rto: GuardedTimer,
    /// The shared `TOKEN_GRACE` chain (same guard).
    grace: GuardedTimer,
    /// The shared `TOKEN_SUPERVISE` chain (same guard).
    sup: GuardedTimer,
}

impl CcdServer {
    /// Creates the server. `fallback_cc` takes over in degraded mode.
    pub fn new(
        transport: SenderConfig,
        sidecar: SidecarConfig,
        segment_rtt: SimDuration,
        fallback_cc: CcAlgorithm,
        supervision: SupervisionConfig,
    ) -> Self {
        let initial = transport.initial_cwnd as f64;
        let flow = transport.flow;
        let mut core = SenderCore::new(transport);
        core.set_cwnd_cap(Some(initial as u64));
        CcdServer {
            transport: core,
            cfg: sidecar,
            sidecar: QuackConsumer::new(sidecar, segment_rtt),
            flow,
            window: initial,
            max_window: 10_000.0,
            fallback_cc,
            auth: None,
            supervisor: Supervisor::new(supervision),
            rto: GuardedTimer::default(),
            grace: GuardedTimer::default(),
            sup: GuardedTimer::default(),
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Transport statistics.
    pub fn stats(&self) -> &sidecar_netsim::transport::SenderStats {
        self.transport.stats()
    }

    /// The transport core (for report extraction).
    pub fn core(&self) -> &SenderCore {
        &self.transport
    }

    /// The current sidecar-steered window.
    pub fn window(&self) -> u64 {
        self.window as u64
    }

    fn pump(&mut self, ctx: &mut Context) {
        let enabled = self.supervisor.enabled();
        for pkt in self.transport.poll_send(ctx.now()) {
            // Mirror every transmission into the segment-1 sidecar — only
            // while the session is trusted; in degraded mode the fallback
            // congestion control runs on e2e ACKs alone.
            if enabled {
                self.sidecar.record_sent(pkt.id, pkt.seq, ctx.now());
                self.supervisor.note_send(ctx.now());
            }
            ctx.send(IfaceId(0), pkt);
        }
        obs::transport_lifecycle(ctx, &mut self.transport);
        if let Some(deadline) = self.transport.next_timeout() {
            self.rto.arm(deadline, TOKEN_RTO, ctx);
        }
    }

    fn handle_quack(&mut self, epoch: u32, bytes: &[u8], ctx: &mut Context) {
        let result = self.sidecar.process_quack(ctx.now(), epoch, bytes);
        obs::quack_outcome(ctx, self.flow.0, &result);
        match result {
            Ok(report) => {
                self.supervisor.on_feedback_ok(ctx.now());
                // Flight recorder: the mirror tags packets by their packet
                // number, so a newly-missing tag IS the lost pn.
                for &(_, pn) in &report.newly_missing {
                    obs::decode_missing(ctx, self.flow.0, pn);
                }
                // AIMD on segment-1 feedback (§2.1: grow without e2e ACKs,
                // "decrease the congestion window" on segment loss).
                if report.newly_missing.is_empty() {
                    self.window += report.received.len() as f64 * 0.5;
                } else {
                    self.window *= 0.7;
                }
                self.window = self.window.clamp(2.0, self.max_window);
                self.transport.set_cwnd_cap(Some(self.window as u64));
                if let Some(deadline) = self.sidecar.next_grace_deadline() {
                    self.grace.arm(deadline, TOKEN_GRACE, ctx);
                }
            }
            Err(
                err @ (ProcessError::ThresholdExceeded { .. } | ProcessError::CountInconsistent),
            ) => {
                self.window = (self.window * 0.5).max(2.0);
                self.transport.set_cwnd_cap(Some(self.window as u64));
                let epoch = self.sidecar.epoch().wrapping_add(1);
                let _ = self.sidecar.reset(epoch);
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch },
                    self.flow,
                    IfaceId(0),
                    &mut self.auth,
                    ctx,
                );
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
            Err(err) => {
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }

    /// Hand the window back to real end-to-end congestion control, seeded
    /// at the current steered window so the handover is rate-continuous.
    fn enter_degraded(&mut self) {
        self.transport.swap_cc(self.fallback_cc, self.window as u64);
        self.transport.set_cwnd_cap(None);
        let epoch = self.sidecar.epoch().wrapping_add(1);
        let _ = self.sidecar.reset(epoch);
    }

    /// Resume sidecar steering from wherever the fallback control settled.
    fn exit_degraded(&mut self) {
        let resume = self.transport.effective_cwnd().max(2);
        self.window = (resume as f64).clamp(2.0, self.max_window);
        self.transport.swap_cc(STEERED_CC, resume);
        self.transport.set_cwnd_cap(Some(self.window as u64));
    }

    fn supervise(&mut self, ctx: &mut Context) {
        let expecting = !self.transport.is_complete();
        let outcome = self.supervisor.poll(ctx.now(), expecting);
        if outcome.degraded_now {
            self.enter_degraded();
        }
        if outcome.send_hello {
            let cfg = self.cfg;
            let _ = send_sidecar(offer(&cfg), self.flow, IfaceId(0), &mut self.auth, ctx);
        }
        if let Some(deadline) = outcome.next_deadline {
            self.sup.arm(deadline, TOKEN_SUPERVISE, ctx);
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }
}

impl Node for CcdServer {
    fn on_start(&mut self, ctx: &mut Context) {
        // Hello first: on FIFO links it reaches the proxy ahead of the
        // first data burst, so the handshake costs nothing.
        self.supervise(ctx);
        self.pump(ctx);
    }

    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match packet.payload {
            Payload::Ack(ref info) => {
                self.transport.on_ack(info, ctx.now());
                self.pump(ctx);
            }
            Payload::Sidecar { proto, ref bytes } => {
                match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                    // An end-host sidecar owns exactly one connection: control
                    // tagged for any other flow is not ours.
                    Ok((mflow, _)) if mflow != self.flow.0 => {
                        #[cfg(feature = "obs")]
                        ctx.obs_inc("sidecar.flow_mismatch");
                    }
                    Ok((_, SidecarMessage::Quack { epoch, bytes })) => {
                        if self.supervisor.enabled() {
                            self.handle_quack(epoch, &bytes, ctx);
                            self.pump(ctx);
                        }
                    }
                    Ok((_, SidecarMessage::Reset { epoch })) => {
                        // Handshake-ack / resync from the proxy's producer.
                        if epoch != self.sidecar.epoch() {
                            let _ = self.sidecar.reset(epoch);
                        }
                        if self.supervisor.on_handshake_ack(ctx.now()) {
                            self.exit_degraded();
                        }
                        self.supervise(ctx);
                    }
                    Ok(_) => {}
                    Err(_) => {
                        // Undecodable sidecar datagram: count it against the
                        // session, never panic or mis-steer.
                        if self.supervisor.note_error(ctx.now()) {
                            self.enter_degraded();
                        }
                        self.supervise(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOKEN_SUPERVISE if self.sup.fire(ctx) => {
                self.supervise(ctx);
            }
            TOKEN_RTO => {
                if !self.rto.fire(ctx) {
                    return;
                }
                if let Some(deadline) = self.transport.next_timeout() {
                    if ctx.now() >= deadline {
                        self.transport.on_rto(ctx.now());
                    }
                }
                self.pump(ctx);
            }
            TOKEN_GRACE => {
                if !self.grace.fire(ctx) {
                    return;
                }
                // Confirmed segment-1 losses: keep the mirror tidy; e2e
                // reliability handles retransmission.
                let _ = self.sidecar.poll_expired(ctx.now());
                if let Some(deadline) = self.sidecar.next_grace_deadline() {
                    self.grace.arm(deadline, TOKEN_GRACE, ctx);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ccd-server"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Scenario parameters for the congestion-control-division experiment.
#[derive(Clone, Debug)]
pub struct CcdScenario {
    /// Data units the server must deliver.
    pub total_packets: u64,
    /// Server↔proxy segment (fast, clean).
    pub upstream: LinkConfig,
    /// Proxy↔client segment (slow and/or lossy).
    pub downstream: LinkConfig,
    /// Sidecar parameters.
    pub sidecar: SidecarConfig,
    /// QuACK interval on both segments (≈ per segment RTT).
    pub quack_interval: SimDuration,
    /// Proxy pacing-buffer capacity.
    pub buffer_cap: usize,
    /// Baseline congestion control (the sidecar run uses window steering);
    /// also the server's degraded-mode fallback.
    pub baseline_cc: CcAlgorithm,
    /// Session supervision (handshake, liveness, degradation) parameters.
    pub supervision: SupervisionConfig,
    /// Pre-shared-secret control-channel authentication. `Some` seals every
    /// sidecar datagram in the run (each node gets a distinct session
    /// nonce); `None` keeps the wire image byte-identical to pre-auth
    /// builds. Baseline runs carry no sidecar traffic and ignore it.
    pub auth: Option<AuthConfig>,
    /// Flight-recorder ring capacity override (events); `None` keeps the
    /// obs default. Ignored when the `obs` feature is off.
    pub trace_capacity: Option<usize>,
}

impl Default for CcdScenario {
    fn default() -> Self {
        CcdScenario {
            total_packets: 2_000,
            upstream: LinkConfig {
                rate_bps: 200_000_000,
                delay: SimDuration::from_millis(10),
                ..LinkConfig::default()
            },
            downstream: LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(20),
                loss: sidecar_netsim::link::LossModel::Bernoulli { p: 0.01 },
                queue_packets: 256,
                ..LinkConfig::default()
            },
            sidecar: SidecarConfig {
                threshold: 50,
                reorder_grace: SimDuration::from_millis(10),
                ..SidecarConfig::paper_default()
            },
            quack_interval: SimDuration::from_millis(30),
            buffer_cap: 2_048,
            baseline_cc: CcAlgorithm::NewReno,
            supervision: SupervisionConfig::default(),
            auth: None,
            trace_capacity: None,
        }
    }
}

impl CcdScenario {
    /// Runs the sidecar (division) variant.
    pub fn run_sidecar(&self, seed: u64) -> ScenarioReport {
        self.run_sidecar_inner(seed, None)
    }

    /// Runs the sidecar variant under a fault script.
    pub fn run_sidecar_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run_sidecar_inner(seed, Some(faults))
    }

    fn run_sidecar_inner(&self, seed: u64, faults: Option<&FaultScript>) -> ScenarioReport {
        let mut w = World::new(seed);
        #[cfg(feature = "obs")]
        if let Some(cap) = self.trace_capacity {
            w.obs_mut().trace = sidecar_obs::EventTrace::with_capacity(cap);
        }
        let mut server_node = CcdServer::new(
            SenderConfig {
                total_packets: Some(self.total_packets),
                cc: STEERED_CC, // window fully sidecar-steered
                id_seed: seed ^ 0xCCD,
                ..SenderConfig::default()
            },
            self.sidecar,
            self.upstream.delay * 2 + SimDuration::from_millis(5),
            self.baseline_cc,
            self.supervision,
        );
        let mut proxy_node = CcdProxy::new(
            self.sidecar,
            self.quack_interval,
            self.downstream.rate_bps as f64 * 0.9,
            self.buffer_cap,
            self.downstream.delay * 2 + SimDuration::from_millis(5),
            self.supervision,
        );
        let mut client_node =
            CcdClient::new(ReceiverConfig::default(), self.sidecar, self.quack_interval);
        if let Some(auth) = self.auth {
            // Distinct per-node nonces keep each direction's replay window
            // independent (and the runs deterministic).
            server_node = server_node.with_auth(auth.with_nonce(1));
            proxy_node = proxy_node.with_auth(auth.with_nonce(2));
            client_node = client_node.with_auth(auth.with_nonce(3));
        }
        let server = w.add_node(Box::new(server_node));
        let proxy = w.add_node(Box::new(proxy_node));
        let client = w.add_node(Box::new(client_node));
        w.connect(server, proxy, self.upstream.clone(), self.upstream.clone());
        w.connect(
            proxy,
            client,
            self.downstream.clone(),
            self.downstream.clone(),
        );
        if let Some(script) = faults {
            let plan = script.lower(proxy, (proxy, client));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous deadline instead.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));

        // Snapshot the world registry before borrowing nodes; mirror it
        // into the process-global registry for bench `--metrics-out` dumps.
        #[cfg(feature = "obs")]
        let metrics = {
            let snap = w.obs().metrics.snapshot();
            sidecar_obs::global().absorb(&snap);
            snap
        };
        #[cfg(feature = "obs")]
        let trace = {
            let trace = w.obs().trace.clone();
            sidecar_obs::global_trace_absorb(&trace);
            trace
        };
        #[cfg(feature = "obs")]
        let scoreboard = w.obs().scoreboard.snapshot(super::SCOREBOARD_TOP_K);
        let srv = w.node_as::<CcdServer>(server);
        let stats = srv.stats().clone();
        let mtu = srv.core().config().mtu;
        let px = w.node_as::<CcdProxy>(proxy);
        let cl = w.node_as::<CcdClient>(client);
        ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            client_acks: cl.stats().acks_sent,
            sidecar_messages: px.quacks_sent + cl.quacks_sent,
            sidecar_bytes: px.quack_bytes + cl.quack_bytes,
            proxy_retransmissions: 0,
            degradations: srv.supervisor.stats.degradations + px.degradations(),
            recoveries: srv.supervisor.stats.recoveries + px.recoveries(),
            #[cfg(feature = "obs")]
            metrics,
            #[cfg(feature = "obs")]
            trace,
            #[cfg(feature = "obs")]
            timeseries: sidecar_obs::TimeSeries::default(),
            #[cfg(feature = "obs")]
            scoreboard,
        }
    }

    /// Runs the baseline: plain forwarder, e2e congestion control.
    pub fn run_baseline(&self, seed: u64) -> ScenarioReport {
        self.run_baseline_inner(seed, None)
    }

    /// Runs the baseline under the same fault script as the sidecar run.
    pub fn run_baseline_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run_baseline_inner(seed, Some(faults))
    }

    fn run_baseline_inner(&self, seed: u64, faults: Option<&FaultScript>) -> ScenarioReport {
        let mut w = World::new(seed);
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(self.total_packets),
            cc: self.baseline_cc,
            id_seed: seed ^ 0xCCD,
            ..SenderConfig::default()
        }));
        let proxy = w.add_node(Forwarder::boxed());
        let client = w.add_node(ReceiverNode::boxed(ReceiverConfig::default()));
        w.connect(server, proxy, self.upstream.clone(), self.upstream.clone());
        w.connect(
            proxy,
            client,
            self.downstream.clone(),
            self.downstream.clone(),
        );
        if let Some(script) = faults {
            let plan = script.lower(proxy, (proxy, client));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous deadline instead.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));

        let srv = w.node_as::<SenderNode>(server);
        let stats = srv.stats().clone();
        let mtu = srv.core().config().mtu;
        let cl = w.node_as::<ReceiverNode>(client);
        ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            client_acks: cl.stats().acks_sent,
            ..ScenarioReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_controller_aimd_behaviour() {
        let mut rc = RateController::new(10e6, 1e6, 100e6);
        // Clean feedback grows multiplicatively.
        rc.on_feedback(100, 0);
        assert!((rc.rate_bps - 11e6).abs() < 1.0);
        // Lossy feedback backs off.
        rc.on_feedback(80, 20);
        assert!((rc.rate_bps - 8.8e6).abs() < 1.0);
        // Clamped at both ends.
        for _ in 0..200 {
            rc.on_feedback(0, 100);
        }
        assert_eq!(rc.rate_bps, 1e6);
        for _ in 0..200 {
            rc.on_feedback(100, 0);
        }
        assert_eq!(rc.rate_bps, 100e6);
        // No feedback, no movement.
        let before = rc.rate_bps;
        rc.on_feedback(0, 0);
        assert_eq!(rc.rate_bps, before);
        // Sub-threshold loss (1 in 1000 < 1%) still counts as clean.
        let mut rc = RateController::new(10e6, 1e6, 100e6);
        rc.on_feedback(999, 1);
        assert!(rc.rate_bps > 10e6);
    }

    #[test]
    fn sidecar_division_completes() {
        let scenario = CcdScenario {
            total_packets: 800,
            ..CcdScenario::default()
        };
        let report = scenario.run_sidecar(1);
        assert!(report.completion.is_some(), "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn division_beats_e2e_newreno_on_lossy_downstream() {
        let scenario = CcdScenario {
            total_packets: 1_500,
            ..CcdScenario::default()
        };
        let side = scenario.run_sidecar(3);
        let base = scenario.run_baseline(3);
        assert!(
            side.completion_secs() < base.completion_secs(),
            "sidecar {:.3}s vs baseline {:.3}s",
            side.completion_secs(),
            base.completion_secs()
        );
    }

    #[test]
    fn proxy_rate_adapts_downward_under_loss() {
        let scenario = CcdScenario {
            total_packets: 1_000,
            downstream: LinkConfig {
                rate_bps: 20_000_000,
                delay: SimDuration::from_millis(20),
                loss: sidecar_netsim::link::LossModel::Bernoulli { p: 0.05 },
                ..LinkConfig::default()
            },
            ..CcdScenario::default()
        };
        // Just verify it completes and the controller stayed sane.
        let report = scenario.run_sidecar(4);
        assert!(report.completion.is_some(), "{report:?}");
    }

    #[test]
    fn deterministic_reports() {
        let scenario = CcdScenario {
            total_packets: 500,
            ..CcdScenario::default()
        };
        assert_eq!(scenario.run_sidecar(9), scenario.run_sidecar(9));
        assert_eq!(scenario.run_baseline(9), scenario.run_baseline(9));
    }

    #[cfg(feature = "auth")]
    #[test]
    fn authenticated_run_completes_without_rejects() {
        let scenario = CcdScenario {
            total_packets: 500,
            auth: Some(crate::config::AuthConfig::from_secret(0xFEED_FACE, 7)),
            ..CcdScenario::default()
        };
        let report = scenario.run_sidecar(9);
        assert!(report.completion.is_some(), "{report:?}");
        assert!(report.sidecar_messages > 0);
        // On a clean (uncorrupted) path every sealed datagram verifies.
        #[cfg(feature = "obs")]
        {
            assert!(report.metrics.counter("auth.accepted") > 0, "{report:?}");
            assert_eq!(report.metrics.counter_sum("auth.rejected."), 0);
        }
        assert_eq!(scenario.run_sidecar(9), scenario.run_sidecar(9));
    }
}
