//! §2.2 ACK reduction (paper Fig. 3).
//!
//! The client transmits drastically fewer end-to-end ACKs (via the QUIC
//! ACK-frequency knob), reducing upstream congestion; the proxy's sidecar
//! quACKs frequently on the client's behalf — "the sidecar protocol
//! effectively treats the quACKs as client ACKs". The server moves its
//! *sending window* forward on quACK confirmations (one proxy-RTT away)
//! while the rare end-to-end ACKs continue to drive retransmission and
//! final delivery confirmation.
//!
//! The client "does not need to participate in the sidecar protocol at
//! all" — it is a completely unmodified receiver.

use crate::auth::ChannelAuth;
use crate::config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
use crate::endpoint::{ProcessError, QuackConsumer, QuackProducer};
use crate::flows::{FlowTable, FlowTableConfig, SlotId};
use crate::messages::SidecarMessage;
use crate::negotiate::{accept_hello, offer, Capabilities};
use crate::protocols::{
    obs, open_ctrl, restart_epoch, send_sidecar, FaultScript, GuardedTimer, ScenarioReport,
};
use crate::supervise::Supervisor;
use sidecar_galois::Fp32;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{FlowId, Packet, PacketKind, Payload};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderCore, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use std::any::Any;

const TOKEN_RTO: u64 = 1;
const TOKEN_GRACE: u64 = 2;
const TOKEN_SUPERVISE: u64 = 3;
/// Periodic proxy housekeeping: reap idle flow sessions even when no
/// traffic arrives to piggyback the sweep on.
const TOKEN_SWEEP: u64 = 4;

/// One flow's producer state inside the proxy's flow table.
struct ProducerSession {
    producer: QuackProducer<Fp32>,
    /// Lifetime quACKs emitted for this flow (reported at eviction).
    quacks: u64,
}

/// The ACK-reduction proxy: a regular router whose sidecar quACKs every
/// `n` data packets toward the server (paper: "every other packet such as
/// in TCP, much more frequently than in the protocol for congestion
/// control"). One producer session per flow, muxed through a bounded
/// [`FlowTable`].
pub struct AckRedProxy {
    cfg: SidecarConfig,
    table: FlowTable<ProducerSession>,
    /// Epoch to announce when a session is (re)created after a restart:
    /// the sketches died with the node, so each flow's first post-restart
    /// packet triggers a `Reset` that stops the server interpreting quACKs
    /// against its stale mirror.
    restart_announce: Option<u32>,
    /// Data packets observed (drives the periodic idle sweep).
    observed_packets: u64,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// QuACK datagrams emitted.
    pub quacks_sent: u64,
    /// QuACK bytes emitted.
    pub quack_bytes: u64,
}

impl AckRedProxy {
    /// Creates the proxy; `cfg.frequency` should be
    /// [`QuackFrequency::EveryPackets`].
    pub fn new(cfg: SidecarConfig) -> Self {
        Self::with_flow_table(cfg, FlowTableConfig::default())
    }

    /// Creates the proxy with explicit flow-table sizing.
    pub fn with_flow_table(cfg: SidecarConfig, table: FlowTableConfig) -> Self {
        AckRedProxy {
            cfg,
            table: FlowTable::new(table),
            restart_announce: None,
            observed_packets: 0,
            auth: None,
            quacks_sent: 0,
            quack_bytes: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Live per-flow sessions.
    pub fn live_flows(&self) -> usize {
        self.table.len()
    }

    /// Looks up (or lazily creates) `flow`'s producer session, returning a
    /// generation-checked slot handle so the hot path re-enters the slab
    /// without a second index probe. A session created by a data packet
    /// after a restart announces the fresh epoch.
    fn session_slot(&mut self, flow: FlowId, announce: bool, ctx: &mut Context) -> SlotId {
        let cfg = self.cfg;
        let epoch = self.restart_announce;
        let (created, slot) = self.table.ensure_slot(flow, ctx.now(), || {
            let mut producer = QuackProducer::new(cfg);
            if let Some(e) = epoch {
                producer.reset(e);
            }
            ProducerSession {
                producer,
                quacks: 0,
            }
        });
        if created && announce {
            if let Some(e) = epoch {
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch: e },
                    flow,
                    IfaceId(0),
                    &mut self.auth,
                    ctx,
                );
            }
        }
        slot
    }

    /// Control-path convenience: ensure and borrow the session directly.
    fn session(&mut self, flow: FlowId, announce: bool, ctx: &mut Context) -> &mut ProducerSession {
        let slot = self.session_slot(flow, announce, ctx);
        self.table
            .slot_entry_mut(slot)
            .expect("slot just ensured")
            .1
    }
}

impl Node for AckRedProxy {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the server: observe and forward to the client; quACK on
            // schedule.
            IfaceId(0) => {
                let flow = packet.flow;
                // The slot handle from the lookup carries through to the
                // emit block below, so a quACK-triggering packet costs one
                // index probe total. The quACK cadence is packet-count
                // driven (`EveryPackets`), so folds are applied per packet —
                // deferring them would shift every emission boundary.
                let mut emit: Option<SlotId> = None;
                if packet.kind == PacketKind::Data {
                    let slot = self.session_slot(flow, true, ctx);
                    if self
                        .table
                        .slot_entry_mut(slot)
                        .is_some_and(|(_, s)| s.producer.observe(packet.id))
                    {
                        emit = Some(slot);
                    }
                    obs::observed(ctx);
                    obs::quack_fold(ctx, packet.flow.0, packet.seq);
                    self.observed_packets += 1;
                    if self.observed_packets.is_multiple_of(64) {
                        for (f, s) in self.table.sweep_idle(ctx.now()) {
                            obs::flow_evicted(ctx, f.0, s.quacks);
                        }
                    }
                }
                if let Payload::Sidecar { proto, ref bytes } = packet.payload {
                    match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                        Ok((mflow, SidecarMessage::Reset { epoch })) => {
                            let flow = FlowId(mflow);
                            self.session(flow, false, ctx).producer.reset(epoch);
                            obs::flow_table(ctx, &mut self.table);
                            return;
                        }
                        Ok((mflow, hello @ SidecarMessage::Hello { .. })) => {
                            // Server handshake; Reset reply doubles as the
                            // ack. Recovery Hellos (non-empty sketch) get a
                            // fresh epoch, startup Hellos keep the pristine
                            // one.
                            let flow = FlowId(mflow);
                            let accepted = accept_hello(&Capabilities::default(), &hello).is_ok();
                            obs::handshake(ctx, accepted);
                            if accepted {
                                let producer = &mut self.session(flow, false, ctx).producer;
                                let epoch = if producer.count() == 0 {
                                    producer.epoch()
                                } else {
                                    let e = producer.epoch().wrapping_add(1);
                                    producer.reset(e);
                                    e
                                };
                                let _ = send_sidecar(
                                    SidecarMessage::Reset { epoch },
                                    flow,
                                    IfaceId(0),
                                    &mut self.auth,
                                    ctx,
                                );
                            }
                            obs::flow_table(ctx, &mut self.table);
                            return;
                        }
                        _ => {}
                    }
                }
                ctx.send(IfaceId(1), packet);
                if let Some(slot) = emit {
                    let (_, session) = self
                        .table
                        .slot_entry_mut(slot)
                        .expect("session touched above; the idle sweep cannot evict it");
                    let fill = session.producer.burst_fill();
                    let msg = session.producer.emit();
                    let epoch = session.producer.epoch();
                    let count = session.producer.count();
                    session.quacks += 1;
                    self.quacks_sent += 1;
                    let bytes = send_sidecar(msg, flow, IfaceId(0), &mut self.auth, ctx);
                    self.quack_bytes += bytes as u64;
                    obs::quack_emitted(ctx, epoch, count, fill, bytes);
                }
                obs::flow_table(ctx, &mut self.table);
            }
            // From the client: forward upstream untouched.
            IfaceId(1) => ctx.send(IfaceId(0), packet),
            other => panic!("ack-reduction proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(self.table.config().idle_timeout, TOKEN_SWEEP);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        if token == TOKEN_SWEEP {
            for (f, s) in self.table.sweep_idle(ctx.now()) {
                obs::flow_evicted(ctx, f.0, s.quacks);
            }
            obs::flow_table(ctx, &mut self.table);
            ctx.set_timer_after(self.table.config().idle_timeout, TOKEN_SWEEP);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // Every sketch died with the node. Sessions are rebuilt lazily as
        // flows reappear; each rebuild announces this time-derived epoch so
        // the corresponding server stops interpreting quACKs against its
        // stale mirror.
        self.table = FlowTable::new(*self.table.config());
        self.restart_announce = Some(restart_epoch(ctx.now()));
        ctx.set_timer_after(self.table.config().idle_timeout, TOKEN_SWEEP);
    }

    fn name(&self) -> &str {
        "ackred-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The server end host: unchanged transport sender plus a sidecar library
/// that releases the congestion window on quACK confirmations.
pub struct AckRedServer {
    transport: SenderCore,
    sidecar: QuackConsumer<Fp32>,
    cfg: SidecarConfig,
    /// The transport's flow id: all sidecar messages are tagged with it,
    /// and inbound sidecar traffic for other flows is ignored.
    flow: FlowId,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// Session supervision: hello handshake, liveness, degraded fallback.
    pub supervisor: Supervisor,
    /// The shared `TOKEN_RTO` chain. `pump` runs on every packet and ACK;
    /// unguarded arming would queue one immortal timer chain per call (the
    /// accumulating-timer footgun), so the guard keeps exactly one.
    rto: GuardedTimer,
    /// The shared `TOKEN_GRACE` chain (same guard).
    grace: GuardedTimer,
    /// The shared `TOKEN_SUPERVISE` chain (same guard).
    sup: GuardedTimer,
    /// Packets released from window accounting by quACKs.
    pub window_releases: u64,
}

impl AckRedServer {
    /// Creates the server.
    pub fn new(
        transport: SenderConfig,
        sidecar: SidecarConfig,
        segment_rtt: SimDuration,
        supervision: SupervisionConfig,
    ) -> Self {
        let flow = transport.flow;
        AckRedServer {
            transport: SenderCore::new(transport),
            sidecar: QuackConsumer::new(sidecar, segment_rtt),
            cfg: sidecar,
            flow,
            auth: None,
            supervisor: Supervisor::new(supervision),
            rto: GuardedTimer::default(),
            grace: GuardedTimer::default(),
            sup: GuardedTimer::default(),
            window_releases: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Transport statistics.
    pub fn stats(&self) -> &sidecar_netsim::transport::SenderStats {
        self.transport.stats()
    }

    /// The transport core.
    pub fn core(&self) -> &SenderCore {
        &self.transport
    }

    fn pump(&mut self, ctx: &mut Context) {
        let enabled = self.supervisor.enabled();
        for pkt in self.transport.poll_send(ctx.now()) {
            // Degraded mode stops mirroring: the transport then behaves
            // exactly like a plain sender driven by end-to-end ACKs.
            if enabled {
                self.sidecar.record_sent(pkt.id, pkt.seq, ctx.now());
                self.supervisor.note_send(ctx.now());
            }
            ctx.send(IfaceId(0), pkt);
        }
        obs::transport_lifecycle(ctx, &mut self.transport);
        if let Some(deadline) = self.transport.next_timeout() {
            self.rto.arm(deadline, TOKEN_RTO, ctx);
        }
    }

    fn handle_quack(&mut self, epoch: u32, bytes: &[u8], ctx: &mut Context) {
        let result = self.sidecar.process_quack(ctx.now(), epoch, bytes);
        obs::quack_outcome(ctx, self.flow.0, &result);
        match result {
            Ok(report) => {
                self.supervisor.on_feedback_ok(ctx.now());
                // Flight recorder: mirror tags are packet numbers, so a
                // newly-missing tag IS the pn lost on the proxied segment.
                for &(_, pn) in &report.newly_missing {
                    obs::decode_missing(ctx, self.flow.0, pn);
                }
                // "Enable the server to move its sending window ahead more
                // quickly": confirmed-at-proxy packets stop occupying cwnd,
                // and the confirmations drive window growth in place of the
                // thinned end-to-end ACKs (which still own retransmission).
                for &(_, pn) in &report.received {
                    self.transport.mark_window_released(pn);
                    self.window_releases += 1;
                }
                self.transport
                    .sidecar_ack_credit(report.received.len() as u64, ctx.now());
                if let Some(deadline) = self.sidecar.next_grace_deadline() {
                    self.grace.arm(deadline, TOKEN_GRACE, ctx);
                }
            }
            Err(
                err @ (ProcessError::ThresholdExceeded { .. } | ProcessError::CountInconsistent),
            ) => {
                let epoch = self.sidecar.epoch().wrapping_add(1);
                let _ = self.sidecar.reset(epoch);
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch },
                    self.flow,
                    IfaceId(0),
                    &mut self.auth,
                    ctx,
                );
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
            Err(err) => {
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }

    /// Baseline fallback: drop the mirror log. No released-but-undelivered
    /// window state survives (`mark_window_released` bookkeeping is owned
    /// by the transport and remains consistent); the sender continues on
    /// end-to-end ACKs alone.
    fn enter_degraded(&mut self) {
        let epoch = self.sidecar.epoch().wrapping_add(1);
        let _ = self.sidecar.reset(epoch);
    }

    fn supervise(&mut self, ctx: &mut Context) {
        let expecting = !self.transport.is_complete();
        let outcome = self.supervisor.poll(ctx.now(), expecting);
        if outcome.degraded_now {
            self.enter_degraded();
        }
        if outcome.send_hello {
            let cfg = self.cfg;
            let _ = send_sidecar(offer(&cfg), self.flow, IfaceId(0), &mut self.auth, ctx);
        }
        if let Some(deadline) = outcome.next_deadline {
            self.sup.arm(deadline, TOKEN_SUPERVISE, ctx);
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }
}

impl Node for AckRedServer {
    fn on_start(&mut self, ctx: &mut Context) {
        // Hello first so it precedes the first data burst on the wire.
        self.supervise(ctx);
        self.pump(ctx);
    }

    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match packet.payload {
            Payload::Ack(ref info) => {
                self.transport.on_ack(info, ctx.now());
                self.pump(ctx);
            }
            Payload::Sidecar { proto, ref bytes } => {
                match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                    Ok((mflow, _)) if mflow != self.flow.0 => {
                        // A datagram for some other session (misrouted, or
                        // the proxy muxing another flow): not ours.
                        #[cfg(feature = "obs")]
                        ctx.obs_inc("sidecar.flow_mismatch");
                    }
                    Ok((_, SidecarMessage::Quack { epoch, bytes })) => {
                        if self.supervisor.enabled() {
                            self.handle_quack(epoch, &bytes, ctx);
                            self.pump(ctx);
                        }
                    }
                    Ok((_, SidecarMessage::Reset { epoch })) => {
                        // Handshake ack / proxy-restart announcement.
                        if epoch != self.sidecar.epoch() {
                            let _ = self.sidecar.reset(epoch);
                        }
                        self.supervisor.on_handshake_ack(ctx.now());
                        self.supervise(ctx);
                    }
                    Ok(_) => {}
                    Err(_) => {
                        if self.supervisor.note_error(ctx.now()) {
                            self.enter_degraded();
                        }
                        self.supervise(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOKEN_SUPERVISE if self.sup.fire(ctx) => {
                self.supervise(ctx);
            }
            TOKEN_RTO => {
                if !self.rto.fire(ctx) {
                    return;
                }
                if let Some(deadline) = self.transport.next_timeout() {
                    if ctx.now() >= deadline {
                        self.transport.on_rto(ctx.now());
                    }
                }
                self.pump(ctx);
            }
            TOKEN_GRACE => {
                if !self.grace.fire(ctx) {
                    return;
                }
                // Packets the proxy never saw: leave them to e2e loss
                // detection (§2.2: "use the less frequent end-to-end ACKs
                // when retransmission is necessary").
                let _ = self.sidecar.poll_expired(ctx.now());
                if let Some(deadline) = self.sidecar.next_grace_deadline() {
                    self.grace.arm(deadline, TOKEN_GRACE, ctx);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ackred-server"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Scenario parameters for the ACK-reduction experiment.
#[derive(Clone, Debug)]
pub struct AckReductionScenario {
    /// Data units the server must deliver.
    pub total_packets: u64,
    /// Server↔proxy segment.
    pub upstream: LinkConfig,
    /// Proxy↔client segment (the client's scarce uplink lives here).
    pub downstream: LinkConfig,
    /// Sidecar parameters (frequency should be `EveryPackets`).
    pub sidecar: SidecarConfig,
    /// Client ACK frequency in the sidecar run (high = few ACKs).
    pub reduced_ack_every: u32,
    /// Client max ACK delay when reduced (the QUIC ACK-frequency extension
    /// raises both knobs together).
    pub reduced_max_ack_delay: SimDuration,
    /// Client ACK frequency in the baseline run (QUIC default 2).
    pub normal_ack_every: u32,
    /// Server congestion control.
    pub cc: CcAlgorithm,
    /// Session supervision knobs for the server's quACK consumer.
    pub supervision: SupervisionConfig,
    /// Pre-shared-secret control-channel authentication. `Some` seals every
    /// sidecar datagram in the run (each node gets a distinct session
    /// nonce); `None` keeps the wire image byte-identical to pre-auth
    /// builds. The client is an unmodified receiver either way.
    pub auth: Option<AuthConfig>,
    /// Flight-recorder ring capacity override (events); `None` keeps the
    /// obs default. Ignored when the `obs` feature is off.
    pub trace_capacity: Option<usize>,
}

impl Default for AckReductionScenario {
    fn default() -> Self {
        AckReductionScenario {
            total_packets: 2_000,
            // Fig. 3 geometry: the proxy sits near the client; the long,
            // bottlenecked segment is server↔proxy. QuACK-released window
            // space therefore only admits packets onto the segment the
            // congestion window already governs — the short last hop can
            // never be flooded by releases.
            upstream: LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(25),
                ..LinkConfig::default()
            },
            downstream: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(2),
                ..LinkConfig::default()
            },
            sidecar: SidecarConfig {
                // §4.3: "the receiver could quACK e.g., every n = 32
                // packets"; we default to every 2 like TCP's ACK-every-other
                // on the short segment.
                frequency: QuackFrequency::EveryPackets(2),
                reorder_grace: SimDuration::from_millis(20),
                ..SidecarConfig::paper_default()
            },
            reduced_ack_every: 32,
            reduced_max_ack_delay: SimDuration::from_millis(150),
            normal_ack_every: 2,
            cc: CcAlgorithm::NewReno,
            supervision: SupervisionConfig::default(),
            auth: None,
            trace_capacity: None,
        }
    }
}

impl AckReductionScenario {
    /// The sidecar run: reduced client ACKs + proxy quACKs.
    pub fn run_sidecar(&self, seed: u64) -> ScenarioReport {
        self.run_sidecar_inner(seed, None)
    }

    /// Sidecar run with scripted faults (crash hits the proxy; blackout
    /// hits the proxy↔client segment).
    pub fn run_sidecar_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run_sidecar_inner(seed, Some(faults))
    }

    fn run_sidecar_inner(&self, seed: u64, faults: Option<&FaultScript>) -> ScenarioReport {
        let mut w = World::new(seed);
        #[cfg(feature = "obs")]
        if let Some(cap) = self.trace_capacity {
            w.obs_mut().trace = sidecar_obs::EventTrace::with_capacity(cap);
        }
        let mut server_node = AckRedServer::new(
            SenderConfig {
                total_packets: Some(self.total_packets),
                cc: self.cc,
                id_seed: seed ^ 0xAC4ED,
                // PTO must absorb the client's raised ACK delay, or every
                // delayed ACK reads as a timeout.
                peer_max_ack_delay: self.reduced_max_ack_delay + SimDuration::from_millis(50),
                ..SenderConfig::default()
            },
            self.sidecar,
            self.upstream.delay * 2 + SimDuration::from_millis(5),
            self.supervision,
        );
        let mut proxy_node = AckRedProxy::new(self.sidecar);
        if let Some(auth) = self.auth {
            // Distinct per-node nonces keep each direction's replay window
            // independent (and the runs deterministic).
            server_node = server_node.with_auth(auth.with_nonce(1));
            proxy_node = proxy_node.with_auth(auth.with_nonce(2));
        }
        let server = w.add_node(Box::new(server_node));
        let proxy = w.add_node(Box::new(proxy_node));
        let client = w.add_node(ReceiverNode::boxed(ReceiverConfig {
            ack_every: self.reduced_ack_every,
            max_ack_delay: self.reduced_max_ack_delay,
            // The QUIC ACK-frequency extension's "Ignore Order" flag:
            // reordering does not trigger immediate ACKs.
            immediate_on_gap: false,
            ..ReceiverConfig::default()
        }));
        w.connect(server, proxy, self.upstream.clone(), self.upstream.clone());
        w.connect(
            proxy,
            client,
            self.downstream.clone(),
            self.downstream.clone(),
        );
        if let Some(script) = faults {
            let plan = script.lower(proxy, (proxy, client));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous deadline instead.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));

        // Snapshot the world registry before borrowing nodes; mirror it
        // into the process-global registry for bench `--metrics-out` dumps.
        #[cfg(feature = "obs")]
        let metrics = {
            let snap = w.obs().metrics.snapshot();
            sidecar_obs::global().absorb(&snap);
            snap
        };
        #[cfg(feature = "obs")]
        let trace = {
            let trace = w.obs().trace.clone();
            sidecar_obs::global_trace_absorb(&trace);
            trace
        };
        #[cfg(feature = "obs")]
        let scoreboard = w.obs().scoreboard.snapshot(super::SCOREBOARD_TOP_K);
        let srv = w.node_as::<AckRedServer>(server);
        let stats = srv.stats().clone();
        let mtu = srv.core().config().mtu;
        let px = w.node_as::<AckRedProxy>(proxy);
        let cl = w.node_as::<ReceiverNode>(client);
        ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            client_acks: cl.stats().acks_sent,
            sidecar_messages: px.quacks_sent,
            sidecar_bytes: px.quack_bytes,
            proxy_retransmissions: 0,
            degradations: srv.supervisor.stats.degradations,
            recoveries: srv.supervisor.stats.recoveries,
            #[cfg(feature = "obs")]
            metrics,
            #[cfg(feature = "obs")]
            trace,
            #[cfg(feature = "obs")]
            timeseries: sidecar_obs::TimeSeries::default(),
            #[cfg(feature = "obs")]
            scoreboard,
        }
    }

    /// A baseline run with a plain forwarder and the given client ACK
    /// frequency.
    pub fn run_baseline(&self, seed: u64, ack_every: u32) -> ScenarioReport {
        self.run_baseline_inner(seed, ack_every, None)
    }

    /// Baseline twin under the identical fault script.
    pub fn run_baseline_faulted(
        &self,
        seed: u64,
        ack_every: u32,
        faults: &FaultScript,
    ) -> ScenarioReport {
        self.run_baseline_inner(seed, ack_every, Some(faults))
    }

    fn run_baseline_inner(
        &self,
        seed: u64,
        ack_every: u32,
        faults: Option<&FaultScript>,
    ) -> ScenarioReport {
        let mut w = World::new(seed);
        let reduced = ack_every >= self.reduced_ack_every;
        let max_ack_delay = if reduced {
            self.reduced_max_ack_delay
        } else {
            ReceiverConfig::default().max_ack_delay
        };
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(self.total_packets),
            cc: self.cc,
            id_seed: seed ^ 0xAC4ED,
            peer_max_ack_delay: max_ack_delay + SimDuration::from_millis(50),
            ..SenderConfig::default()
        }));
        let proxy = w.add_node(Forwarder::boxed());
        let client = w.add_node(ReceiverNode::boxed(ReceiverConfig {
            ack_every,
            max_ack_delay,
            immediate_on_gap: !reduced,
            ..ReceiverConfig::default()
        }));
        w.connect(server, proxy, self.upstream.clone(), self.upstream.clone());
        w.connect(
            proxy,
            client,
            self.downstream.clone(),
            self.downstream.clone(),
        );
        if let Some(script) = faults {
            let plan = script.lower(proxy, (proxy, client));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous deadline instead.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));

        let srv = w.node_as::<SenderNode>(server);
        let stats = srv.stats().clone();
        let mtu = srv.core().config().mtu;
        let cl = w.node_as::<ReceiverNode>(client);
        ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            client_acks: cl.stats().acks_sent,
            ..ScenarioReport::default()
        }
    }

    /// Baseline with normal (frequent) client ACKs.
    pub fn run_baseline_normal(&self, seed: u64) -> ScenarioReport {
        self.run_baseline(seed, self.normal_ack_every)
    }

    /// Baseline with reduced client ACKs but *no* sidecar (naive).
    pub fn run_baseline_reduced(&self, seed: u64) -> ScenarioReport {
        self.run_baseline(seed, self.reduced_ack_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_run_completes() {
        let scenario = AckReductionScenario {
            total_packets: 800,
            ..AckReductionScenario::default()
        };
        let report = scenario.run_sidecar(1);
        assert!(report.completion.is_some(), "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn client_acks_drastically_reduced() {
        let scenario = AckReductionScenario {
            total_packets: 1_000,
            ..AckReductionScenario::default()
        };
        let side = scenario.run_sidecar(2);
        let normal = scenario.run_baseline_normal(2);
        // The paper's point: ~n/2 ACKs collapse to ~n/32.
        assert!(
            side.client_acks * 8 < normal.client_acks,
            "sidecar acks {} vs normal {}",
            side.client_acks,
            normal.client_acks
        );
    }

    #[test]
    fn sidecar_recovers_goodput_lost_to_naive_reduction() {
        let scenario = AckReductionScenario {
            total_packets: 1_500,
            ..AckReductionScenario::default()
        };
        let side = scenario.run_sidecar(3);
        let naive = scenario.run_baseline_reduced(3);
        let normal = scenario.run_baseline_normal(3);
        // Naive ACK thinning slows the window; the sidecar must claw back
        // most of the difference.
        assert!(
            side.completion_secs() <= naive.completion_secs(),
            "sidecar {:.3}s vs naive {:.3}s",
            side.completion_secs(),
            naive.completion_secs()
        );
        // And stay within 2x of the full-ACK baseline.
        assert!(
            side.completion_secs() < normal.completion_secs() * 2.0,
            "sidecar {:.3}s vs normal {:.3}s",
            side.completion_secs(),
            normal.completion_secs()
        );
    }

    #[test]
    fn window_releases_happen() {
        let scenario = AckReductionScenario {
            total_packets: 500,
            ..AckReductionScenario::default()
        };
        let mut w = World::new(5);
        let server = w.add_node(Box::new(AckRedServer::new(
            SenderConfig {
                total_packets: Some(500),
                ..SenderConfig::default()
            },
            scenario.sidecar,
            SimDuration::from_millis(15),
            SupervisionConfig::default(),
        )));
        let proxy = w.add_node(Box::new(AckRedProxy::new(scenario.sidecar)));
        let client = w.add_node(ReceiverNode::boxed(ReceiverConfig {
            ack_every: 32,
            ..ReceiverConfig::default()
        }));
        w.connect(
            server,
            proxy,
            scenario.upstream.clone(),
            scenario.upstream.clone(),
        );
        w.connect(
            proxy,
            client,
            scenario.downstream.clone(),
            scenario.downstream.clone(),
        );
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous deadline instead.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));
        let srv = w.node_as::<AckRedServer>(server);
        assert!(srv.window_releases > 0);
        assert!(srv.core().is_complete());
    }

    #[test]
    fn deterministic_reports() {
        let scenario = AckReductionScenario {
            total_packets: 400,
            ..AckReductionScenario::default()
        };
        assert_eq!(scenario.run_sidecar(8), scenario.run_sidecar(8));
    }

    #[cfg(feature = "auth")]
    #[test]
    fn authenticated_run_completes_without_rejects() {
        let scenario = AckReductionScenario {
            total_packets: 400,
            auth: Some(crate::config::AuthConfig::from_secret(0xFEED_FACE, 7)),
            ..AckReductionScenario::default()
        };
        let report = scenario.run_sidecar(8);
        assert!(report.completion.is_some(), "{report:?}");
        #[cfg(feature = "obs")]
        {
            assert!(report.metrics.counter("auth.accepted") > 0, "{report:?}");
            assert_eq!(report.metrics.counter_sum("auth.rejected."), 0);
        }
        assert_eq!(scenario.run_sidecar(8), scenario.run_sidecar(8));
    }
}
