//! §2.3 In-network retransmission (paper Fig. 4).
//!
//! Two proxies bracket a lossy subpath. The receiver-side proxy quACKs the
//! identifiers it has seen; the sender-side proxy buffers every data packet
//! it forwards and retransmits the ones the quACKs reveal as lost —
//! recovering losses within the (short) subpath RTT instead of the (long)
//! end-to-end RTT. Neither end host participates at all.
//!
//! The sender-side proxy also measures the subpath loss ratio and tunes the
//! quACK frequency through sidecar `Configure` messages: "the interval at
//! which the receiver-side proxy produces and transmits the quACK is
//! flexible, as it should ideally depend on the loss ratio" (§2.3, §4.3:
//! target a constant `t` missing packets per quACK).

use crate::config::{QuackFrequency, SidecarConfig, SupervisionConfig};
use crate::endpoint::{QuackConsumer, QuackProducer};
use crate::messages::SidecarMessage;
use crate::negotiate::{accept_hello, offer, Capabilities};
use crate::protocols::{obs, restart_epoch, send_sidecar, FaultScript, ScenarioReport};
use crate::supervise::Supervisor;
use sidecar_galois::Fp32;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{Packet, PacketKind, Payload};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Timer tokens.
const TOKEN_EMIT: u64 = 1;
const TOKEN_GRACE: u64 = 2;
const TOKEN_SUPERVISE: u64 = 3;

/// The sender-side proxy (right-hand side of paper Fig. 4): forwards,
/// buffers, consumes quACKs, retransmits, and tunes the quACK frequency.
pub struct SenderSideProxy {
    consumer: QuackConsumer<Fp32>,
    /// Buffered copies of forwarded data packets, by tag.
    buffer: HashMap<u64, Packet>,
    /// Tags in insertion order for eviction.
    order: VecDeque<u64>,
    /// Maximum buffered packets.
    buffer_cap: usize,
    next_tag: u64,
    /// Loss-ratio measurement for frequency tuning.
    window_sent: u64,
    window_lost: u64,
    /// When the measurement window started.
    window_start: SimTime,
    /// Last interval requested from the producer.
    requested_interval: Option<SimDuration>,
    /// Upper bound on the requested interval: recovery latency is roughly
    /// one interval plus a subpath RTT, so the cap keeps in-network
    /// recovery meaningfully faster than end-to-end recovery even on very
    /// stable links (where the pure §4.3 bandwidth target would stretch
    /// the interval arbitrarily).
    max_interval: SimDuration,
    cfg: SidecarConfig,
    /// In-transit window, kept so a restart can rebuild the consumer.
    in_transit_window: SimDuration,
    /// Session supervision: hello handshake, liveness, degraded fallback.
    pub supervisor: Supervisor,
    supervision: SupervisionConfig,
    /// In-network retransmissions performed.
    pub retransmitted: u64,
    /// Sidecar control messages sent.
    pub control_sent: u64,
}

impl SenderSideProxy {
    /// Creates the proxy. `in_transit_window` ≈ one subpath RTT.
    pub fn new(
        cfg: SidecarConfig,
        in_transit_window: SimDuration,
        buffer_cap: usize,
        supervision: SupervisionConfig,
    ) -> Self {
        SenderSideProxy {
            consumer: QuackConsumer::new(cfg, in_transit_window),
            buffer: HashMap::new(),
            order: VecDeque::new(),
            buffer_cap,
            next_tag: 0,
            window_sent: 0,
            window_lost: 0,
            window_start: SimTime::ZERO,
            requested_interval: None,
            max_interval: in_transit_window.saturating_mul(2),
            cfg,
            in_transit_window,
            supervisor: Supervisor::new(supervision),
            supervision,
            retransmitted: 0,
            control_sent: 0,
        }
    }

    /// Consumer statistics (for tests/reports).
    pub fn consumer_stats(&self) -> &crate::endpoint::ConsumerStats {
        &self.consumer.stats
    }

    fn buffer_insert(&mut self, tag: u64, pkt: Packet) {
        if self.buffer.len() >= self.buffer_cap {
            // Evict oldest still-buffered entry.
            while let Some(old) = self.order.pop_front() {
                if self.buffer.remove(&old).is_some() {
                    break;
                }
            }
        }
        self.buffer.insert(tag, pkt);
        self.order.push_back(tag);
    }

    /// §4.3: pick the emission interval so a quACK window carries roughly
    /// `t/2` missing packets at the observed loss ratio and packet rate:
    /// "the sender who configures this frequency could target a constant
    /// t = 20 missing packets per quACK. If the link is relatively stable,
    /// the sender-side proxy could decrease the frequency".
    fn retune_frequency(&mut self, ctx: &mut Context) {
        if self.window_sent < 200 {
            return; // not enough signal yet
        }
        let elapsed = (ctx.now() - self.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            return;
        }
        let loss_ratio = (self.window_lost as f64 / self.window_sent as f64).max(1e-4);
        let packet_rate = self.window_sent as f64 / elapsed; // packets/s
        self.window_sent = 0;
        self.window_lost = 0;
        self.window_start = ctx.now();
        // Interval such that expected missing per quACK ≈ t/2:
        // loss_ratio · packet_rate · interval = t/2.
        let target_missing = self.cfg.threshold as f64 / 2.0;
        let seconds = target_missing / (loss_ratio * packet_rate);
        let cap = self.max_interval.as_secs_f64().max(0.004);
        let new_interval = SimDuration::from_secs_f64(seconds.clamp(0.002, cap));
        let changed = match self.requested_interval {
            Some(prev) => {
                let ratio = new_interval.as_nanos() as f64 / prev.as_nanos().max(1) as f64;
                !(0.5..=2.0).contains(&ratio)
            }
            None => true,
        };
        if changed {
            self.requested_interval = Some(new_interval);
            let msg = SidecarMessage::Configure {
                interval: new_interval,
            };
            let _ = send_sidecar(msg, IfaceId(1), ctx);
            self.control_sent += 1;
        }
    }

    fn handle_quack(&mut self, epoch: u32, bytes: &[u8], ctx: &mut Context) {
        let result = self.consumer.process_quack(ctx.now(), epoch, bytes);
        obs::quack_outcome(ctx, &result);
        match result {
            Ok(report) => {
                self.supervisor.on_feedback_ok(ctx.now());
                // Free buffer space for confirmed-received packets.
                for &(_, tag) in &report.received {
                    self.buffer.remove(&tag);
                }
                self.arm_grace(ctx);
            }
            Err(
                err @ (crate::endpoint::ProcessError::ThresholdExceeded { .. }
                | crate::endpoint::ProcessError::CountInconsistent),
            ) => {
                // Reset both sides to a fresh epoch (§3.3).
                let new_epoch = self.consumer.epoch() + 1;
                let leftovers = self.consumer.reset(new_epoch);
                for entry in leftovers {
                    self.buffer.remove(&entry.tag);
                }
                let _ = send_sidecar(SidecarMessage::Reset { epoch: new_epoch }, IfaceId(1), ctx);
                self.control_sent += 1;
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
            Err(err) => {
                // Stale quACKs refresh liveness inside the supervisor;
                // wrong-epoch/malformed ones burn the error budget.
                if self.supervisor.on_quack_error(&err, ctx.now()) {
                    self.enter_degraded();
                }
                self.supervise(ctx);
            }
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }

    /// Baseline fallback: drop every piece of sidecar state. The node keeps
    /// forwarding, so the flow degrades to exactly the no-sidecar path and
    /// end-to-end recovery owns all retransmissions.
    fn enter_degraded(&mut self) {
        self.buffer.clear();
        self.order.clear();
        let epoch = self.consumer.epoch().wrapping_add(1);
        let _ = self.consumer.reset(epoch);
        self.window_sent = 0;
        self.window_lost = 0;
        self.requested_interval = None;
    }

    /// Drives the supervisor: hello (re)sends, liveness checks, timer
    /// re-arming.
    fn supervise(&mut self, ctx: &mut Context) {
        let expecting = !self.buffer.is_empty() || self.consumer.log_len() > 0;
        let outcome = self.supervisor.poll(ctx.now(), expecting);
        if outcome.degraded_now {
            self.enter_degraded();
        }
        if outcome.send_hello {
            let _ = send_sidecar(offer(&self.cfg), IfaceId(1), ctx);
            self.control_sent += 1;
        }
        if let Some(deadline) = outcome.next_deadline {
            ctx.set_timer_at(deadline, TOKEN_SUPERVISE);
        }
        obs::sup_flush(ctx, &mut self.supervisor);
    }

    fn arm_grace(&mut self, ctx: &mut Context) {
        if let Some(deadline) = self.consumer.next_grace_deadline() {
            ctx.set_timer_at(deadline, TOKEN_GRACE);
        }
    }

    fn fire_grace(&mut self, ctx: &mut Context) {
        let losses = self.consumer.poll_expired(ctx.now());
        for loss in losses {
            self.window_lost += 1;
            if let Some(pkt) = self.buffer.remove(&loss.tag) {
                // Retransmit the identical ciphertext: same identifier, so
                // the far sidecar's multiset stays consistent. Re-record it
                // under a fresh tag.
                let tag = self.next_tag;
                self.next_tag += 1;
                self.consumer.record_sent(pkt.id, tag, ctx.now());
                self.buffer_insert(tag, pkt.clone());
                ctx.send(IfaceId(1), pkt);
                self.retransmitted += 1;
                self.window_sent += 1;
            }
        }
        self.retune_frequency(ctx);
        self.arm_grace(ctx);
    }
}

impl Node for SenderSideProxy {
    fn on_start(&mut self, ctx: &mut Context) {
        // Opens the session: first Hello goes out, supervision timer arms.
        self.supervise(ctx);
    }

    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the server side: forward data downstream, buffering it
            // (unless degraded, in which case we are a plain forwarder).
            IfaceId(0) => {
                if packet.kind == PacketKind::Data && self.supervisor.enabled() {
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    self.consumer.record_sent(packet.id, tag, ctx.now());
                    self.supervisor.note_send(ctx.now());
                    self.buffer_insert(tag, packet.clone());
                    self.window_sent += 1;
                }
                ctx.send(IfaceId(1), packet);
            }
            // From the subpath side: quACKs are consumed, the rest forwarded.
            IfaceId(1) => match packet.payload {
                Payload::Sidecar { proto, ref bytes } => {
                    match SidecarMessage::decode(proto, bytes) {
                        Ok(SidecarMessage::Quack { epoch, bytes }) => {
                            // Degraded sessions ignore quACKs outright;
                            // recovery goes through the hello handshake.
                            if self.supervisor.enabled() {
                                self.handle_quack(epoch, &bytes, ctx);
                            }
                        }
                        Ok(SidecarMessage::Reset { epoch }) => {
                            // Producer handshake-ack, or its post-restart
                            // epoch announcement: adopt the epoch and mark
                            // the session live.
                            if epoch != self.consumer.epoch() {
                                let leftovers = self.consumer.reset(epoch);
                                for entry in leftovers {
                                    self.buffer.remove(&entry.tag);
                                }
                            }
                            self.supervisor.on_handshake_ack(ctx.now());
                            self.supervise(ctx);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            // Undecodable sidecar frame (corruption):
                            // counts against the session's error budget.
                            if self.supervisor.note_error(ctx.now()) {
                                self.enter_degraded();
                            }
                            self.supervise(ctx);
                        }
                    }
                }
                _ => ctx.send(IfaceId(0), packet),
            },
            other => panic!("sender-side proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOKEN_GRACE if self.supervisor.enabled() => self.fire_grace(ctx),
            TOKEN_SUPERVISE => self.supervise(ctx),
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // A crashed proxy lost its buffer, mirror log, and session: come
        // back as a plain forwarder and re-handshake from scratch.
        self.buffer.clear();
        self.order.clear();
        self.consumer = QuackConsumer::new(self.cfg, self.in_transit_window);
        self.window_sent = 0;
        self.window_lost = 0;
        self.window_start = ctx.now();
        self.requested_interval = None;
        self.supervisor = Supervisor::new(self.supervision);
        self.supervise(ctx);
    }

    fn name(&self) -> &str {
        "retx-sender-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The receiver-side proxy (left-hand side of paper Fig. 4): forwards,
/// observes identifiers, emits quACKs upstream on an adaptive interval.
pub struct ReceiverSideProxy {
    producer: QuackProducer<Fp32>,
    /// QuACK datagrams emitted.
    pub quacks_sent: u64,
    /// QuACK bytes emitted (body + headers).
    pub quack_bytes: u64,
}

impl ReceiverSideProxy {
    /// Creates the proxy.
    pub fn new(cfg: SidecarConfig) -> Self {
        ReceiverSideProxy {
            producer: QuackProducer::new(cfg),
            quacks_sent: 0,
            quack_bytes: 0,
        }
    }

    fn emit(&mut self, ctx: &mut Context) {
        let fill = self.producer.burst_fill();
        let msg = self.producer.emit();
        self.quacks_sent += 1;
        let bytes = send_sidecar(msg, IfaceId(0), ctx);
        self.quack_bytes += bytes as u64;
        obs::quack_emitted(
            ctx,
            self.producer.epoch(),
            self.producer.count(),
            fill,
            bytes,
        );
    }

    fn arm(&self, ctx: &mut Context) {
        if let Some(interval) = self.producer.interval() {
            ctx.set_timer_after(interval, TOKEN_EMIT);
        }
    }
}

impl Node for ReceiverSideProxy {
    fn on_start(&mut self, ctx: &mut Context) {
        self.arm(ctx);
    }

    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the subpath: observe data identifiers, forward downstream.
            IfaceId(0) => match packet.payload {
                Payload::Sidecar { proto, ref bytes } => {
                    match SidecarMessage::decode(proto, bytes) {
                        Ok(SidecarMessage::Configure { interval }) => {
                            self.producer.set_interval(interval);
                        }
                        Ok(SidecarMessage::Reset { epoch }) => {
                            self.producer.reset(epoch);
                        }
                        Ok(hello @ SidecarMessage::Hello { .. }) => {
                            let accepted = accept_hello(&Capabilities::default(), &hello).is_ok();
                            obs::handshake(ctx, accepted);
                            if accepted {
                                // Consumer handshake; the Reset reply doubles
                                // as the handshake ack. A recovery Hello (the
                                // sketch already counts packets the consumer
                                // no longer tracks) starts a fresh epoch;
                                // a startup Hello keeps the pristine one.
                                let epoch = if self.producer.count() == 0 {
                                    self.producer.epoch()
                                } else {
                                    let e = self.producer.epoch().wrapping_add(1);
                                    self.producer.reset(e);
                                    e
                                };
                                let _ =
                                    send_sidecar(SidecarMessage::Reset { epoch }, IfaceId(0), ctx);
                            }
                        }
                        _ => {}
                    }
                }
                _ => {
                    if packet.kind == PacketKind::Data {
                        self.producer.observe(packet.id);
                        obs::observed(ctx);
                    }
                    ctx.send(IfaceId(1), packet);
                }
            },
            // From the client side: forward upstream untouched.
            IfaceId(1) => ctx.send(IfaceId(0), packet),
            other => panic!("receiver-side proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        if token == TOKEN_EMIT {
            self.emit(ctx);
            self.arm(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // The multiset is gone; continuing the old epoch would decode
        // garbage. Start a fresh time-derived epoch, announce it, and
        // restart the emission timer chain (timers died with the node).
        let epoch = restart_epoch(ctx.now());
        self.producer.reset(epoch);
        let _ = send_sidecar(SidecarMessage::Reset { epoch }, IfaceId(0), ctx);
        self.arm(ctx);
    }

    fn name(&self) -> &str {
        "retx-receiver-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Scenario parameters for the in-network retransmission experiment.
///
/// For in-network recovery to pay off, it must complete before the server's
/// own loss detection reacts — which means the client's end-to-end ACK
/// cadence must be slower than one subpath round trip plus the quACK
/// interval (true of satellite-style paths, and exactly the regime the
/// paper and the LOOPS draft target). The default client therefore ACKs
/// sparsely; both the sidecar run and the baseline use the same client.
#[derive(Clone, Debug)]
pub struct RetxScenario {
    /// Data units the server must deliver.
    pub total_packets: u64,
    /// Server↔sender-side-proxy segment.
    pub edge_a: LinkConfig,
    /// The lossy subpath between the proxies.
    pub subpath: LinkConfig,
    /// Receiver-side-proxy↔client segment.
    pub edge_b: LinkConfig,
    /// Sidecar parameters.
    pub sidecar: SidecarConfig,
    /// Server congestion control.
    pub cc: CcAlgorithm,
    /// Sender-side proxy buffer capacity (packets).
    pub buffer_cap: usize,
    /// Client transport configuration (shared by both variants).
    pub client: ReceiverConfig,
    /// Session supervision knobs for the sender-side proxy.
    pub supervision: SupervisionConfig,
}

impl Default for RetxScenario {
    fn default() -> Self {
        RetxScenario {
            total_packets: 2_000,
            edge_a: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(25),
                ..LinkConfig::default()
            },
            subpath: LinkConfig {
                rate_bps: 20_000_000,
                delay: SimDuration::from_millis(5),
                loss: sidecar_netsim::link::LossModel::Bernoulli { p: 0.02 },
                ..LinkConfig::default()
            },
            edge_b: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(2),
                ..LinkConfig::default()
            },
            sidecar: SidecarConfig {
                frequency: QuackFrequency::Adaptive(SimDuration::from_millis(5)),
                reorder_grace: SimDuration::from_millis(3),
                ..SidecarConfig::paper_default()
            },
            cc: CcAlgorithm::NewReno,
            buffer_cap: 4_096,
            // Sparse end-to-end ACKs: one per 32 packets (≈19 ms at the
            // 20 Mbit/s bottleneck), no immediate gap-ACKs — so in-network
            // recovery (quACK interval + grace + subpath one-way ≈ 13 ms)
            // fills holes before the server ever hears about them.
            client: ReceiverConfig {
                ack_every: 32,
                max_ack_delay: SimDuration::from_millis(50),
                immediate_on_gap: false,
                ..ReceiverConfig::default()
            },
            supervision: SupervisionConfig::default(),
        }
    }
}

impl RetxScenario {
    /// Runs the scenario with sidecar proxies.
    pub fn run_sidecar(&self, seed: u64) -> ScenarioReport {
        self.run(seed, true, None)
    }

    /// Runs the baseline: identical topology with plain forwarders.
    pub fn run_baseline(&self, seed: u64) -> ScenarioReport {
        self.run(seed, false, None)
    }

    /// Sidecar run with scripted faults (crash hits the sender-side proxy;
    /// blackout hits the subpath between the proxies).
    pub fn run_sidecar_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run(seed, true, Some(faults))
    }

    /// Baseline twin under the identical fault script.
    pub fn run_baseline_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run(seed, false, Some(faults))
    }

    fn run(&self, seed: u64, sidecar: bool, faults: Option<&FaultScript>) -> ScenarioReport {
        let mut w = World::new(seed);
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(self.total_packets),
            cc: self.cc,
            id_seed: seed ^ 0xA5A5,
            // PTO absorbs the sparse client's ACK cadence.
            peer_max_ack_delay: self.client.max_ack_delay + SimDuration::from_millis(50),
            ..SenderConfig::default()
        }));
        // Subpath RTT for the in-transit window: 2 × one-way delay plus
        // slack.
        let subpath_rtt = self.subpath.delay * 2 + SimDuration::from_millis(2);
        let (proxy_a, proxy_b) = if sidecar {
            (
                w.add_node(Box::new(SenderSideProxy::new(
                    self.sidecar,
                    subpath_rtt,
                    self.buffer_cap,
                    self.supervision,
                ))),
                w.add_node(Box::new(ReceiverSideProxy::new(self.sidecar))),
            )
        } else {
            (
                w.add_node(Forwarder::boxed()),
                w.add_node(Forwarder::boxed()),
            )
        };
        let client = w.add_node(ReceiverNode::boxed(self.client.clone()));
        w.connect(server, proxy_a, self.edge_a.clone(), self.edge_a.clone());
        w.connect(proxy_a, proxy_b, self.subpath.clone(), self.subpath.clone());
        w.connect(proxy_b, client, self.edge_b.clone(), self.edge_b.clone());
        if let Some(script) = faults {
            let plan = script.lower(proxy_a, (proxy_a, proxy_b));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous wall-clock deadline instead and read completion from the
        // sender's stats.
        w.run_until(SimTime::ZERO + SimDuration::from_secs(120));

        let sender = w.node_as::<SenderNode>(server);
        let stats = sender.stats().clone();
        let mtu = sender.core().config().mtu;
        let mut report = ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            ..ScenarioReport::default()
        };
        let receiver = w.node_as::<ReceiverNode>(client);
        report.client_acks = receiver.stats().acks_sent;
        if sidecar {
            let a = w.node_as::<SenderSideProxy>(proxy_a);
            report.proxy_retransmissions = a.retransmitted;
            report.degradations = a.supervisor.stats.degradations;
            report.recoveries = a.supervisor.stats.recoveries;
            let b = w.node_as::<ReceiverSideProxy>(proxy_b);
            report.sidecar_messages = b.quacks_sent + a.control_sent;
            report.sidecar_bytes = b.quack_bytes;
            // Attach the world registry snapshot (sidecar runs only, so
            // baselines keep the empty default) and mirror it into the
            // process-global registry for bench `--metrics-out` dumps.
            #[cfg(feature = "obs")]
            {
                let snap = w.obs().metrics.snapshot();
                sidecar_obs::global().absorb(&snap);
                report.metrics = snap;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_netsim::link::LossModel;

    #[test]
    fn flow_completes_with_in_network_retx() {
        let scenario = RetxScenario {
            total_packets: 500,
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(1);
        assert!(report.completion.is_some(), "{report:?}");
        assert!(report.proxy_retransmissions > 0, "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn in_network_retx_reduces_e2e_retransmissions() {
        let scenario = RetxScenario {
            total_packets: 1_000,
            ..RetxScenario::default()
        };
        let side = scenario.run_sidecar(7);
        let base = scenario.run_baseline(7);
        assert!(base.completion.is_some() && side.completion.is_some());
        assert!(
            side.server_retransmissions < base.server_retransmissions,
            "sidecar {} vs baseline {}",
            side.server_retransmissions,
            base.server_retransmissions
        );
    }

    #[test]
    fn in_network_retx_speeds_up_completion_on_lossy_subpath() {
        let scenario = RetxScenario {
            total_packets: 1_500,
            subpath: LinkConfig {
                loss: LossModel::Bernoulli { p: 0.03 },
                ..RetxScenario::default().subpath
            },
            ..RetxScenario::default()
        };
        let side = scenario.run_sidecar(21);
        let base = scenario.run_baseline(21);
        assert!(
            side.completion_secs() < base.completion_secs(),
            "sidecar {:.3}s vs baseline {:.3}s",
            side.completion_secs(),
            base.completion_secs()
        );
    }

    #[test]
    fn lossless_subpath_means_no_proxy_retx() {
        let scenario = RetxScenario {
            total_packets: 300,
            subpath: LinkConfig {
                loss: LossModel::None,
                // Deep queue so slow start cannot cause congestive drops —
                // which the proxy would (correctly) retransmit.
                queue_packets: 8_192,
                ..RetxScenario::default().subpath
            },
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(3);
        assert!(report.completion.is_some());
        assert_eq!(report.proxy_retransmissions, 0, "{report:?}");
        assert_eq!(report.server_retransmissions, 0);
    }

    #[test]
    fn deterministic_reports() {
        let scenario = RetxScenario {
            total_packets: 400,
            ..RetxScenario::default()
        };
        assert_eq!(scenario.run_sidecar(5), scenario.run_sidecar(5));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use sidecar_netsim::transport::{ReceiverNode, SenderNode};

    #[test]
    #[ignore]
    fn debug_stall() {
        let scenario = RetxScenario {
            total_packets: 500,
            ..RetxScenario::default()
        };
        let mut w = World::new(1);
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(500),
            cc: scenario.cc,
            id_seed: 1 ^ 0xA5A5,
            ..SenderConfig::default()
        }));
        let subpath_rtt = scenario.subpath.delay * 2 + SimDuration::from_millis(2);
        let proxy_a = w.add_node(Box::new(SenderSideProxy::new(
            scenario.sidecar,
            subpath_rtt,
            scenario.buffer_cap,
            scenario.supervision,
        )));
        let proxy_b = w.add_node(Box::new(ReceiverSideProxy::new(scenario.sidecar)));
        let client = w.add_node(ReceiverNode::boxed(scenario.client.clone()));
        w.connect(
            server,
            proxy_a,
            scenario.edge_a.clone(),
            scenario.edge_a.clone(),
        );
        let (a_to_b, _) = w.connect(
            proxy_a,
            proxy_b,
            scenario.subpath.clone(),
            scenario.subpath.clone(),
        );
        w.connect(
            proxy_b,
            client,
            scenario.edge_b.clone(),
            scenario.edge_b.clone(),
        );
        for step_ms in [100u64, 200, 500, 1000, 2000, 5000, 10000] {
            w.run_until(SimTime::ZERO + SimDuration::from_millis(step_ms));
            let s = w.node_as::<SenderNode>(server);
            let st = s.stats().clone();
            let inflight = s.core().in_flight_count();
            let cwnd = s.core().effective_cwnd();
            let nt = s.core().next_timeout();
            let a = w.node_as::<SenderSideProxy>(proxy_a);
            let cstats = a.consumer_stats().clone();
            let cl = w.node_as::<ReceiverNode>(client);
            let sub = w.link_stats(proxy_a, a_to_b).clone();
            println!("t={step_ms}ms sent={} retx={} deliv={} lost={} ce={} rtos={} inflight={inflight} cwnd={cwnd} next_to={nt:?} | proxyA retx={} resets={} conf_lost={} conf_recv={} stale={} | client units={} acks={} | sub offered={} dloss={} dq={}",
                st.sent_packets, st.retransmissions, st.delivered_packets, st.lost_packets, st.congestion_events, st.rtos,
                a.retransmitted, cstats.resets_needed, cstats.confirmed_lost, cstats.confirmed_received, cstats.quacks_stale,
                cl.stats().unique_units, cl.stats().acks_sent, sub.offered, sub.dropped_loss, sub.dropped_queue);
        }
    }
}
