//! §2.3 In-network retransmission (paper Fig. 4).
//!
//! Two proxies bracket a lossy subpath. The receiver-side proxy quACKs the
//! identifiers it has seen; the sender-side proxy buffers every data packet
//! it forwards and retransmits the ones the quACKs reveal as lost —
//! recovering losses within the (short) subpath RTT instead of the (long)
//! end-to-end RTT. Neither end host participates at all.
//!
//! The sender-side proxy also measures the subpath loss ratio and tunes the
//! quACK frequency through sidecar `Configure` messages: "the interval at
//! which the receiver-side proxy produces and transmits the quACK is
//! flexible, as it should ideally depend on the loss ratio" (§2.3, §4.3:
//! target a constant `t` missing packets per quACK).

use crate::auth::ChannelAuth;
use crate::config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
use crate::endpoint::{QuackConsumer, QuackProducer};
use crate::flows::{FlowTable, FlowTableConfig, FoldBuffer, SlotId};
use crate::messages::SidecarMessage;
use crate::negotiate::{accept_hello, offer, Capabilities};
use crate::protocols::{
    obs, open_ctrl, restart_epoch, send_sidecar, FaultScript, GuardedTimer, ScenarioReport,
};
use crate::supervise::Supervisor;
use sidecar_galois::Fp32;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{FlowId, Packet, PacketKind, Payload};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;
use sidecar_netsim::Forwarder;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Timer tokens (low 32 bits; per-flow timers carry the flow id in the
/// high 32 bits).
const TOKEN_EMIT: u64 = 1;
const TOKEN_GRACE: u64 = 2;
const TOKEN_SUPERVISE: u64 = 3;

/// Per-flow timer token: base token in the low word, flow id in the high.
fn flow_token(base: u64, flow: FlowId) -> u64 {
    base | ((flow.0 as u64) << 32)
}

/// Splits a timer token into `(base, flow)`.
fn split_token(token: u64) -> (u64, FlowId) {
    (token & 0xFFFF_FFFF, FlowId((token >> 32) as u32))
}

/// One flow's consumer-side session inside the sender-side proxy: mirror
/// log, retransmission buffer, loss-ratio window, and supervision.
struct ConsumerSession {
    consumer: QuackConsumer<Fp32>,
    /// Buffered copies of forwarded data packets, by tag.
    buffer: HashMap<u64, Packet>,
    /// Tags in insertion order for eviction.
    order: VecDeque<u64>,
    next_tag: u64,
    /// Loss-ratio measurement for frequency tuning.
    window_sent: u64,
    window_lost: u64,
    /// When the measurement window started.
    window_start: SimTime,
    /// Last interval requested from the producer.
    requested_interval: Option<SimDuration>,
    /// Session supervision: hello handshake, liveness, degraded fallback.
    supervisor: Supervisor,
}

impl ConsumerSession {
    fn new(
        cfg: SidecarConfig,
        in_transit_window: SimDuration,
        supervision: SupervisionConfig,
        now: SimTime,
    ) -> Self {
        ConsumerSession {
            consumer: QuackConsumer::new(cfg, in_transit_window),
            buffer: HashMap::new(),
            order: VecDeque::new(),
            next_tag: 0,
            window_sent: 0,
            window_lost: 0,
            window_start: now,
            requested_interval: None,
            supervisor: Supervisor::new(supervision),
        }
    }

    fn buffer_insert(&mut self, buffer_cap: usize, tag: u64, pkt: Packet) {
        if self.buffer.len() >= buffer_cap {
            // Evict oldest still-buffered entry.
            while let Some(old) = self.order.pop_front() {
                if self.buffer.remove(&old).is_some() {
                    break;
                }
            }
        }
        self.buffer.insert(tag, pkt);
        self.order.push_back(tag);
    }

    /// Baseline fallback: drop every piece of sidecar state. The node keeps
    /// forwarding, so the flow degrades to exactly the no-sidecar path and
    /// end-to-end recovery owns all retransmissions.
    fn enter_degraded(&mut self) {
        self.buffer.clear();
        self.order.clear();
        let epoch = self.consumer.epoch().wrapping_add(1);
        let _ = self.consumer.reset(epoch);
        self.window_sent = 0;
        self.window_lost = 0;
        self.requested_interval = None;
    }
}

/// The sender-side proxy (right-hand side of paper Fig. 4): forwards,
/// buffers, consumes quACKs, retransmits, and tunes the quACK frequency —
/// per flow, muxed through a bounded [`FlowTable`].
pub struct SenderSideProxy {
    table: FlowTable<ConsumerSession>,
    /// Maximum buffered packets per flow.
    buffer_cap: usize,
    /// Upper bound on the requested interval: recovery latency is roughly
    /// one interval plus a subpath RTT, so the cap keeps in-network
    /// recovery meaningfully faster than end-to-end recovery even on very
    /// stable links (where the pure §4.3 bandwidth target would stretch
    /// the interval arbitrarily).
    max_interval: SimDuration,
    cfg: SidecarConfig,
    /// In-transit window, kept so restarts/new flows can build consumers.
    in_transit_window: SimDuration,
    supervision: SupervisionConfig,
    /// Supervisor outcomes of sessions the table already reclaimed
    /// (`(degradations, recoveries)`), so report totals survive eviction.
    evicted_sup: (u64, u64),
    /// The shared `TOKEN_GRACE` chain. The grace timer has many arm sites
    /// (every quACK, every fire); the guard dedups arms and cancels
    /// superseded chains so exactly one event per proxy sits in the queue.
    grace: GuardedTimer,
    /// The shared `TOKEN_SUPERVISE` chain (same guard: one timer chain,
    /// not one per flow per poll).
    sup: GuardedTimer,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// In-network retransmissions performed (all flows).
    pub retransmitted: u64,
    /// Sidecar control messages sent (all flows).
    pub control_sent: u64,
}

impl SenderSideProxy {
    /// Creates the proxy. `in_transit_window` ≈ one subpath RTT.
    pub fn new(
        cfg: SidecarConfig,
        in_transit_window: SimDuration,
        buffer_cap: usize,
        supervision: SupervisionConfig,
    ) -> Self {
        Self::with_flow_table(
            cfg,
            in_transit_window,
            buffer_cap,
            supervision,
            FlowTableConfig::default(),
        )
    }

    /// Creates the proxy with explicit flow-table sizing.
    pub fn with_flow_table(
        cfg: SidecarConfig,
        in_transit_window: SimDuration,
        buffer_cap: usize,
        supervision: SupervisionConfig,
        table: FlowTableConfig,
    ) -> Self {
        SenderSideProxy {
            table: FlowTable::new(table),
            buffer_cap,
            max_interval: in_transit_window.saturating_mul(2),
            cfg,
            in_transit_window,
            supervision,
            evicted_sup: (0, 0),
            grace: GuardedTimer::default(),
            sup: GuardedTimer::default(),
            auth: None,
            retransmitted: 0,
            control_sent: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Consumer statistics for one flow's live session.
    pub fn consumer_stats(&self, flow: FlowId) -> Option<&crate::endpoint::ConsumerStats> {
        self.table
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, s)| &s.consumer.stats)
    }

    /// Live per-flow sessions.
    pub fn live_flows(&self) -> usize {
        self.table.len()
    }

    /// Supervisor degradations summed over live and reclaimed sessions.
    pub fn degradations(&self) -> u64 {
        self.evicted_sup.0
            + self
                .table
                .iter()
                .map(|(_, s)| s.supervisor.stats.degradations)
                .sum::<u64>()
    }

    /// Supervisor recoveries summed over live and reclaimed sessions.
    pub fn recoveries(&self) -> u64 {
        self.evicted_sup.1
            + self
                .table
                .iter()
                .map(|(_, s)| s.supervisor.stats.recoveries)
                .sum::<u64>()
    }

    /// Looks up (or lazily creates) `flow`'s session. A freshly created
    /// session is immediately supervised, which sends its opening `Hello` —
    /// queued *before* the data packet that triggered creation, so the
    /// producer side handshakes on a pristine sketch exactly as the old
    /// single-flow `on_start` path did.
    fn session(&mut self, flow: FlowId, ctx: &mut Context) -> &mut ConsumerSession {
        let cfg = self.cfg;
        let window = self.in_transit_window;
        let supervision = self.supervision;
        let now = ctx.now();
        let (created, _) = self.table.get_or_insert_with(flow, now, || {
            ConsumerSession::new(cfg, window, supervision, now)
        });
        if created {
            self.supervise_flow(flow, ctx);
        }
        self.table.peek_mut(flow).expect("session just ensured")
    }

    /// §4.3: pick the emission interval so a quACK window carries roughly
    /// `t/2` missing packets at the observed loss ratio and packet rate:
    /// "the sender who configures this frequency could target a constant
    /// t = 20 missing packets per quACK. If the link is relatively stable,
    /// the sender-side proxy could decrease the frequency".
    fn retune_frequency(&mut self, flow: FlowId, ctx: &mut Context) {
        let threshold = self.cfg.threshold as f64;
        let max_interval = self.max_interval;
        let Some(session) = self.table.peek_mut(flow) else {
            return;
        };
        if session.window_sent < 200 {
            return; // not enough signal yet
        }
        let elapsed = (ctx.now() - session.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            return;
        }
        let loss_ratio = (session.window_lost as f64 / session.window_sent as f64).max(1e-4);
        let packet_rate = session.window_sent as f64 / elapsed; // packets/s
        session.window_sent = 0;
        session.window_lost = 0;
        session.window_start = ctx.now();
        // Interval such that expected missing per quACK ≈ t/2:
        // loss_ratio · packet_rate · interval = t/2.
        let target_missing = threshold / 2.0;
        let seconds = target_missing / (loss_ratio * packet_rate);
        let cap = max_interval.as_secs_f64().max(0.004);
        let new_interval = SimDuration::from_secs_f64(seconds.clamp(0.002, cap));
        let changed = match session.requested_interval {
            Some(prev) => {
                let ratio = new_interval.as_nanos() as f64 / prev.as_nanos().max(1) as f64;
                !(0.5..=2.0).contains(&ratio)
            }
            None => true,
        };
        if changed {
            session.requested_interval = Some(new_interval);
            let msg = SidecarMessage::Configure {
                interval: new_interval,
            };
            let _ = send_sidecar(msg, flow, IfaceId(1), &mut self.auth, ctx);
            self.control_sent += 1;
        }
    }

    fn handle_quack(&mut self, flow: FlowId, epoch: u32, bytes: &[u8], ctx: &mut Context) {
        let Some(session) = self.table.peek_mut(flow) else {
            // No mirror for this flow (never seen, or reclaimed): nothing
            // to decode against. The epoch machinery resynchronizes once
            // the flow's data reappears.
            #[cfg(feature = "obs")]
            ctx.obs_inc("sidecar.flow_mismatch");
            return;
        };
        let result = session.consumer.process_quack(ctx.now(), epoch, bytes);
        obs::quack_outcome(ctx, flow.0, &result);
        match result {
            Ok(report) => {
                session.supervisor.on_feedback_ok(ctx.now());
                // Flight recorder: the decode just revealed these packets
                // missing on the subpath (the buffered copy knows their
                // data identity).
                for &(_, tag) in &report.newly_missing {
                    if let Some(pkt) = session.buffer.get(&tag) {
                        obs::decode_missing(ctx, pkt.flow.0, pkt.seq);
                    }
                }
                // Free buffer space for confirmed-received packets.
                for &(_, tag) in &report.received {
                    session.buffer.remove(&tag);
                }
                self.arm_grace(ctx);
            }
            Err(
                err @ (crate::endpoint::ProcessError::ThresholdExceeded { .. }
                | crate::endpoint::ProcessError::CountInconsistent),
            ) => {
                // Reset both sides to a fresh epoch (§3.3). Wrapping: epochs
                // are compared by equality, so u32::MAX -> 0 resyncs fine.
                let new_epoch = session.consumer.epoch().wrapping_add(1);
                let leftovers = session.consumer.reset(new_epoch);
                for entry in leftovers {
                    session.buffer.remove(&entry.tag);
                }
                let degrade = session.supervisor.on_quack_error(&err, ctx.now());
                if degrade {
                    session.enter_degraded();
                }
                let _ = send_sidecar(
                    SidecarMessage::Reset { epoch: new_epoch },
                    flow,
                    IfaceId(1),
                    &mut self.auth,
                    ctx,
                );
                self.control_sent += 1;
                self.supervise_flow(flow, ctx);
            }
            Err(err) => {
                // Stale quACKs refresh liveness inside the supervisor;
                // wrong-epoch/malformed ones burn the error budget.
                if session.supervisor.on_quack_error(&err, ctx.now()) {
                    session.enter_degraded();
                }
                self.supervise_flow(flow, ctx);
            }
        }
        if let Some(session) = self.table.peek_mut(flow) {
            obs::sup_flush(ctx, &mut session.supervisor);
        }
    }

    /// Drives one flow's supervisor: hello (re)sends, liveness checks,
    /// timer re-arming (the supervision timer is shared; every fire polls
    /// all flows, so the earliest deadline wins).
    fn supervise_flow(&mut self, flow: FlowId, ctx: &mut Context) {
        let cfg = self.cfg;
        let Some(session) = self.table.peek_mut(flow) else {
            return;
        };
        let expecting = !session.buffer.is_empty() || session.consumer.log_len() > 0;
        let outcome = session.supervisor.poll(ctx.now(), expecting);
        if outcome.degraded_now {
            session.enter_degraded();
        }
        if outcome.send_hello {
            let _ = send_sidecar(offer(&cfg), flow, IfaceId(1), &mut self.auth, ctx);
            self.control_sent += 1;
        }
        if let Some(deadline) = outcome.next_deadline {
            self.arm_supervise(deadline, ctx);
        }
        if let Some(session) = self.table.peek_mut(flow) {
            obs::sup_flush(ctx, &mut session.supervisor);
        }
    }

    /// Arms the shared supervision timer, keeping at most one live chain.
    fn arm_supervise(&mut self, deadline: SimTime, ctx: &mut Context) {
        self.sup.arm(deadline, TOKEN_SUPERVISE, ctx);
    }

    fn supervise_all(&mut self, ctx: &mut Context) {
        // Reap idle flows first so finished flows stop being polled (and
        // their buffers freed); fold their supervisor outcomes into the
        // report accumulators.
        for (_, session) in self.table.sweep_idle(ctx.now()) {
            self.evicted_sup.0 += session.supervisor.stats.degradations;
            self.evicted_sup.1 += session.supervisor.stats.recoveries;
        }
        let flows: Vec<FlowId> = self.table.iter().map(|(f, _)| f).collect();
        for flow in flows {
            self.supervise_flow(flow, ctx);
        }
        obs::flow_table(ctx, &mut self.table);
    }

    /// Arms the shared grace timer at the earliest deadline across flows
    /// whose session is active (degraded flows are skipped by
    /// [`Self::fire_grace`], so their deadlines must not drive the timer).
    fn arm_grace(&mut self, ctx: &mut Context) {
        let deadline = self
            .table
            .iter()
            .filter(|(_, s)| s.supervisor.enabled())
            .filter_map(|(_, s)| s.consumer.next_grace_deadline())
            .min();
        let Some(deadline) = deadline else {
            return;
        };
        self.grace.arm(deadline, TOKEN_GRACE, ctx);
    }

    fn fire_grace(&mut self, ctx: &mut Context) {
        let buffer_cap = self.buffer_cap;
        let flows: Vec<FlowId> = self.table.iter().map(|(f, _)| f).collect();
        for flow in flows {
            let Some(session) = self.table.peek_mut(flow) else {
                continue;
            };
            if !session.supervisor.enabled() {
                continue;
            }
            let losses = session.consumer.poll_expired(ctx.now());
            let mut retransmitted = 0u64;
            for loss in losses {
                session.window_lost += 1;
                if let Some(pkt) = session.buffer.remove(&loss.tag) {
                    // Retransmit the identical ciphertext: same identifier,
                    // so the far sidecar's multiset stays consistent.
                    // Re-record it under a fresh tag.
                    let tag = session.next_tag;
                    session.next_tag += 1;
                    session.consumer.record_sent(pkt.id, tag, ctx.now());
                    session.buffer_insert(buffer_cap, tag, pkt.clone());
                    obs::proxy_retx(ctx, pkt.flow.0, pkt.seq);
                    ctx.send(IfaceId(1), pkt);
                    retransmitted += 1;
                    session.window_sent += 1;
                }
            }
            self.retransmitted += retransmitted;
            self.retune_frequency(flow, ctx);
        }
        self.arm_grace(ctx);
    }
}

impl Node for SenderSideProxy {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the server side: forward data downstream, buffering it
            // (unless that flow is degraded, in which case the proxy is a
            // plain forwarder for it).
            IfaceId(0) => {
                if packet.kind == PacketKind::Data {
                    let buffer_cap = self.buffer_cap;
                    let session = self.session(packet.flow, ctx);
                    if session.supervisor.enabled() {
                        let tag = session.next_tag;
                        session.next_tag += 1;
                        session.consumer.record_sent(packet.id, tag, ctx.now());
                        session.supervisor.note_send(ctx.now());
                        session.buffer_insert(buffer_cap, tag, packet.clone());
                        session.window_sent += 1;
                    }
                    obs::flow_table(ctx, &mut self.table);
                }
                ctx.send(IfaceId(1), packet);
            }
            // From the subpath side: quACKs are consumed, the rest forwarded.
            IfaceId(1) => match packet.payload {
                Payload::Sidecar { proto, ref bytes } => {
                    match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                        Ok((mflow, SidecarMessage::Quack { epoch, bytes })) => {
                            let flow = FlowId(mflow);
                            // Degraded sessions ignore quACKs outright;
                            // recovery goes through the hello handshake.
                            let enabled = self
                                .table
                                .peek_mut(flow)
                                .is_some_and(|s| s.supervisor.enabled());
                            if enabled {
                                self.handle_quack(flow, epoch, &bytes, ctx);
                            }
                        }
                        Ok((mflow, SidecarMessage::Reset { epoch })) => {
                            // Producer handshake-ack, or its post-restart
                            // epoch announcement: adopt the epoch and mark
                            // the flow's session live (creating it if the
                            // announcement precedes the flow's data).
                            let flow = FlowId(mflow);
                            let session = self.session(flow, ctx);
                            if epoch != session.consumer.epoch() {
                                let leftovers = session.consumer.reset(epoch);
                                for entry in leftovers {
                                    session.buffer.remove(&entry.tag);
                                }
                            }
                            session.supervisor.on_handshake_ack(ctx.now());
                            self.supervise_flow(flow, ctx);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            // Undecodable sidecar frame (corruption): counts
                            // against the session's error budget. Content is
                            // garbage, so attribute it by the datagram's
                            // 4-tuple.
                            let flow = packet.flow;
                            if let Some(session) = self.table.peek_mut(flow) {
                                if session.supervisor.note_error(ctx.now()) {
                                    session.enter_degraded();
                                }
                                self.supervise_flow(flow, ctx);
                            }
                        }
                    }
                }
                _ => ctx.send(IfaceId(0), packet),
            },
            other => panic!("sender-side proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            // Superseded chains are cancelled in the queue; `fire` filters
            // the rare stragglers (chains orphaned by a crash).
            TOKEN_GRACE if self.grace.fire(ctx) => {
                self.fire_grace(ctx);
            }
            TOKEN_SUPERVISE if self.sup.fire(ctx) => {
                self.supervise_all(ctx);
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // A crashed proxy lost every flow's buffer, mirror log, and
        // session: come back as a plain forwarder and re-handshake each
        // flow from scratch as its packets reappear.
        let (mut deg, mut rec) = (0, 0);
        for (_, s) in self.table.iter() {
            deg += s.supervisor.stats.degradations;
            rec += s.supervisor.stats.recoveries;
        }
        // A reboot wipes the aggregates a real process would keep in RAM;
        // the accumulator models persistent (exported) telemetry, which is
        // also what the scenario reports compare. Fold live stats in before
        // dropping the table.
        self.evicted_sup.0 += deg;
        self.evicted_sup.1 += rec;
        self.table = FlowTable::new(*self.table.config());
        // Stale guards would suppress re-arming for reborn sessions;
        // disarm cancels whatever chains survived the outage.
        self.grace.disarm(ctx);
        self.sup.disarm(ctx);
    }

    fn name(&self) -> &str {
        "retx-sender-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One flow's producer-side session inside the receiver-side proxy.
struct ProducerSession {
    producer: QuackProducer<Fp32>,
    /// Earliest instant the flow's emit-timer chain may legitimately fire;
    /// an earlier fire is a stale duplicate chain and dies unanswered.
    next_emit: SimTime,
    /// quACKs emitted for this flow (feeds the eviction histogram).
    quacks: u64,
}

/// The receiver-side proxy (left-hand side of paper Fig. 4): forwards,
/// observes identifiers, emits quACKs upstream on an adaptive interval —
/// one sketch, epoch, and emit-timer chain per flow.
pub struct ReceiverSideProxy {
    cfg: SidecarConfig,
    table: FlowTable<ProducerSession>,
    /// Batched fold path: data-packet identifiers buffer here (bucketed by
    /// table slot) and reach each flow's sketch via lane-parallel
    /// `observe_batch` — flushed before anything reads, resets, or evicts
    /// a sketch. Safe to defer because quACK emission is timer-driven and
    /// power-sum folds commute within an epoch.
    folds: FoldBuffer,
    /// Set after a restart: the fresh epoch each recreated flow announces
    /// when its data reappears (lazy per-flow version of the old broadcast
    /// restart announcement).
    restart_announce: Option<u32>,
    /// Authenticated control channel; `None` speaks the legacy plain wire.
    auth: Option<ChannelAuth>,
    /// QuACK datagrams emitted (all flows).
    pub quacks_sent: u64,
    /// QuACK bytes emitted (body + headers, all flows).
    pub quack_bytes: u64,
}

impl ReceiverSideProxy {
    /// Creates the proxy.
    pub fn new(cfg: SidecarConfig) -> Self {
        Self::with_flow_table(cfg, FlowTableConfig::default())
    }

    /// Creates the proxy with explicit flow-table sizing.
    pub fn with_flow_table(cfg: SidecarConfig, table: FlowTableConfig) -> Self {
        ReceiverSideProxy {
            cfg,
            table: FlowTable::new(table),
            folds: FoldBuffer::with_capacity(FoldBuffer::DEFAULT_CAPACITY),
            restart_announce: None,
            auth: None,
            quacks_sent: 0,
            quack_bytes: 0,
        }
    }

    /// Seals and verifies all control traffic with `cfg`'s session keys.
    pub fn with_auth(mut self, cfg: AuthConfig) -> Self {
        self.auth = Some(ChannelAuth::new(cfg));
        self
    }

    /// Live per-flow sessions.
    pub fn live_flows(&self) -> usize {
        self.table.len()
    }

    /// Ensures `flow` has a session, returning its slot handle for O(1)
    /// re-entry. A fresh session starts its own emit chain; when `announce`
    /// is set and the proxy restarted, the fresh post-restart epoch is
    /// announced to the consumer for this flow.
    fn ensure_session(&mut self, flow: FlowId, announce: bool, ctx: &mut Context) -> SlotId {
        let cfg = self.cfg;
        let epoch = self.restart_announce;
        let now = ctx.now();
        let (created, slot) = self.table.ensure_slot(flow, now, || {
            let mut producer = QuackProducer::new(cfg);
            if let Some(e) = epoch {
                producer.reset(e);
            }
            ProducerSession {
                producer,
                next_emit: now,
                quacks: 0,
            }
        });
        if created {
            if announce {
                if let Some(e) = epoch {
                    let _ = send_sidecar(
                        SidecarMessage::Reset { epoch: e },
                        flow,
                        IfaceId(0),
                        &mut self.auth,
                        ctx,
                    );
                }
            }
            self.arm(flow, ctx);
        }
        slot
    }

    /// Drains the fold buffer: buckets buffered identifiers by slot and
    /// feeds each flow's run to its producer as one lane-parallel batch.
    fn flush_folds(&mut self, ctx: &mut Context) {
        if self.folds.is_empty() {
            return;
        }
        self.folds.flush(&mut self.table, |_, session, ids| {
            session.producer.observe_batch(ids);
        });
        obs::fold_flush(ctx, &mut self.folds);
    }

    fn emit(&mut self, flow: FlowId, ctx: &mut Context) {
        // Pending folds must reach the sketch before it is sealed into a
        // quACK (the emitted count covers everything observed so far).
        self.flush_folds(ctx);
        let (msg, fill, epoch, count) = {
            let Some(session) = self.table.peek_mut(flow) else {
                return;
            };
            let fill = session.producer.burst_fill();
            let msg = session.producer.emit();
            session.quacks += 1;
            (
                msg,
                fill,
                session.producer.epoch(),
                session.producer.count(),
            )
        };
        self.quacks_sent += 1;
        let bytes = send_sidecar(msg, flow, IfaceId(0), &mut self.auth, ctx);
        self.quack_bytes += bytes as u64;
        obs::quack_emitted(ctx, epoch, count, fill, bytes);
    }

    fn arm(&mut self, flow: FlowId, ctx: &mut Context) {
        let now = ctx.now();
        let Some(session) = self.table.peek_mut(flow) else {
            return;
        };
        if let Some(interval) = session.producer.interval() {
            session.next_emit = now + interval;
            ctx.set_timer_after(interval, flow_token(TOKEN_EMIT, flow));
        }
    }
}

impl Node for ReceiverSideProxy {
    fn on_packet(&mut self, iface: IfaceId, packet: Packet, ctx: &mut Context) {
        match iface {
            // From the subpath: observe data identifiers, forward downstream.
            IfaceId(0) => match packet.payload {
                Payload::Sidecar { proto, ref bytes } => {
                    // Control can reset or read a sketch; fold first.
                    self.flush_folds(ctx);
                    match open_ctrl(&mut self.auth, proto, bytes, ctx) {
                        Ok((mflow, SidecarMessage::Configure { interval })) => {
                            let flow = FlowId(mflow);
                            self.ensure_session(flow, false, ctx);
                            if let Some(session) = self.table.peek_mut(flow) {
                                session.producer.set_interval(interval);
                            }
                        }
                        Ok((mflow, SidecarMessage::Reset { epoch })) => {
                            let flow = FlowId(mflow);
                            self.ensure_session(flow, false, ctx);
                            if let Some(session) = self.table.peek_mut(flow) {
                                session.producer.reset(epoch);
                            }
                        }
                        Ok((mflow, hello @ SidecarMessage::Hello { .. })) => {
                            let flow = FlowId(mflow);
                            let accepted = accept_hello(&Capabilities::default(), &hello).is_ok();
                            obs::handshake(ctx, accepted);
                            if accepted {
                                // Consumer handshake; the Reset reply doubles
                                // as the handshake ack. A recovery Hello (the
                                // sketch already counts packets the consumer
                                // no longer tracks) starts a fresh epoch;
                                // a startup Hello keeps the pristine one.
                                self.ensure_session(flow, false, ctx);
                                let epoch = {
                                    let session =
                                        self.table.peek_mut(flow).expect("session just ensured");
                                    if session.producer.count() == 0 {
                                        session.producer.epoch()
                                    } else {
                                        let e = session.producer.epoch().wrapping_add(1);
                                        session.producer.reset(e);
                                        e
                                    }
                                };
                                let _ = send_sidecar(
                                    SidecarMessage::Reset { epoch },
                                    flow,
                                    IfaceId(0),
                                    &mut self.auth,
                                    ctx,
                                );
                            }
                        }
                        _ => {}
                    }
                    obs::flow_table(ctx, &mut self.table);
                }
                _ => {
                    if packet.kind == PacketKind::Data {
                        // O(1) mux: one index probe ensures the session and
                        // refreshes its LRU clock; the identifier rides the
                        // fold buffer to the sketch in a slot-bucketed
                        // batch (interleaved arrivals regroup per flow).
                        let slot = self.ensure_session(packet.flow, true, ctx);
                        if self.folds.push(slot, packet.id) {
                            self.flush_folds(ctx);
                        }
                        obs::observed(ctx);
                        obs::quack_fold(ctx, packet.flow.0, packet.seq);
                        obs::flow_table(ctx, &mut self.table);
                    }
                    ctx.send(IfaceId(1), packet);
                }
            },
            // From the client side: forward upstream untouched.
            IfaceId(1) => ctx.send(IfaceId(0), packet),
            other => panic!("receiver-side proxy has 2 interfaces, got {other:?}"),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        let (base, flow) = split_token(token);
        if base != TOKEN_EMIT {
            return;
        }
        // Fold before the reaper looks at the table: an eviction with
        // identifiers still buffered would discard them as stale.
        self.flush_folds(ctx);
        // An idle flow's own timer is its reaper: evict, report, and let
        // the chain die so finished flows stop costing emissions.
        if let Some(evicted) = self.table.evict_if_idle(flow, ctx.now()) {
            obs::flow_evicted(ctx, flow.0, evicted.quacks);
            obs::flow_table(ctx, &mut self.table);
            return;
        }
        match self.table.peek_mut(flow) {
            // Stale duplicate chain (the session was recreated and armed a
            // new one): drop this fire, the newer chain owns emission.
            Some(session) if ctx.now() < session.next_emit => {}
            Some(_) => {
                self.emit(flow, ctx);
                self.arm(flow, ctx);
            }
            None => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context) {
        // Every multiset is gone; continuing old epochs would decode
        // garbage. Drop all sessions and note a fresh time-derived epoch:
        // each flow announces it lazily as its data reappears (the old
        // single-flow code broadcast one Reset here; per-flow tagging makes
        // that a per-flow event).
        self.table = FlowTable::new(*self.table.config());
        self.folds.clear();
        self.restart_announce = Some(restart_epoch(ctx.now()));
    }

    fn name(&self) -> &str {
        "retx-receiver-proxy"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Scenario parameters for the in-network retransmission experiment.
///
/// For in-network recovery to pay off, it must complete before the server's
/// own loss detection reacts — which means the client's end-to-end ACK
/// cadence must be slower than one subpath round trip plus the quACK
/// interval (true of satellite-style paths, and exactly the regime the
/// paper and the LOOPS draft target). The default client therefore ACKs
/// sparsely; both the sidecar run and the baseline use the same client.
#[derive(Clone, Debug)]
pub struct RetxScenario {
    /// Data units the server must deliver.
    pub total_packets: u64,
    /// Server↔sender-side-proxy segment.
    pub edge_a: LinkConfig,
    /// The lossy subpath between the proxies.
    pub subpath: LinkConfig,
    /// Receiver-side-proxy↔client segment.
    pub edge_b: LinkConfig,
    /// Sidecar parameters.
    pub sidecar: SidecarConfig,
    /// Server congestion control.
    pub cc: CcAlgorithm,
    /// Sender-side proxy buffer capacity (packets).
    pub buffer_cap: usize,
    /// Client transport configuration (shared by both variants).
    pub client: ReceiverConfig,
    /// Session supervision knobs for the sender-side proxy.
    pub supervision: SupervisionConfig,
    /// Pre-shared-secret control-channel authentication. `Some` seals every
    /// sidecar datagram between the proxy pair (each proxy gets a distinct
    /// session nonce); `None` keeps the wire image byte-identical to
    /// pre-auth builds. End hosts never participate either way.
    pub auth: Option<AuthConfig>,
    /// Flight-recorder ring capacity override (events). `None` keeps the
    /// obs default; analysis runs (`exp_reaction`) raise it so a full
    /// scenario's lifecycle fits without truncation. Ignored when the `obs`
    /// feature is off.
    pub trace_capacity: Option<usize>,
    /// Metrics time-series sampling interval on the sim clock. `Some(i)`
    /// drives the run through [`sidecar_netsim::telemetry::run_sampled`],
    /// attaching a windowed [`sidecar_obs::TimeSeries`] to the report —
    /// deterministic for a given `(scenario, seed)`, so the series is
    /// golden-testable. `None` (the default) skips sampling entirely.
    #[cfg(feature = "obs")]
    pub sample_interval: Option<SimDuration>,
}

impl Default for RetxScenario {
    fn default() -> Self {
        RetxScenario {
            total_packets: 2_000,
            edge_a: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(25),
                ..LinkConfig::default()
            },
            subpath: LinkConfig {
                rate_bps: 20_000_000,
                delay: SimDuration::from_millis(5),
                loss: sidecar_netsim::link::LossModel::Bernoulli { p: 0.02 },
                ..LinkConfig::default()
            },
            edge_b: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(2),
                ..LinkConfig::default()
            },
            sidecar: SidecarConfig {
                frequency: QuackFrequency::Adaptive(SimDuration::from_millis(5)),
                reorder_grace: SimDuration::from_millis(3),
                ..SidecarConfig::paper_default()
            },
            cc: CcAlgorithm::NewReno,
            buffer_cap: 4_096,
            // Sparse end-to-end ACKs: one per 32 packets (≈19 ms at the
            // 20 Mbit/s bottleneck), no immediate gap-ACKs — so in-network
            // recovery (quACK interval + grace + subpath one-way ≈ 13 ms)
            // fills holes before the server ever hears about them.
            client: ReceiverConfig {
                ack_every: 32,
                max_ack_delay: SimDuration::from_millis(50),
                immediate_on_gap: false,
                ..ReceiverConfig::default()
            },
            supervision: SupervisionConfig::default(),
            auth: None,
            trace_capacity: None,
            #[cfg(feature = "obs")]
            sample_interval: None,
        }
    }
}

impl RetxScenario {
    /// Runs the scenario with sidecar proxies.
    pub fn run_sidecar(&self, seed: u64) -> ScenarioReport {
        self.run(seed, true, None)
    }

    /// Runs the baseline: identical topology with plain forwarders.
    pub fn run_baseline(&self, seed: u64) -> ScenarioReport {
        self.run(seed, false, None)
    }

    /// Sidecar run with scripted faults (crash hits the sender-side proxy;
    /// blackout hits the subpath between the proxies).
    pub fn run_sidecar_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run(seed, true, Some(faults))
    }

    /// Baseline twin under the identical fault script.
    pub fn run_baseline_faulted(&self, seed: u64, faults: &FaultScript) -> ScenarioReport {
        self.run(seed, false, Some(faults))
    }

    fn run(&self, seed: u64, sidecar: bool, faults: Option<&FaultScript>) -> ScenarioReport {
        let mut w = World::new(seed);
        #[cfg(feature = "obs")]
        if let Some(cap) = self.trace_capacity {
            w.obs_mut().trace = sidecar_obs::EventTrace::with_capacity(cap);
        }
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(self.total_packets),
            cc: self.cc,
            id_seed: seed ^ 0xA5A5,
            // PTO absorbs the sparse client's ACK cadence.
            peer_max_ack_delay: self.client.max_ack_delay + SimDuration::from_millis(50),
            ..SenderConfig::default()
        }));
        // Subpath RTT for the in-transit window: 2 × one-way delay plus
        // slack.
        let subpath_rtt = self.subpath.delay * 2 + SimDuration::from_millis(2);
        let (proxy_a, proxy_b) = if sidecar {
            let mut a =
                SenderSideProxy::new(self.sidecar, subpath_rtt, self.buffer_cap, self.supervision);
            let mut b = ReceiverSideProxy::new(self.sidecar);
            if let Some(auth) = self.auth {
                // Distinct per-proxy nonces keep each direction's replay
                // window independent (and the runs deterministic).
                a = a.with_auth(auth.with_nonce(1));
                b = b.with_auth(auth.with_nonce(2));
            }
            (w.add_node(Box::new(a)), w.add_node(Box::new(b)))
        } else {
            (
                w.add_node(Forwarder::boxed()),
                w.add_node(Forwarder::boxed()),
            )
        };
        let client = w.add_node(ReceiverNode::boxed(self.client.clone()));
        w.connect(server, proxy_a, self.edge_a.clone(), self.edge_a.clone());
        w.connect(proxy_a, proxy_b, self.subpath.clone(), self.subpath.clone());
        w.connect(proxy_b, client, self.edge_b.clone(), self.edge_b.clone());
        if let Some(script) = faults {
            let plan = script.lower(proxy_a, (proxy_a, proxy_b));
            if !plan.is_empty() {
                w.install_faults(plan);
            }
        }
        // Periodic sidecar timers never let the event queue drain; run to a
        // generous wall-clock deadline instead and read completion from the
        // sender's stats.
        let deadline = SimTime::ZERO + SimDuration::from_secs(120);
        #[cfg(feature = "obs")]
        let mut sampler = sidecar_obs::Sampler::default();
        #[cfg(feature = "obs")]
        if let Some(interval) = self.sample_interval {
            let registry = w.obs().metrics.clone();
            sidecar_netsim::telemetry::run_sampled(
                &mut w,
                &registry,
                deadline,
                interval,
                &mut sampler,
            );
        } else {
            w.run_until(deadline);
        }
        #[cfg(not(feature = "obs"))]
        w.run_until(deadline);

        let sender = w.node_as::<SenderNode>(server);
        let stats = sender.stats().clone();
        let mtu = sender.core().config().mtu;
        let mut report = ScenarioReport {
            completion: stats.completed_at,
            goodput_bps: stats.goodput_bps(mtu),
            server_sent: stats.sent_packets,
            server_retransmissions: stats.retransmissions,
            ..ScenarioReport::default()
        };
        let receiver = w.node_as::<ReceiverNode>(client);
        report.client_acks = receiver.stats().acks_sent;
        if sidecar {
            let a = w.node_as::<SenderSideProxy>(proxy_a);
            report.proxy_retransmissions = a.retransmitted;
            report.degradations = a.degradations();
            report.recoveries = a.recoveries();
            let b = w.node_as::<ReceiverSideProxy>(proxy_b);
            report.sidecar_messages = b.quacks_sent + a.control_sent;
            report.sidecar_bytes = b.quack_bytes;
            // Attach the world registry snapshot (sidecar runs only, so
            // baselines keep the empty default) and mirror it into the
            // process-global registry for bench `--metrics-out` dumps.
            #[cfg(feature = "obs")]
            {
                let snap = w.obs().metrics.snapshot();
                sidecar_obs::global().absorb(&snap);
                report.metrics = snap;
                let trace = w.obs().trace.clone();
                sidecar_obs::global_trace_absorb(&trace);
                report.trace = trace;
                report.timeseries = sampler.into_series();
                report.scoreboard = w.obs().scoreboard.snapshot(super::SCOREBOARD_TOP_K);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_netsim::link::LossModel;

    #[test]
    fn flow_completes_with_in_network_retx() {
        let scenario = RetxScenario {
            total_packets: 500,
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(1);
        assert!(report.completion.is_some(), "{report:?}");
        assert!(report.proxy_retransmissions > 0, "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sampled_run_attaches_deterministic_timeseries_and_scoreboard() {
        let scenario = RetxScenario {
            total_packets: 500,
            sample_interval: Some(SimDuration::from_secs(5)),
            ..RetxScenario::default()
        };
        let a = scenario.run_sidecar(7);
        let b = scenario.run_sidecar(7);
        assert_eq!(a.timeseries.render(), b.timeseries.render());
        assert!(!a.timeseries.is_empty());
        // The first window covers the active transfer: the quACK send rate
        // must be visibly non-zero there.
        let first = a.timeseries.points().next().expect("has points");
        let quack_rate = first
            .rates
            .iter()
            .find(|(n, _)| n == "sidecar.sent.quack")
            .map(|(_, r)| *r)
            .expect("quack rate track");
        assert!(quack_rate > 0.0, "{first:?}");
        // Proxy retransmissions feed the scoreboard, so the lossy subpath
        // must surface the flow as the unhealthiest row — deterministically.
        assert_eq!(a.scoreboard, b.scoreboard);
        assert!(a.proxy_retransmissions > 0);
        let top = a.scoreboard.rows.first().expect("scoreboard has rows");
        assert!(top.retx > 0, "{top:?}");
        assert_eq!(a.scoreboard.overflow, 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn unsampled_run_attaches_no_timeseries() {
        let scenario = RetxScenario {
            total_packets: 200,
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(1);
        assert!(report.timeseries.is_empty());
    }

    #[test]
    fn in_network_retx_reduces_e2e_retransmissions() {
        let scenario = RetxScenario {
            total_packets: 1_000,
            ..RetxScenario::default()
        };
        let side = scenario.run_sidecar(7);
        let base = scenario.run_baseline(7);
        assert!(base.completion.is_some() && side.completion.is_some());
        assert!(
            side.server_retransmissions < base.server_retransmissions,
            "sidecar {} vs baseline {}",
            side.server_retransmissions,
            base.server_retransmissions
        );
    }

    #[test]
    fn in_network_retx_speeds_up_completion_on_lossy_subpath() {
        let scenario = RetxScenario {
            total_packets: 1_500,
            subpath: LinkConfig {
                loss: LossModel::Bernoulli { p: 0.03 },
                ..RetxScenario::default().subpath
            },
            ..RetxScenario::default()
        };
        let side = scenario.run_sidecar(21);
        let base = scenario.run_baseline(21);
        assert!(
            side.completion_secs() < base.completion_secs(),
            "sidecar {:.3}s vs baseline {:.3}s",
            side.completion_secs(),
            base.completion_secs()
        );
    }

    #[test]
    fn lossless_subpath_means_no_proxy_retx() {
        let scenario = RetxScenario {
            total_packets: 300,
            subpath: LinkConfig {
                loss: LossModel::None,
                // Deep queue so slow start cannot cause congestive drops —
                // which the proxy would (correctly) retransmit.
                queue_packets: 8_192,
                ..RetxScenario::default().subpath
            },
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(3);
        assert!(report.completion.is_some());
        assert_eq!(report.proxy_retransmissions, 0, "{report:?}");
        assert_eq!(report.server_retransmissions, 0);
    }

    #[test]
    fn deterministic_reports() {
        let scenario = RetxScenario {
            total_packets: 400,
            ..RetxScenario::default()
        };
        assert_eq!(scenario.run_sidecar(5), scenario.run_sidecar(5));
    }

    #[cfg(feature = "auth")]
    #[test]
    fn authenticated_run_completes_without_rejects() {
        let scenario = RetxScenario {
            total_packets: 400,
            auth: Some(crate::config::AuthConfig::from_secret(0xFEED_FACE, 7)),
            ..RetxScenario::default()
        };
        let report = scenario.run_sidecar(5);
        assert!(report.completion.is_some(), "{report:?}");
        #[cfg(feature = "obs")]
        {
            assert!(report.metrics.counter("auth.accepted") > 0, "{report:?}");
            assert_eq!(report.metrics.counter_sum("auth.rejected."), 0);
        }
        assert_eq!(scenario.run_sidecar(5), scenario.run_sidecar(5));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use sidecar_netsim::transport::{ReceiverNode, SenderNode};

    #[test]
    #[ignore]
    fn debug_stall() {
        let scenario = RetxScenario {
            total_packets: 500,
            ..RetxScenario::default()
        };
        let mut w = World::new(1);
        let server = w.add_node(SenderNode::boxed(SenderConfig {
            total_packets: Some(500),
            cc: scenario.cc,
            id_seed: 1 ^ 0xA5A5,
            ..SenderConfig::default()
        }));
        let subpath_rtt = scenario.subpath.delay * 2 + SimDuration::from_millis(2);
        let proxy_a = w.add_node(Box::new(SenderSideProxy::new(
            scenario.sidecar,
            subpath_rtt,
            scenario.buffer_cap,
            scenario.supervision,
        )));
        let proxy_b = w.add_node(Box::new(ReceiverSideProxy::new(scenario.sidecar)));
        let client = w.add_node(ReceiverNode::boxed(scenario.client.clone()));
        w.connect(
            server,
            proxy_a,
            scenario.edge_a.clone(),
            scenario.edge_a.clone(),
        );
        let (a_to_b, _) = w.connect(
            proxy_a,
            proxy_b,
            scenario.subpath.clone(),
            scenario.subpath.clone(),
        );
        w.connect(
            proxy_b,
            client,
            scenario.edge_b.clone(),
            scenario.edge_b.clone(),
        );
        for step_ms in [100u64, 200, 500, 1000, 2000, 5000, 10000] {
            w.run_until(SimTime::ZERO + SimDuration::from_millis(step_ms));
            let s = w.node_as::<SenderNode>(server);
            let st = s.stats().clone();
            let inflight = s.core().in_flight_count();
            let cwnd = s.core().effective_cwnd();
            let nt = s.core().next_timeout();
            let a = w.node_as::<SenderSideProxy>(proxy_a);
            let cstats = a.consumer_stats(FlowId(0)).cloned().unwrap_or_default();
            let cl = w.node_as::<ReceiverNode>(client);
            let sub = w.link_stats(proxy_a, a_to_b).clone();
            println!("t={step_ms}ms sent={} retx={} deliv={} lost={} ce={} rtos={} inflight={inflight} cwnd={cwnd} next_to={nt:?} | proxyA retx={} resets={} conf_lost={} conf_recv={} stale={} | client units={} acks={} | sub offered={} dloss={} dq={}",
                st.sent_packets, st.retransmissions, st.delivered_packets, st.lost_packets, st.congestion_events, st.rtos,
                a.retransmitted, cstats.resets_needed, cstats.confirmed_lost, cstats.confirmed_received, cstats.quacks_stale,
                cl.stats().unique_units, cl.stats().acks_sent, sub.offered, sub.dropped_loss, sub.dropped_queue);
        }
    }
}
