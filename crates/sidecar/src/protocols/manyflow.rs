//! Many-flow muxing: N concurrent connections through one sidecar proxy.
//!
//! A real vantage point serves many connections at once; the paper's §4.2
//! memory argument ("the quACK is O(1) in space") only pays off if the
//! proxy's *per-flow* state is bounded too. This scenario drives N
//! independent sender/receiver pairs through a [`FlowRouter`] mux, a single
//! flow-aware proxy (or proxy pair), and a demux — exercising the
//! [`FlowTable`]'s sharding, LRU/idle eviction, and the flow-tagged wire
//! format under contention. All three Table-1 protocols are covered.
//!
//! [`FlowTable`]: crate::flows::FlowTable

use crate::config::{AuthConfig, QuackFrequency, SidecarConfig, SupervisionConfig};
use crate::flows::FlowTableConfig;
use crate::protocols::ack_reduction::{AckRedProxy, AckRedServer};
use crate::protocols::ccd::{CcdClient, CcdProxy, CcdServer, STEERED_CC};
use crate::protocols::retx::{ReceiverSideProxy, SenderSideProxy};
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::IfaceId;
use sidecar_netsim::node::NodeId;
use sidecar_netsim::packet::FlowId;
use sidecar_netsim::router::FlowRouter;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::world::World;

/// Which Table-1 protocol the muxed proxy speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManyFlowProtocol {
    /// §2.1 congestion-control division (client/proxy/server sidecars).
    CongestionDivision,
    /// §2.2 ACK reduction (proxy producer, server consumer).
    AckReduction,
    /// §2.3 in-network retransmission (proxy pair brackets the trunk).
    Retx,
}

impl ManyFlowProtocol {
    /// Short label for tables and metric params.
    pub fn label(&self) -> &'static str {
        match self {
            ManyFlowProtocol::CongestionDivision => "ccd",
            ManyFlowProtocol::AckReduction => "ackred",
            ManyFlowProtocol::Retx => "retx",
        }
    }
}

/// Aggregate outcome of one many-flow run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ManyFlowReport {
    /// Flows in the run.
    pub flows: u32,
    /// Flows whose sender delivered every packet within the horizon.
    pub completed: u32,
    /// Worst per-flow completion time (seconds; ∞ if any flow unfinished).
    pub slowest_completion_secs: f64,
    /// Sum of per-flow application goodput (bits/s) over completed flows.
    pub aggregate_goodput_bps: f64,
    /// Sidecar datagrams emitted by the proxy tier.
    pub sidecar_messages: u64,
    /// Sidecar bytes emitted by the proxy tier.
    pub sidecar_bytes: u64,
    /// Per-flow sessions still resident in the proxy tier's flow tables
    /// when the run ended (idle eviction reaps finished flows).
    pub live_flows_at_end: usize,
    /// Idle-deadline evictions across the proxy tier (always 0 when the
    /// `obs` feature is off — the counter lives in the metrics registry).
    pub evictions_idle: u64,
    /// Capacity (LRU) evictions across the proxy tier (0 without `obs`).
    pub evictions_capacity: u64,
    /// Snapshot of the run's world metrics registry (includes the
    /// `flowtable.*` occupancy/eviction counters).
    #[cfg(feature = "obs")]
    pub metrics: sidecar_obs::MetricsSnapshot,
    /// Flight-recorder event trace (empty unless
    /// [`ManyFlowScenario::trace_capacity`] was set).
    #[cfg(feature = "obs")]
    pub trace: sidecar_obs::EventTrace,
}

impl ManyFlowReport {
    /// Flow-table evictions (idle + capacity) recorded by the run.
    pub fn evictions(&self) -> u64 {
        self.evictions_idle + self.evictions_capacity
    }
}

/// Scenario parameters for the many-flow muxing experiment.
#[derive(Clone, Debug)]
pub struct ManyFlowScenario {
    /// Protocol under test.
    pub protocol: ManyFlowProtocol,
    /// Concurrent flows (ids 1..=flows; 0 is reserved for legacy traffic).
    pub flows: u32,
    /// Data units each flow's sender must deliver.
    pub packets_per_flow: u64,
    /// Flow-table sizing for every proxy in the run. The short idle
    /// timeout matters: finished flows must be reaped, not retained for
    /// the classic 300 s default.
    pub table: FlowTableConfig,
    /// Per-flow access links (sender↔mux, demux↔receiver).
    pub edge: LinkConfig,
    /// The shared trunk every flow crosses (the proxy sits on it).
    pub trunk: LinkConfig,
    /// Wall-clock bound on the simulation.
    pub horizon: SimDuration,
    /// Session supervision knobs.
    pub supervision: SupervisionConfig,
    /// Pre-shared-secret control-channel authentication. `Some` seals every
    /// sidecar datagram in the run; each node derives a distinct session
    /// nonce (proxies low, senders `100+flow`, clients `200+flow`) so the
    /// muxed proxy tracks one replay window per peer session.
    pub auth: Option<AuthConfig>,
    /// Base seed; per-flow id streams derive from it.
    pub seed: u64,
    /// Flight-recorder ring capacity override (events); `None` keeps the
    /// obs default. Set it (generously) to causally certify a many-flow
    /// run's packet lifecycles. Ignored when the `obs` feature is off.
    pub trace_capacity: Option<usize>,
}

impl ManyFlowScenario {
    /// Protocol-appropriate defaults for an N-flow run.
    pub fn new(protocol: ManyFlowProtocol, flows: u32) -> Self {
        let trunk = match protocol {
            // Division: the trunk is the slow/lossy downstream segment.
            ManyFlowProtocol::CongestionDivision => LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(20),
                loss: LossModel::Bernoulli { p: 0.005 },
                queue_packets: 1_024,
                ..LinkConfig::default()
            },
            // ACK reduction: the trunk is the long server↔proxy segment.
            ManyFlowProtocol::AckReduction => LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(25),
                queue_packets: 1_024,
                ..LinkConfig::default()
            },
            // Retx: the trunk is the lossy subpath between the proxies.
            ManyFlowProtocol::Retx => LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(5),
                loss: LossModel::Bernoulli { p: 0.01 },
                queue_packets: 1_024,
                ..LinkConfig::default()
            },
        };
        ManyFlowScenario {
            protocol,
            flows,
            packets_per_flow: 64,
            table: FlowTableConfig {
                idle_timeout: SimDuration::from_secs(2),
                ..FlowTableConfig::default()
            },
            edge: LinkConfig {
                rate_bps: 1_000_000_000,
                delay: SimDuration::from_millis(2),
                queue_packets: 1_024,
                ..LinkConfig::default()
            },
            trunk,
            horizon: SimDuration::from_secs(60),
            supervision: SupervisionConfig::default(),
            auth: None,
            seed: 1,
            trace_capacity: None,
        }
    }

    /// Fresh world for one run, with the flight-recorder ring resized when
    /// a trace capacity was requested.
    fn world(&self) -> World {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut w = World::new(self.seed);
        #[cfg(feature = "obs")]
        if let Some(cap) = self.trace_capacity {
            w.obs_mut().trace = sidecar_obs::EventTrace::with_capacity(cap);
        }
        w
    }

    fn sidecar_cfg(&self) -> SidecarConfig {
        match self.protocol {
            ManyFlowProtocol::CongestionDivision => SidecarConfig {
                threshold: 50,
                reorder_grace: SimDuration::from_millis(10),
                ..SidecarConfig::paper_default()
            },
            ManyFlowProtocol::AckReduction => SidecarConfig {
                frequency: QuackFrequency::EveryPackets(2),
                reorder_grace: SimDuration::from_millis(20),
                ..SidecarConfig::paper_default()
            },
            ManyFlowProtocol::Retx => SidecarConfig {
                frequency: QuackFrequency::Adaptive(SimDuration::from_millis(5)),
                reorder_grace: SimDuration::from_millis(3),
                ..SidecarConfig::paper_default()
            },
        }
    }

    /// Flow ids start at 1: flow 0 is the untagged legacy id, and keeping
    /// it off the wire here proves the tagged path carries everything.
    fn flow_ids(&self) -> Vec<FlowId> {
        (1..=self.flows).map(FlowId).collect()
    }

    /// Builds the mux/demux pair: mux ifaces `0..N` face the senders and
    /// iface `N` faces the trunk; demux iface `0` faces the trunk and
    /// `1..=N` face the receivers.
    fn routers(&self) -> (FlowRouter, FlowRouter) {
        let n = self.flows as usize;
        let mut mux = FlowRouter::new();
        let mut demux = FlowRouter::new();
        for (i, flow) in self.flow_ids().into_iter().enumerate() {
            mux.add_duplex_route(flow, IfaceId(i), IfaceId(n));
            demux.add_duplex_route(flow, IfaceId(0), IfaceId(i + 1));
        }
        (mux, demux)
    }

    /// Runs the scenario.
    pub fn run(&self) -> ManyFlowReport {
        match self.protocol {
            ManyFlowProtocol::CongestionDivision => self.run_ccd(),
            ManyFlowProtocol::AckReduction => self.run_ackred(),
            ManyFlowProtocol::Retx => self.run_retx(),
        }
    }

    fn finish<F>(
        &self,
        w: World,
        senders: &[NodeId],
        completed_at: F,
        sidecar: (u64, u64),
        live: usize,
    ) -> ManyFlowReport
    where
        F: Fn(&World, NodeId) -> (Option<SimTime>, Option<f64>),
    {
        let mut report = ManyFlowReport {
            flows: self.flows,
            live_flows_at_end: live,
            sidecar_messages: sidecar.0,
            sidecar_bytes: sidecar.1,
            ..ManyFlowReport::default()
        };
        for &s in senders {
            let (done, goodput) = completed_at(&w, s);
            if let Some(t) = done {
                report.completed += 1;
                report.slowest_completion_secs =
                    report.slowest_completion_secs.max(t.as_secs_f64());
                report.aggregate_goodput_bps += goodput.unwrap_or(0.0);
            } else {
                report.slowest_completion_secs = f64::INFINITY;
            }
        }
        #[cfg(feature = "obs")]
        {
            let snap = w.obs().metrics.snapshot();
            report.evictions_idle = snap.counter("flowtable.evicted.idle");
            report.evictions_capacity = snap.counter("flowtable.evicted.capacity");
            sidecar_obs::global().absorb(&snap);
            report.metrics = snap;
            let trace = w.obs().trace.clone();
            sidecar_obs::global_trace_absorb(&trace);
            report.trace = trace;
        }
        #[cfg(not(feature = "obs"))]
        let _ = w;
        report
    }

    fn run_retx(&self) -> ManyFlowReport {
        let cfg = self.sidecar_cfg();
        let mut w = self.world();
        let senders: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                w.add_node(SenderNode::boxed(SenderConfig {
                    flow,
                    total_packets: Some(self.packets_per_flow),
                    id_seed: self.seed ^ (0x5E7 << 32) ^ flow.0 as u64,
                    peer_max_ack_delay: SimDuration::from_millis(100),
                    ..SenderConfig::default()
                }))
            })
            .collect();
        let (mux, demux) = self.routers();
        let mux = w.add_node(mux.boxed());
        let subpath_rtt = self.trunk.delay * 2 + SimDuration::from_millis(2);
        let mut proxy_a =
            SenderSideProxy::with_flow_table(cfg, subpath_rtt, 4_096, self.supervision, self.table);
        let mut proxy_b = ReceiverSideProxy::with_flow_table(cfg, self.table);
        if let Some(auth) = self.auth {
            proxy_a = proxy_a.with_auth(auth.with_nonce(1));
            proxy_b = proxy_b.with_auth(auth.with_nonce(2));
        }
        let a = w.add_node(Box::new(proxy_a));
        let b = w.add_node(Box::new(proxy_b));
        let demux = w.add_node(demux.boxed());
        let receivers: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                w.add_node(ReceiverNode::boxed(ReceiverConfig {
                    flow,
                    ack_every: 32,
                    max_ack_delay: SimDuration::from_millis(50),
                    immediate_on_gap: false,
                    ..ReceiverConfig::default()
                }))
            })
            .collect();
        for &s in &senders {
            w.connect(s, mux, self.edge.clone(), self.edge.clone());
        }
        w.connect(mux, a, self.edge.clone(), self.edge.clone());
        w.connect(a, b, self.trunk.clone(), self.trunk.clone());
        w.connect(b, demux, self.edge.clone(), self.edge.clone());
        for &r in &receivers {
            w.connect(demux, r, self.edge.clone(), self.edge.clone());
        }
        w.run_until(SimTime::ZERO + self.horizon);

        let (sidecar, live) = {
            let pa = w.node_as::<SenderSideProxy>(a);
            let pb = w.node_as::<ReceiverSideProxy>(b);
            (
                (pb.quacks_sent + pa.control_sent, pb.quack_bytes),
                pa.live_flows() + pb.live_flows(),
            )
        };
        self.finish(
            w,
            &senders,
            |w, s| {
                let node = w.node_as::<SenderNode>(s);
                let stats = node.stats();
                (
                    stats.completed_at,
                    stats.goodput_bps(node.core().config().mtu),
                )
            },
            sidecar,
            live,
        )
    }

    fn run_ackred(&self) -> ManyFlowReport {
        let cfg = self.sidecar_cfg();
        let mut w = self.world();
        let senders: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                let mut server = AckRedServer::new(
                    SenderConfig {
                        flow,
                        total_packets: Some(self.packets_per_flow),
                        cc: CcAlgorithm::NewReno,
                        id_seed: self.seed ^ (0xAC4 << 32) ^ flow.0 as u64,
                        peer_max_ack_delay: SimDuration::from_millis(200),
                        ..SenderConfig::default()
                    },
                    cfg,
                    self.trunk.delay * 2 + SimDuration::from_millis(5),
                    self.supervision,
                );
                if let Some(auth) = self.auth {
                    server = server.with_auth(auth.with_nonce(100 + flow.0 as u64));
                }
                w.add_node(Box::new(server))
            })
            .collect();
        let (mux, demux) = self.routers();
        let mux = w.add_node(mux.boxed());
        let mut proxy_node = AckRedProxy::with_flow_table(cfg, self.table);
        if let Some(auth) = self.auth {
            proxy_node = proxy_node.with_auth(auth.with_nonce(1));
        }
        let proxy = w.add_node(Box::new(proxy_node));
        let demux = w.add_node(demux.boxed());
        let receivers: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                w.add_node(ReceiverNode::boxed(ReceiverConfig {
                    flow,
                    ack_every: 32,
                    max_ack_delay: SimDuration::from_millis(150),
                    immediate_on_gap: false,
                    ..ReceiverConfig::default()
                }))
            })
            .collect();
        for &s in &senders {
            w.connect(s, mux, self.edge.clone(), self.edge.clone());
        }
        w.connect(mux, proxy, self.trunk.clone(), self.trunk.clone());
        w.connect(proxy, demux, self.edge.clone(), self.edge.clone());
        for &r in &receivers {
            w.connect(demux, r, self.edge.clone(), self.edge.clone());
        }
        w.run_until(SimTime::ZERO + self.horizon);

        let (sidecar, live) = {
            let px = w.node_as::<AckRedProxy>(proxy);
            ((px.quacks_sent, px.quack_bytes), px.live_flows())
        };
        self.finish(
            w,
            &senders,
            |w, s| {
                let node = w.node_as::<AckRedServer>(s);
                let stats = node.stats();
                (
                    stats.completed_at,
                    stats.goodput_bps(node.core().config().mtu),
                )
            },
            sidecar,
            live,
        )
    }

    fn run_ccd(&self) -> ManyFlowReport {
        let cfg = self.sidecar_cfg();
        let quack_interval = SimDuration::from_millis(30);
        let mut w = self.world();
        let senders: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                let mut server = CcdServer::new(
                    SenderConfig {
                        flow,
                        total_packets: Some(self.packets_per_flow),
                        cc: STEERED_CC,
                        id_seed: self.seed ^ (0xCCD << 32) ^ flow.0 as u64,
                        ..SenderConfig::default()
                    },
                    cfg,
                    self.edge.delay * 2 + SimDuration::from_millis(5),
                    CcAlgorithm::NewReno,
                    self.supervision,
                );
                if let Some(auth) = self.auth {
                    server = server.with_auth(auth.with_nonce(100 + flow.0 as u64));
                }
                w.add_node(Box::new(server))
            })
            .collect();
        let (mux, demux) = self.routers();
        let mux = w.add_node(mux.boxed());
        let mut proxy_node = CcdProxy::with_flow_table(
            cfg,
            quack_interval,
            self.trunk.rate_bps as f64 * 0.9,
            2_048,
            self.trunk.delay * 2 + SimDuration::from_millis(5),
            self.supervision,
            self.table,
        );
        if let Some(auth) = self.auth {
            proxy_node = proxy_node.with_auth(auth.with_nonce(1));
        }
        let proxy = w.add_node(Box::new(proxy_node));
        let demux = w.add_node(demux.boxed());
        let receivers: Vec<NodeId> = self
            .flow_ids()
            .iter()
            .map(|&flow| {
                let mut client = CcdClient::new(
                    ReceiverConfig {
                        flow,
                        ..ReceiverConfig::default()
                    },
                    cfg,
                    quack_interval,
                );
                if let Some(auth) = self.auth {
                    client = client.with_auth(auth.with_nonce(200 + flow.0 as u64));
                }
                w.add_node(Box::new(client))
            })
            .collect();
        for &s in &senders {
            w.connect(s, mux, self.edge.clone(), self.edge.clone());
        }
        w.connect(mux, proxy, self.edge.clone(), self.edge.clone());
        w.connect(proxy, demux, self.trunk.clone(), self.trunk.clone());
        for &r in &receivers {
            w.connect(demux, r, self.edge.clone(), self.edge.clone());
        }
        w.run_until(SimTime::ZERO + self.horizon);

        let (sidecar, live) = {
            let px = w.node_as::<CcdProxy>(proxy);
            let client_quacks: u64 = receivers
                .iter()
                .map(|&r| w.node_as::<CcdClient>(r).quacks_sent)
                .sum();
            let client_bytes: u64 = receivers
                .iter()
                .map(|&r| w.node_as::<CcdClient>(r).quack_bytes)
                .sum();
            (
                (
                    px.quacks_sent + client_quacks,
                    px.quack_bytes + client_bytes,
                ),
                px.live_flows(),
            )
        };
        self.finish(
            w,
            &senders,
            |w, s| {
                let node = w.node_as::<CcdServer>(s);
                let stats = node.stats();
                (
                    stats.completed_at,
                    stats.goodput_bps(node.core().config().mtu),
                )
            },
            sidecar,
            live,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protocol: ManyFlowProtocol, flows: u32) -> ManyFlowScenario {
        let mut s = ManyFlowScenario::new(protocol, flows);
        s.packets_per_flow = 32;
        s.horizon = SimDuration::from_secs(30);
        s
    }

    #[test]
    fn retx_muxes_eight_flows_to_completion() {
        let report = small(ManyFlowProtocol::Retx, 8).run();
        assert_eq!(report.completed, 8, "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn ackred_muxes_eight_flows_to_completion() {
        let report = small(ManyFlowProtocol::AckReduction, 8).run();
        assert_eq!(report.completed, 8, "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn ccd_muxes_eight_flows_to_completion() {
        let report = small(ManyFlowProtocol::CongestionDivision, 8).run();
        assert_eq!(report.completed, 8, "{report:?}");
        assert!(report.sidecar_messages > 0);
    }

    #[test]
    fn finished_flows_are_reaped_by_idle_eviction() {
        // 2 s idle timeout, 30 s horizon: long after the last packet, the
        // proxies must have evicted (nearly) every session.
        for protocol in [
            ManyFlowProtocol::Retx,
            ManyFlowProtocol::AckReduction,
            ManyFlowProtocol::CongestionDivision,
        ] {
            let report = small(protocol, 8).run();
            assert_eq!(report.completed, 8, "{protocol:?}: {report:?}");
            assert!(
                report.live_flows_at_end < 8,
                "{protocol:?} kept every session resident: {report:?}"
            );
            #[cfg(feature = "obs")]
            assert!(
                report.evictions() > 0,
                "{protocol:?} reported no evictions: {report:?}"
            );
        }
    }

    #[test]
    fn capacity_cap_is_enforced_under_flow_pressure() {
        // More flows than table slots: the proxy must keep serving (flows
        // complete via e2e recovery + resync) with bounded state.
        let mut s = small(ManyFlowProtocol::AckReduction, 24);
        s.table = FlowTableConfig {
            shards: 2,
            per_shard: 4,
            idle_timeout: SimDuration::from_secs(2),
        };
        let report = s.run();
        assert!(report.live_flows_at_end <= 8, "{report:?}");
        assert_eq!(report.completed, 24, "{report:?}");
        #[cfg(feature = "obs")]
        assert!(report.evictions() > 0, "{report:?}");
    }

    #[test]
    fn deterministic_reports() {
        let s = small(ManyFlowProtocol::Retx, 4);
        assert_eq!(s.run(), s.run());
    }

    #[cfg(feature = "auth")]
    #[test]
    fn authenticated_mux_completes_for_all_protocols() {
        for protocol in [
            ManyFlowProtocol::Retx,
            ManyFlowProtocol::AckReduction,
            ManyFlowProtocol::CongestionDivision,
        ] {
            let mut s = small(protocol, 8);
            s.auth = Some(crate::config::AuthConfig::from_secret(0xFEED_FACE, 7));
            let report = s.run();
            assert_eq!(report.completed, 8, "{protocol:?}: {report:?}");
            assert!(report.sidecar_messages > 0);
            assert_eq!(s.run(), s.run());
        }
    }
}
