//! The three sidecar protocols of paper Table 1, as runnable scenarios.
//!
//! | Protocol | Proxy role | Server role | Client role |
//! |---|---|---|---|
//! | Congestion-control division (§2.1) | send and receive quACKs; pace the downstream segment | receive quACKs; steer the congestion window | send quACKs |
//! | ACK reduction (§2.2) | send quACKs | receive quACKs; move the sending window | none |
//! | In-network retransmission (§2.3) | send and receive quACKs; buffer and retransmit; tune frequency to the loss ratio | none | none |
//!
//! Every scenario comes with a baseline twin (plain forwarding, unmodified
//! hosts) so the benchmarks can report sidecar-vs-baseline shapes.

pub mod ack_reduction;
pub mod ccd;
pub mod retx;

use sidecar_netsim::time::SimTime;

/// Metrics common to all protocol scenarios.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioReport {
    /// Flow completion time, if the flow finished.
    pub completion: Option<SimTime>,
    /// Application goodput in bits/s over the completed flow.
    pub goodput_bps: Option<f64>,
    /// Packets transmitted by the server (including retransmissions).
    pub server_sent: u64,
    /// End-to-end retransmissions by the server.
    pub server_retransmissions: u64,
    /// ACK packets sent by the client.
    pub client_acks: u64,
    /// Sidecar datagrams (quACKs + control) transmitted.
    pub sidecar_messages: u64,
    /// Sidecar bytes transmitted.
    pub sidecar_bytes: u64,
    /// In-network retransmissions performed by proxies (retx protocol).
    pub proxy_retransmissions: u64,
}

impl ScenarioReport {
    /// Completion time in seconds (∞ if the flow never finished —
    /// convenient for table printing).
    pub fn completion_secs(&self) -> f64 {
        self.completion.map_or(f64::INFINITY, |t| t.as_secs_f64())
    }
}
