//! The three sidecar protocols of paper Table 1, as runnable scenarios.
//!
//! | Protocol | Proxy role | Server role | Client role |
//! |---|---|---|---|
//! | Congestion-control division (§2.1) | send and receive quACKs; pace the downstream segment | receive quACKs; steer the congestion window | send quACKs |
//! | ACK reduction (§2.2) | send quACKs | receive quACKs; move the sending window | none |
//! | In-network retransmission (§2.3) | send and receive quACKs; buffer and retransmit; tune frequency to the loss ratio | none | none |
//!
//! Every scenario comes with a baseline twin (plain forwarding, unmodified
//! hosts) so the benchmarks can report sidecar-vs-baseline shapes.

pub mod ack_reduction;
pub mod ccd;
pub mod manyflow;
pub mod retx;

use crate::auth::ChannelAuth;
use crate::messages::{SidecarMessage, HEADER_OVERHEAD, MAX_BODY};
use sidecar_netsim::fault::FaultPlan;
use sidecar_netsim::node::{Context, IfaceId, NodeId, TimerHandle};
use sidecar_netsim::packet::{FlowId, Packet};
use sidecar_netsim::time::{SimDuration, SimTime};

/// A guarded one-shot timer keeping at most one live chain in the queue.
///
/// The protocols share a small set of long-lived timers (grace poll,
/// supervision) that get re-armed from many call sites. The guard
/// deduplicates arms — re-arming at or after the pending deadline is a
/// no-op — and, when a *later* chain must be superseded by an earlier
/// deadline, cancels the stale queued event through its [`TimerHandle`]
/// instead of letting it fire and be filtered (the accumulating-timer
/// footgun PR 4 noted: every superseded arm used to stay in the world's
/// queue until its fire time).
#[derive(Default, Debug)]
pub(crate) struct GuardedTimer {
    armed: Option<(SimTime, TimerHandle)>,
}

impl GuardedTimer {
    /// Arms `token` at `deadline` (clamped to now). If a chain is already
    /// pending at or before `deadline` this is a no-op; a pending *later*
    /// chain is cancelled and replaced.
    pub(crate) fn arm(&mut self, deadline: SimTime, token: u64, ctx: &mut Context) {
        let deadline = deadline.max(ctx.now());
        if let Some((at, handle)) = self.armed {
            if at <= deadline {
                return; // the pending fire will re-arm past this deadline
            }
            ctx.cancel_timer(handle);
        }
        let handle = ctx.set_timer_at(deadline, token);
        self.armed = Some((deadline, handle));
    }

    /// Consumes a fire event. Returns `true` (and clears the guard) when
    /// the fire matches the live chain; `false` for stray events that must
    /// be ignored (e.g. a chain orphaned by a crash whose guard state was
    /// wiped in `on_restart`).
    pub(crate) fn fire(&mut self, ctx: &Context) -> bool {
        match self.armed {
            Some((at, _)) if at == ctx.now() => {
                self.armed = None;
                true
            }
            _ => false,
        }
    }

    /// Disarms the guard, cancelling the pending chain if any.
    pub(crate) fn disarm(&mut self, ctx: &mut Context) {
        if let Some((_, handle)) = self.armed.take() {
            ctx.cancel_timer(handle);
        }
    }
}

/// Encodes `msg` for `flow` and sends it out `iface`; returns the wire size
/// in bytes. The datagram is stamped with the session's real flow id (so
/// per-flow router/trace accounting sees control bytes where they belong)
/// and flow-tagged on the wire; flow 0 keeps the legacy untagged encoding.
/// With an auth channel the encoding is additionally sealed (authenticated
/// twin tag + envelope; see [`crate::auth`]) — `None` keeps the wire image
/// byte-identical to pre-auth builds.
pub(crate) fn send_sidecar(
    msg: SidecarMessage,
    flow: FlowId,
    iface: IfaceId,
    auth: &mut Option<ChannelAuth>,
    ctx: &mut Context,
) -> u32 {
    let (proto, body) = match auth {
        Some(channel) => channel.seal(&msg, flow.0),
        None => msg.encode_for_flow(flow.0),
    };
    // Enforce the single-datagram wire maximum on the final body (sealed
    // envelopes included): an oversized control message is dropped here with
    // its counter bumped, never emitted with a truncated length field.
    if body.len() > MAX_BODY {
        #[cfg(feature = "obs")]
        ctx.obs_inc("sidecar.err.oversized");
        return 0;
    }
    let size = HEADER_OVERHEAD + body.len() as u32;
    #[cfg(feature = "obs")]
    {
        ctx.obs_inc(match &msg {
            SidecarMessage::Quack { .. } => "sidecar.sent.quack",
            SidecarMessage::Configure { .. } => "sidecar.sent.configure",
            SidecarMessage::Reset { .. } => "sidecar.sent.reset",
            SidecarMessage::Hello { .. } => "sidecar.sent.hello",
        });
        ctx.obs_add("sidecar.sent_bytes", size as u64);
    }
    #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
    let mut pkt = Packet::sidecar(flow, proto, body, size, ctx.now());
    // Flight-recorder stamp: control datagrams have no packet number, so
    // obs builds give each one a world-scoped control sequence (`seq` stays
    // 0 when obs is compiled out — the stamp is free on the obs-off wire).
    #[cfg(feature = "obs")]
    {
        pkt.seq = ctx.next_ctrl_seq();
    }
    ctx.send(iface, pkt);
    size
}

/// Decodes (and, with an auth channel, verifies) an inbound sidecar
/// datagram into `(flow, message)`.
///
/// With `Some(channel)` the full authenticated open runs — tag-range check,
/// envelope parse, MAC verification, replay window, inner decode — and
/// every rejection is counted (`auth.rejected.<kind>`) and traced before
/// the caller sees a unit `Err`. Plain (unsealed) datagrams are rejected
/// too: an authenticated receiver accepts *only* sealed control traffic,
/// which is what makes "zero forged/replayed datagrams accepted" hold.
/// With `None` this is exactly the legacy `decode_flow` path.
pub(crate) fn open_ctrl(
    auth: &mut Option<ChannelAuth>,
    proto: u8,
    bytes: &[u8],
    ctx: &mut Context,
) -> Result<(u32, SidecarMessage), ()> {
    match auth {
        Some(channel) => match channel.open(proto, bytes) {
            Ok(ok) => {
                obs::auth_accept(ctx);
                Ok(ok)
            }
            Err(err) => {
                obs::auth_reject(ctx, &err);
                Err(())
            }
        },
        None => SidecarMessage::decode_flow(proto, bytes).map_err(|_| ()),
    }
}

/// Observability taps shared by the three protocols.
///
/// Every helper has an empty twin below so call sites stay free of `cfg`
/// noise; through a [`Context`] built without a world handle (node unit
/// tests) the obs-enabled versions are no-ops as well.
#[cfg(feature = "obs")]
pub(crate) mod obs {
    use crate::endpoint::{ProcessError, QuackReport};
    use crate::supervise::{Supervisor, SupervisorState};
    use sidecar_netsim::node::Context;
    use sidecar_obs::{Event, HealthDim, QuackErrorKind, SessionState};

    /// Histogram bounds for the producer's burst-buffer fill at emit time
    /// (the lane batch is [`sidecar_galois::LANES`] = 8 wide; larger fills
    /// mean `observe_batch` bursts).
    const BATCH_FILL_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

    fn state(s: SupervisorState) -> SessionState {
        match s {
            SupervisorState::Connecting => SessionState::Connecting,
            SupervisorState::Active => SessionState::Active,
            SupervisorState::Degraded => SessionState::Degraded,
        }
    }

    /// A producer observed one forwarded data packet.
    pub(crate) fn observed(ctx: &mut Context) {
        ctx.obs_inc("quack.observed");
    }

    /// A quACK left the producer: record the sketch coordinates and how
    /// full the lane batch was when `emit` flushed it.
    pub(crate) fn quack_emitted(
        ctx: &mut Context,
        epoch: u32,
        count: u32,
        fill: usize,
        bytes: u32,
    ) {
        let node = ctx.node_id().0 as u32;
        ctx.obs_observe("quack.batch_fill", BATCH_FILL_BOUNDS, fill as u64);
        ctx.obs_event(Event::BatchFill {
            node,
            fill: fill as u32,
        });
        ctx.obs_event(Event::QuackSent {
            node,
            epoch,
            count,
            bytes,
        });
    }

    /// The outcome of one `process_quack` call at a consumer, attributed to
    /// the flow whose sketch was decoded (decode failures feed the flow's
    /// health scoreboard row).
    pub(crate) fn quack_outcome(
        ctx: &mut Context,
        flow: u32,
        result: &Result<QuackReport, ProcessError>,
    ) {
        let node = ctx.node_id().0 as u32;
        match result {
            Ok(report) => {
                ctx.obs_inc("quack.decoded");
                ctx.obs_add("quack.confirmed_received", report.received.len() as u64);
                ctx.obs_add("quack.newly_missing", report.newly_missing.len() as u64);
                ctx.obs_event(Event::QuackDecoded {
                    node,
                    received: report.received.len() as u32,
                    missing: report.newly_missing.len() as u32,
                });
            }
            Err(err) => {
                let (name, kind) = match err {
                    ProcessError::ThresholdExceeded { .. } => {
                        ("quack.err.threshold", QuackErrorKind::Threshold)
                    }
                    ProcessError::WrongEpoch { .. } => {
                        ("quack.err.wrong_epoch", QuackErrorKind::WrongEpoch)
                    }
                    ProcessError::Stale => ("quack.err.stale", QuackErrorKind::Stale),
                    ProcessError::Malformed => ("quack.err.malformed", QuackErrorKind::Malformed),
                    ProcessError::CountInconsistent => (
                        "quack.err.count_inconsistent",
                        QuackErrorKind::CountInconsistent,
                    ),
                };
                ctx.obs_inc(name);
                ctx.obs_event(Event::QuackError { node, kind });
                ctx.obs_flow_health(flow, HealthDim::DecodeFail);
            }
        }
    }

    /// A `Hello` offer was processed by a producer.
    pub(crate) fn handshake(ctx: &mut Context, accepted: bool) {
        ctx.obs_inc(if accepted {
            "sidecar.handshake.accepted"
        } else {
            "sidecar.handshake.rejected"
        });
        let node = ctx.node_id().0 as u32;
        ctx.obs_event(Event::Handshake { node, accepted });
    }

    /// Forwards edges the supervisor recorded since the last flush into the
    /// world's trace and counters.
    pub(crate) fn sup_flush(ctx: &mut Context, sup: &mut Supervisor) {
        let node = ctx.node_id().0 as u32;
        for t in sup.take_transitions() {
            ctx.obs_inc("supervisor.transitions");
            ctx.obs_event(Event::Transition {
                node,
                from: state(t.from),
                to: state(t.to),
            });
        }
        // Published as a gauge so the live admin endpoint's `/healthz` can
        // read session health straight from the shared registry:
        // 0 = Connecting, 1 = Active, 2 = Degraded.
        ctx.obs_gauge(
            "supervisor.state",
            match sup.state() {
                SupervisorState::Connecting => 0.0,
                SupervisorState::Active => 1.0,
                SupervisorState::Degraded => 2.0,
            },
        );
    }

    /// Histogram bounds for a session's lifetime quACK count, recorded when
    /// the flow table reclaims it.
    const FLOW_QUACKS_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

    /// Publishes a flow table's counters-since-last-flush and its current
    /// occupancy gauge.
    pub(crate) fn flow_table<S>(ctx: &mut Context, table: &mut crate::flows::FlowTable<S>) {
        if let Some(d) = table.take_stats() {
            ctx.obs_add("flowtable.created", d.created);
            ctx.obs_add("flowtable.evicted.idle", d.evicted_idle);
            ctx.obs_add("flowtable.evicted.capacity", d.evicted_capacity);
            ctx.obs_add("flowtable.collisions", d.shard_collisions);
        }
        ctx.obs_gauge("flowtable.occupancy", table.len() as f64);
    }

    /// A per-flow session was reclaimed after emitting `quacks` quACKs.
    /// Eviction feeds the flow's scoreboard row: a repeatedly reclaimed flow
    /// is fighting the table for capacity.
    pub(crate) fn flow_evicted(ctx: &mut Context, flow: u32, quacks: u64) {
        ctx.obs_observe("flowtable.flow_quacks", FLOW_QUACKS_BOUNDS, quacks);
        ctx.obs_flow_health(flow, HealthDim::Eviction);
    }

    /// Publishes a fold buffer's batch-path counters since the last flush
    /// (batches handed to `insert_batch`, identifiers folded, identifiers
    /// dropped because their flow was evicted mid-buffer).
    pub(crate) fn fold_flush(ctx: &mut Context, folds: &mut crate::flows::FoldBuffer) {
        if let Some(d) = folds.take_stats() {
            ctx.obs_add("flowtable.fold.batches", d.batches);
            ctx.obs_add("flowtable.fold.ids", d.ids);
            ctx.obs_add("flowtable.fold.stale", d.stale);
        }
    }

    /// A proxy folded data packet `(flow, seq)` into its quACK sketch
    /// (flight-recorder twin of [`observed`], carrying packet identity).
    pub(crate) fn quack_fold(ctx: &mut Context, flow: u32, seq: u64) {
        let node = ctx.node_id().0 as u32;
        ctx.obs_event(Event::QuackFold { node, flow, seq });
    }

    /// A quACK decode newly reported `(flow, seq)` missing on the proxied
    /// segment.
    pub(crate) fn decode_missing(ctx: &mut Context, flow: u32, seq: u64) {
        ctx.obs_inc("lifecycle.decode_missing");
        let node = ctx.node_id().0 as u32;
        ctx.obs_event(Event::DecodeMissing { node, flow, seq });
    }

    /// A sender-side proxy retransmitted buffered packet `(flow, seq)`.
    pub(crate) fn proxy_retx(ctx: &mut Context, flow: u32, seq: u64) {
        let node = ctx.node_id().0 as u32;
        ctx.obs_event(Event::ProxyRetx { node, flow, seq });
        ctx.obs_flow_health(flow, HealthDim::ProxyRetx);
    }

    /// Mirrors a wrapped transport core's loss/recovery events into the
    /// flight recorder (see
    /// [`sidecar_netsim::transport::emit_sender_lifecycle`]).
    pub(crate) fn transport_lifecycle(
        ctx: &mut Context,
        core: &mut sidecar_netsim::transport::SenderCore,
    ) {
        sidecar_netsim::transport::emit_sender_lifecycle(core, ctx);
    }

    /// An authenticated control channel accepted an inbound datagram.
    pub(crate) fn auth_accept(ctx: &mut Context) {
        ctx.obs_inc("auth.accepted");
    }

    /// An authenticated control channel rejected an inbound datagram:
    /// per-kind counter plus an attributable trace event.
    pub(crate) fn auth_reject(ctx: &mut Context, err: &crate::auth::AuthError) {
        use crate::auth::AuthError;
        use sidecar_obs::AuthRejectKind;
        let (counter, kind) = match err {
            AuthError::NotAuthenticated(_) => (
                "auth.rejected.unauthenticated",
                AuthRejectKind::Unauthenticated,
            ),
            AuthError::Truncated => ("auth.rejected.truncated", AuthRejectKind::Truncated),
            AuthError::UnknownKey(_) => ("auth.rejected.unknown_key", AuthRejectKind::UnknownKey),
            AuthError::BadMac => ("auth.rejected.bad_mac", AuthRejectKind::BadMac),
            AuthError::Replayed => ("auth.rejected.replayed", AuthRejectKind::Replayed),
            AuthError::Stale => ("auth.rejected.stale", AuthRejectKind::Stale),
            AuthError::Malformed(_) => ("auth.rejected.malformed", AuthRejectKind::Malformed),
        };
        ctx.obs_inc(counter);
        let node = ctx.node_id().0 as u32;
        ctx.obs_event(Event::AuthReject { node, kind });
        // Scoreboard attribution: a datagram that failed authentication
        // cannot be trusted to name its flow (the flow field is exactly what
        // a forger controls), so every auth reject lands on the sentinel
        // flow-0 row rather than smearing forged ids across the table.
        ctx.obs_flow_health(0, HealthDim::AuthReject);
    }
}

/// No-op twins of the observability taps (obs feature disabled).
#[cfg(not(feature = "obs"))]
pub(crate) mod obs {
    use crate::endpoint::{ProcessError, QuackReport};
    use crate::supervise::Supervisor;
    use sidecar_netsim::node::Context;

    #[inline(always)]
    pub(crate) fn observed(_ctx: &mut Context) {}

    #[inline(always)]
    pub(crate) fn quack_emitted(
        _ctx: &mut Context,
        _epoch: u32,
        _count: u32,
        _fill: usize,
        _bytes: u32,
    ) {
    }

    #[inline(always)]
    pub(crate) fn quack_outcome(
        _ctx: &mut Context,
        _flow: u32,
        _result: &Result<QuackReport, ProcessError>,
    ) {
    }

    #[inline(always)]
    pub(crate) fn handshake(_ctx: &mut Context, _accepted: bool) {}

    #[inline(always)]
    pub(crate) fn sup_flush(_ctx: &mut Context, _sup: &mut Supervisor) {}

    #[inline(always)]
    pub(crate) fn flow_table<S>(_ctx: &mut Context, _table: &mut crate::flows::FlowTable<S>) {}

    #[inline(always)]
    pub(crate) fn flow_evicted(_ctx: &mut Context, _flow: u32, _quacks: u64) {}

    pub(crate) fn fold_flush(_ctx: &mut Context, _folds: &mut crate::flows::FoldBuffer) {}

    #[inline(always)]
    pub(crate) fn quack_fold(_ctx: &mut Context, _flow: u32, _seq: u64) {}

    #[inline(always)]
    pub(crate) fn decode_missing(_ctx: &mut Context, _flow: u32, _seq: u64) {}

    #[inline(always)]
    pub(crate) fn proxy_retx(_ctx: &mut Context, _flow: u32, _seq: u64) {}

    #[inline(always)]
    pub(crate) fn transport_lifecycle(
        _ctx: &mut Context,
        _core: &mut sidecar_netsim::transport::SenderCore,
    ) {
    }

    #[inline(always)]
    pub(crate) fn auth_accept(_ctx: &mut Context) {}

    #[inline(always)]
    pub(crate) fn auth_reject(_ctx: &mut Context, _err: &crate::auth::AuthError) {}
}

/// Deterministic post-restart epoch: a rebooted producer lost its epoch
/// counter along with everything else, so it derives a fresh one from the
/// clock and announces it via `Reset`. Time-derived epochs are huge
/// compared to the small consumer-bumped ones, so a restart is effectively
/// always a visible epoch change (and even a freak collision only costs
/// one consumer-driven reset round).
pub(crate) fn restart_epoch(now: SimTime) -> u32 {
    ((now.as_nanos() >> 10) as u32) | 1
}

/// Metrics common to all protocol scenarios.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioReport {
    /// Flow completion time, if the flow finished.
    pub completion: Option<SimTime>,
    /// Application goodput in bits/s over the completed flow.
    pub goodput_bps: Option<f64>,
    /// Packets transmitted by the server (including retransmissions).
    pub server_sent: u64,
    /// End-to-end retransmissions by the server.
    pub server_retransmissions: u64,
    /// ACK packets sent by the client.
    pub client_acks: u64,
    /// Sidecar datagrams (quACKs + control) transmitted.
    pub sidecar_messages: u64,
    /// Sidecar bytes transmitted.
    pub sidecar_bytes: u64,
    /// In-network retransmissions performed by proxies (retx protocol).
    pub proxy_retransmissions: u64,
    /// Supervisor transitions into degraded (baseline fallback) mode,
    /// summed across the run's supervised consumers.
    pub degradations: u64,
    /// Supervisor recoveries out of degraded mode.
    pub recoveries: u64,
    /// Snapshot of the run's world metrics registry (simulator drop/fault
    /// counters plus the sidecar taps above). Deterministic for a given
    /// `(scenario, seed)`; empty on baseline runs.
    #[cfg(feature = "obs")]
    pub metrics: sidecar_obs::MetricsSnapshot,
    /// The run's flight-recorder event ring (lifecycle + protocol events),
    /// snapshotted at quiescence. Deterministic for a given
    /// `(scenario, seed)`; empty on baseline runs.
    #[cfg(feature = "obs")]
    pub trace: sidecar_obs::EventTrace,
    /// Windowed metrics time-series, sampled on the sim clock when the
    /// scenario sets a sampling interval (e.g.
    /// [`RetxScenario::sample_interval`](crate::protocols::retx::RetxScenario));
    /// empty otherwise. Deterministic for a given `(scenario, seed)`.
    #[cfg(feature = "obs")]
    pub timeseries: sidecar_obs::TimeSeries,
    /// Final per-flow health ranking (top [`SCOREBOARD_TOP_K`] rows) from
    /// the world's scoreboard; empty on baseline runs.
    #[cfg(feature = "obs")]
    pub scoreboard: sidecar_obs::ScoreboardSnapshot,
}

/// How many scoreboard rows scenario reports retain (the full table keeps
/// every flow; reports carry only the unhealthiest ranks).
#[cfg(feature = "obs")]
pub const SCOREBOARD_TOP_K: usize = 16;

impl ScenarioReport {
    /// Completion time in seconds (∞ if the flow never finished —
    /// convenient for table printing).
    pub fn completion_secs(&self) -> f64 {
        self.completion.map_or(f64::INFINITY, |t| t.as_secs_f64())
    }
}

/// A role-based fault script for protocol scenarios.
///
/// Scenarios name their nodes by role (proxy, path endpoints); concrete
/// [`NodeId`]s only exist once a `World` is built, so the script is lowered
/// into a [`FaultPlan`] per run via [`FaultScript::lower`]. The same script
/// drives both the sidecar run and its baseline twin, keeping faulted
/// comparisons apples-to-apples: identical crash windows, blackouts, and
/// control-channel weather.
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    /// Seed for fault-injection randomness (corruption bit picks),
    /// independent of the world seed.
    pub fault_seed: u64,
    /// Crash the stateful proxy at `.0`, restart it at `.1` (volatile
    /// sidecar state is lost; see `Node::on_restart`).
    pub proxy_crash: Option<(SimTime, SimTime)>,
    /// Crash the proxy at this time and never restart it.
    pub proxy_kill: Option<SimTime>,
    /// Black out every link between the scenario's designated path pair.
    pub path_blackout: Option<(SimTime, SimTime)>,
    /// Drop all sidecar control datagrams (quACKs included) in the window.
    pub drop_control: Option<(SimTime, SimTime)>,
    /// Duplicate sidecar control datagrams in the window.
    pub duplicate_control: Option<(SimTime, SimTime)>,
    /// Delay sidecar control datagrams by `.0` in the window `.1..$.2`.
    pub delay_control: Option<(SimDuration, SimTime, SimTime)>,
    /// Flip up to `.0` random bits of each sidecar payload in the window.
    pub corrupt_control: Option<(u32, SimTime, SimTime)>,
    /// Active adversary: inject a well-formed, wrong-content forged quACK
    /// alongside every sidecar datagram in the window. The forgery parses
    /// cleanly at an unauthenticated receiver (where its bogus epoch then
    /// pollutes the session); an authenticated receiver rejects it outright.
    pub forge_control: Option<(SimTime, SimTime)>,
    /// Active adversary: replay each captured sidecar datagram `.0` times,
    /// each copy an extra `.1` late, in the window `.2..$.3`.
    pub replay_control: Option<(u32, SimDuration, SimTime, SimTime)>,
    /// Active adversary: deliver a copy with up to `.0` flipped bits next
    /// to every sidecar datagram in the window `.1..$.2` (original
    /// untouched).
    pub tamper_control: Option<(u32, SimTime, SimTime)>,
    /// Stateful firewall: control flows idle longer than `.0` lose their
    /// next datagram during the window `.1..$.2`.
    pub firewall_idle: Option<(SimDuration, SimTime, SimTime)>,
}

impl FaultScript {
    /// Whether the script injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.proxy_crash.is_none()
            && self.proxy_kill.is_none()
            && self.path_blackout.is_none()
            && self.drop_control.is_none()
            && self.duplicate_control.is_none()
            && self.delay_control.is_none()
            && self.corrupt_control.is_none()
            && self.forge_control.is_none()
            && self.replay_control.is_none()
            && self.tamper_control.is_none()
            && self.firewall_idle.is_none()
    }

    /// Lowers the script onto a built topology: `proxy` receives the
    /// crash/kill faults, `path` the blackout.
    pub fn lower(&self, proxy: NodeId, path: (NodeId, NodeId)) -> FaultPlan {
        let mut plan = FaultPlan::new(self.fault_seed);
        if let Some((from, until)) = self.proxy_crash {
            plan = plan.crash_restart(proxy, from, until);
        }
        if let Some(at) = self.proxy_kill {
            plan = plan.kill(proxy, at);
        }
        if let Some((from, until)) = self.path_blackout {
            plan = plan.blackout_between(path.0, path.1, from, until);
        }
        if let Some((from, until)) = self.drop_control {
            plan = plan.drop_control(from, until);
        }
        if let Some((from, until)) = self.duplicate_control {
            plan = plan.duplicate_control(from, until);
        }
        if let Some((extra, from, until)) = self.delay_control {
            plan = plan.delay_control(extra, from, until);
        }
        if let Some((max_flips, from, until)) = self.corrupt_control {
            plan = plan.corrupt_control(max_flips, from, until);
        }
        if let Some((from, until)) = self.forge_control {
            let (proto, body) = Self::forged_quack().encode_for_flow(0);
            plan = plan.forge_control(proto, body, from, until);
        }
        if let Some((copies, delay, from, until)) = self.replay_control {
            plan = plan.replay_control(copies, delay, from, until);
        }
        if let Some((max_flips, from, until)) = self.tamper_control {
            plan = plan.tamper_control(max_flips, from, until);
        }
        if let Some((idle, from, until)) = self.firewall_idle {
            plan = plan.firewall_control(idle, from, until);
        }
        plan
    }

    /// The adversary's forgery: a syntactically valid quACK with
    /// attacker-chosen content. An unauthenticated receiver decodes it
    /// cleanly and only notices the bogus epoch downstream; an
    /// authenticated receiver never even parses the body.
    pub fn forged_quack() -> SidecarMessage {
        SidecarMessage::Quack {
            epoch: 0xDEAD_BEEF,
            bytes: vec![0x5A; 82],
        }
    }
}
