//! Session supervision: liveness, handshake retry, and graceful
//! degradation for quACK consumers.
//!
//! The paper's deployment story depends on sidecars being *optional*:
//! "hosts can take advantage of them when they are available, while
//! remaining completely functional when they are not" (§1). This module
//! supplies the small state machine that makes a consumer honour that
//! contract when the sidecar path breaks mid-flow — proxy crash, control
//! blackout, or a corrupted quACK stream:
//!
//! ```text
//!            hello acked / quACK ok
//! Connecting ───────────────────────► Active
//!     │                                 │
//!     │ liveness timeout                │ K consecutive hard errors,
//!     ▼                                 ▼ or liveness timeout
//! Degraded ◄───────────────────────── Degraded
//!     │
//!     │ hello retry (capped exp. backoff) answered by producer Reset
//!     ▼
//!  Active (recovered — sidecar re-enabled at the producer's epoch)
//! ```
//!
//! The supervisor is sans-IO like everything else in this workspace: it
//! never sends packets itself. Callers ask [`Supervisor::poll`] what to do
//! (send a `Hello`? arm which deadline?) and report observations back
//! ([`Supervisor::on_feedback_ok`], [`Supervisor::on_quack_error`],
//! [`Supervisor::on_handshake_ack`]). While degraded, the protocol node is
//! expected to behave exactly like its no-sidecar baseline; the hello
//! retries are the only sidecar traffic that continues.

use crate::config::SupervisionConfig;
use crate::endpoint::ProcessError;
use sidecar_netsim::time::SimTime;
use std::collections::VecDeque;

/// Where the supervised session currently stands.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SupervisorState {
    /// Handshake in flight; sidecar processing runs optimistically so a
    /// healthy path loses nothing to connection setup.
    Connecting,
    /// The producer has answered (handshake ack or a decodable quACK);
    /// liveness is being monitored.
    Active,
    /// The sidecar path is considered broken; the protocol has fallen back
    /// to its end-to-end baseline and only hello retries continue.
    Degraded,
}

/// Counters exposed for tests and experiment reports.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// `Hello` messages the caller was told to send.
    pub hellos_sent: u64,
    /// Transitions into [`SupervisorState::Degraded`].
    pub degradations: u64,
    /// Transitions out of degraded back to active.
    pub recoveries: u64,
    /// Hard errors observed (stale quACKs excluded).
    pub errors_observed: u64,
}

/// One recorded edge of the supervision state machine.
///
/// The supervisor keeps a bounded log of these (see
/// [`Supervisor::transitions`]); protocols drain it into the world's event
/// trace, and property tests assert the sequence only ever walks legal
/// edges.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// When the edge was taken.
    pub at: SimTime,
    /// State before.
    pub from: SupervisorState,
    /// State after.
    pub to: SupervisorState,
}

/// Bound on the undrained transition log: callers that never drain (obs-off
/// builds) keep at most this many entries.
pub const TRANSITION_LOG_CAP: usize = 128;

/// What [`Supervisor::poll`] asks the caller to do.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// Send a `Hello` (re)handshake now.
    pub send_hello: bool,
    /// The session degraded during *this* poll; apply baseline fallback.
    pub degraded_now: bool,
    /// When to poll again (arm a timer here). Always in the future.
    pub next_deadline: Option<SimTime>,
}

/// Supervision state machine for one quACK-consuming session.
#[derive(Clone, Debug)]
pub struct Supervisor {
    cfg: SupervisionConfig,
    state: SupervisorState,
    /// Current hello retry period (doubles up to the cap).
    backoff: sidecar_netsim::time::SimDuration,
    /// Earliest time the next hello may go out.
    next_hello: SimTime,
    consecutive_errors: u32,
    /// Last successful quACK / handshake ack (or supervisor creation).
    last_feedback: SimTime,
    /// Packets sent since the last feedback — liveness only applies when
    /// feedback is actually owed.
    sends_since_feedback: u64,
    /// Undrained state-machine edges, oldest first (bounded).
    transitions: VecDeque<Transition>,
    /// Counters for tests and reports.
    pub stats: SupervisorStats,
}

impl Supervisor {
    /// Creates a supervisor in [`SupervisorState::Connecting`]; the first
    /// [`poll`](Self::poll) requests an immediate `Hello`.
    pub fn new(cfg: SupervisionConfig) -> Self {
        assert!(cfg.degrade_after >= 1, "degrade_after must be at least 1");
        Supervisor {
            cfg,
            state: SupervisorState::Connecting,
            backoff: cfg.hello_timeout,
            next_hello: SimTime::ZERO,
            consecutive_errors: 0,
            last_feedback: SimTime::ZERO,
            sends_since_feedback: 0,
            transitions: VecDeque::new(),
            stats: SupervisorStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// Undrained state-machine edges, oldest first. The log is bounded: if
    /// nobody drains it, only the most recent [`TRANSITION_LOG_CAP`] edges
    /// are retained (oldest evicted first).
    pub fn transitions(&self) -> impl Iterator<Item = &Transition> {
        self.transitions.iter()
    }

    /// Drains the recorded edges (oldest first), leaving the log empty.
    /// Protocols call this after driving the supervisor to forward new
    /// transitions into the world's event trace.
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        self.transitions.drain(..).collect()
    }

    fn record_transition(&mut self, at: SimTime, from: SupervisorState, to: SupervisorState) {
        if self.transitions.len() >= TRANSITION_LOG_CAP {
            self.transitions.pop_front();
        }
        self.transitions.push_back(Transition { at, from, to });
    }

    /// Whether sidecar processing should run (anything but degraded).
    pub fn enabled(&self) -> bool {
        self.state != SupervisorState::Degraded
    }

    /// Whether the session has fallen back to the end-to-end baseline.
    pub fn is_degraded(&self) -> bool {
        self.state == SupervisorState::Degraded
    }

    /// A packet whose delivery the sidecar is expected to confirm was sent.
    pub fn note_send(&mut self, _now: SimTime) {
        self.sends_since_feedback += 1;
    }

    /// Drives timeouts. `expecting_feedback` tells the supervisor whether
    /// the caller is still owed confirmations (e.g. the flow is incomplete
    /// or packets sit in a retransmit buffer) — liveness never trips on an
    /// idle session.
    pub fn poll(&mut self, now: SimTime, expecting_feedback: bool) -> PollOutcome {
        let mut out = PollOutcome::default();
        // Liveness first, so a just-detected death emits its hello below.
        if self.state != SupervisorState::Degraded
            && expecting_feedback
            && self.sends_since_feedback > 0
            && now >= self.last_feedback + self.cfg.liveness_timeout
        {
            self.degrade(now);
            out.degraded_now = true;
        }
        match self.state {
            SupervisorState::Connecting | SupervisorState::Degraded => {
                if now >= self.next_hello {
                    out.send_hello = true;
                    self.stats.hellos_sent += 1;
                    self.next_hello = now + self.backoff;
                    self.backoff = (self.backoff * 2).min(self.cfg.hello_backoff_cap);
                }
                out.next_deadline = Some(self.next_hello);
            }
            SupervisorState::Active => {
                let liveness = if expecting_feedback && self.sends_since_feedback > 0 {
                    self.last_feedback + self.cfg.liveness_timeout
                } else {
                    now + self.cfg.liveness_timeout
                };
                // Never hand back a deadline that already passed (an idle
                // session's last_feedback can be arbitrarily old).
                out.next_deadline = Some(if liveness > now {
                    liveness
                } else {
                    now + self.cfg.liveness_timeout
                });
            }
        }
        out
    }

    /// A quACK decoded and processed successfully. Returns `true` when this
    /// recovers a degraded session (callers re-enable sidecar behaviour).
    /// Real feedback is proof the channel works again, so it restores the
    /// full error budget and the fast hello cadence.
    pub fn on_feedback_ok(&mut self, now: SimTime) -> bool {
        self.consecutive_errors = 0;
        self.last_feedback = now;
        self.sends_since_feedback = 0;
        self.backoff = self.cfg.hello_timeout;
        self.activate(now)
    }

    /// The producer answered a `Hello` (or announced a post-restart epoch)
    /// with a `Reset`. Returns `true` when this recovers a degraded
    /// session.
    ///
    /// Recovery by handshake alone is *probational*: a lone decodable
    /// `Reset` can survive a channel that is still corrupting everything
    /// else, so a recovered session re-degrades on its very next hard error
    /// instead of paying the full budget again. The first clean quACK
    /// ([`on_feedback_ok`](Self::on_feedback_ok)) lifts the probation.
    pub fn on_handshake_ack(&mut self, now: SimTime) -> bool {
        self.last_feedback = now;
        self.sends_since_feedback = 0;
        let recovered = self.activate(now);
        if recovered {
            self.consecutive_errors = self.cfg.degrade_after - 1;
        } else {
            self.consecutive_errors = 0;
            self.backoff = self.cfg.hello_timeout;
        }
        recovered
    }

    /// A hard error from the quACK stream (undecodable sidecar message or
    /// a non-stale [`ProcessError`]). Returns `true` when the error budget
    /// is exhausted and the session degrades *now* — the caller should
    /// apply its baseline fallback and then [`poll`](Self::poll) to emit
    /// the first recovery hello.
    pub fn note_error(&mut self, now: SimTime) -> bool {
        if self.state == SupervisorState::Degraded {
            return false;
        }
        self.stats.errors_observed += 1;
        self.consecutive_errors += 1;
        if self.consecutive_errors >= self.cfg.degrade_after {
            self.degrade(now);
            return true;
        }
        false
    }

    /// [`note_error`](Self::note_error) with the stale filter applied:
    /// stale quACKs are expected after resets (and on quiet flow tails,
    /// where unchanged sketches re-arrive), so they never count against the
    /// session — but they do prove the control channel is alive, so they
    /// refresh the liveness clock.
    pub fn on_quack_error(&mut self, err: &ProcessError, now: SimTime) -> bool {
        if matches!(err, ProcessError::Stale) {
            self.last_feedback = now;
            return false;
        }
        self.note_error(now)
    }

    fn degrade(&mut self, now: SimTime) {
        self.record_transition(now, self.state, SupervisorState::Degraded);
        self.state = SupervisorState::Degraded;
        self.stats.degradations += 1;
        self.consecutive_errors = 0;
        // The backoff is deliberately NOT reset: a session flapping between
        // degraded and probational-active keeps escalating its hello cadence
        // toward the cap, bounding how often a broken channel gets retried.
        self.next_hello = now; // first recovery hello goes out immediately
    }

    fn activate(&mut self, now: SimTime) -> bool {
        match self.state {
            SupervisorState::Degraded => {
                self.record_transition(now, self.state, SupervisorState::Active);
                self.state = SupervisorState::Active;
                self.stats.recoveries += 1;
                true
            }
            SupervisorState::Connecting => {
                self.record_transition(now, self.state, SupervisorState::Active);
                self.state = SupervisorState::Active;
                false
            }
            SupervisorState::Active => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_netsim::time::SimDuration;

    fn cfg() -> SupervisionConfig {
        SupervisionConfig {
            hello_timeout: SimDuration::from_millis(100),
            hello_backoff_cap: SimDuration::from_millis(400),
            liveness_timeout: SimDuration::from_millis(300),
            degrade_after: 3,
        }
    }

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    #[test]
    fn first_poll_sends_hello_and_backs_off_exponentially() {
        let mut s = Supervisor::new(cfg());
        assert_eq!(s.state(), SupervisorState::Connecting);
        let p = s.poll(ms(0), false);
        assert!(p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(100)));
        // Too early: no hello, same deadline.
        let p = s.poll(ms(50), false);
        assert!(!p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(100)));
        // Retries double the period: 100, 200, 400, then capped at 400.
        let p = s.poll(ms(100), false);
        assert!(p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(300)));
        let p = s.poll(ms(300), false);
        assert!(p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(700)));
        let p = s.poll(ms(700), false);
        assert!(p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(1100)));
        assert_eq!(s.stats.hellos_sent, 4);
    }

    #[test]
    fn handshake_ack_activates_and_stops_hellos() {
        let mut s = Supervisor::new(cfg());
        s.poll(ms(0), false);
        assert!(!s.on_handshake_ack(ms(20))); // Connecting→Active: no recovery
        assert_eq!(s.state(), SupervisorState::Active);
        let p = s.poll(ms(150), false);
        assert!(!p.send_hello);
        assert!(p.next_deadline.unwrap() > ms(150));
    }

    #[test]
    fn error_budget_degrades_after_k_hard_errors() {
        let mut s = Supervisor::new(cfg());
        s.on_feedback_ok(ms(10));
        assert!(!s.note_error(ms(20)));
        assert!(!s.note_error(ms(30)));
        assert!(s.note_error(ms(40)));
        assert!(s.is_degraded());
        assert_eq!(s.stats.degradations, 1);
        // First poll after degrading emits the recovery hello immediately.
        assert!(s.poll(ms(40), true).send_hello);
    }

    #[test]
    fn stale_quacks_never_count() {
        let mut s = Supervisor::new(cfg());
        s.on_feedback_ok(ms(10));
        for t in 0..20 {
            assert!(!s.on_quack_error(&ProcessError::Stale, ms(20 + t)));
        }
        assert!(!s.is_degraded());
        assert_eq!(s.stats.errors_observed, 0);
    }

    #[test]
    fn stale_quacks_refresh_liveness() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(10));
        s.note_send(ms(20));
        // Only stale quACKs arrive (quiet tail): channel is alive, so the
        // liveness clock must keep moving even though nothing decodes new.
        s.on_quack_error(&ProcessError::Stale, ms(900));
        assert!(!s.poll(ms(1_000), true).degraded_now);
        // But stale traffic alone cannot postpone liveness forever once the
        // producer actually stops talking.
        assert!(s.poll(ms(1_500), true).degraded_now);
    }

    #[test]
    fn successes_reset_the_error_budget() {
        let mut s = Supervisor::new(cfg());
        s.on_feedback_ok(ms(10));
        s.note_error(ms(20));
        s.note_error(ms(30));
        s.on_feedback_ok(ms(40)); // budget refilled
        assert!(!s.note_error(ms(50)));
        assert!(!s.note_error(ms(60)));
        assert!(s.note_error(ms(70)));
    }

    #[test]
    fn liveness_timeout_degrades_only_when_feedback_is_owed() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(10));
        // Idle (nothing sent): never degrades no matter how long.
        let p = s.poll(ms(10_000), true);
        assert!(!p.degraded_now);
        // Sends outstanding but caller says no feedback expected: no trip.
        s.note_send(ms(10_000));
        assert!(!s.poll(ms(20_000), false).degraded_now);
        // Feedback owed and overdue: degrade and ask for a hello.
        let p = s.poll(ms(20_000), true);
        assert!(p.degraded_now);
        assert!(p.send_hello);
        assert!(s.is_degraded());
    }

    #[test]
    fn recovery_via_handshake_ack_counts() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(10));
        s.note_send(ms(20));
        assert!(s.poll(ms(1_000), true).degraded_now);
        assert!(s.on_handshake_ack(ms(1_200)));
        assert_eq!(s.state(), SupervisorState::Active);
        assert_eq!(s.stats.recoveries, 1);
        // Fresh feedback accounting after recovery.
        assert!(!s.poll(ms(1_250), true).degraded_now);
    }

    #[test]
    fn handshake_recovery_is_probational() {
        let mut s = Supervisor::new(cfg());
        s.on_feedback_ok(ms(10));
        s.note_error(ms(20));
        s.note_error(ms(30));
        assert!(s.note_error(ms(40)));
        assert!(s.on_handshake_ack(ms(50)));
        // A lone decodable Reset can survive a still-broken channel: one
        // more hard error re-degrades immediately, no fresh budget.
        assert!(s.note_error(ms(60)));
        assert_eq!(s.stats.degradations, 2);
        // A clean quACK lifts the probation and refills the budget.
        assert!(s.on_handshake_ack(ms(70)));
        s.on_feedback_ok(ms(80));
        assert!(!s.note_error(ms(90)));
        assert!(!s.note_error(ms(100)));
        assert!(s.note_error(ms(110)));
    }

    #[test]
    fn transition_log_records_edges_in_order() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(10)); // Connecting → Active
        s.note_send(ms(20));
        assert!(s.poll(ms(1_000), true).degraded_now); // Active → Degraded
        assert!(s.on_handshake_ack(ms(1_200))); // Degraded → Active
        let log = s.take_transitions();
        let edges: Vec<(SupervisorState, SupervisorState)> =
            log.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            edges,
            vec![
                (SupervisorState::Connecting, SupervisorState::Active),
                (SupervisorState::Active, SupervisorState::Degraded),
                (SupervisorState::Degraded, SupervisorState::Active),
            ]
        );
        assert_eq!(log[1].at, ms(1_000));
        // Drained: the log starts over.
        assert!(s.take_transitions().is_empty());
        assert_eq!(s.transitions().count(), 0);
    }

    #[test]
    fn transition_log_is_bounded_when_never_drained() {
        let mut s = Supervisor::new(cfg());
        s.on_feedback_ok(ms(0));
        for i in 0..300u64 {
            while !s.is_degraded() {
                s.note_error(ms(1 + i));
            }
            s.on_handshake_ack(ms(1 + i));
        }
        assert_eq!(s.transitions().count(), 128);
        // The retained suffix is the most recent edges and stays contiguous.
        let log: Vec<_> = s.transitions().copied().collect();
        for pair in log.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
    }

    #[test]
    fn hello_backoff_persists_across_flaps() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(0));
        s.note_send(ms(1));
        // First degrade: hello now, next retry 100ms out (backoff → 200).
        let p = s.poll(ms(1_000), true);
        assert!(p.degraded_now && p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(1_100)));
        s.on_handshake_ack(ms(1_010)); // probational recovery
        s.note_send(ms(1_011));
        // Second flap: the escalated backoff carries over (200ms, → 400).
        let p = s.poll(ms(2_000), true);
        assert!(p.degraded_now && p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(2_200)));
        // Clean feedback restores the fast cadence for the next incident.
        s.on_handshake_ack(ms(2_300));
        s.on_feedback_ok(ms(2_310));
        s.note_send(ms(2_311));
        let p = s.poll(ms(3_000), true);
        assert!(p.degraded_now && p.send_hello);
        assert_eq!(p.next_deadline, Some(ms(3_100)));
    }

    #[test]
    fn active_deadlines_are_always_in_the_future() {
        let mut s = Supervisor::new(cfg());
        s.on_handshake_ack(ms(10));
        // Long-idle session: the stale last_feedback must not produce a
        // deadline in the past (which would spin the timer loop).
        let p = s.poll(ms(50_000), false);
        assert!(p.next_deadline.unwrap() > ms(50_000));
    }
}
