//! Sidecar protocol parameters (paper §3.2).
//!
//! "The receiver may configure several protocol parameters: (1) a threshold
//! number of missing packets t, (2) the number of bits b used in the
//! identifier, (3) the communication frequency of quACKs."

use sidecar_netsim::time::SimDuration;
use sidecar_quack::wire::WireFormat;

/// When the quACK producer emits (paper §4.3 discusses the choice per
/// protocol).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuackFrequency {
    /// Every fixed interval (congestion-control division: "once per RTT").
    Interval(SimDuration),
    /// Every `n` received packets (ACK reduction: "every n = 32 packets,
    /// similar to TCP which ACKs every other packet").
    EveryPackets(u32),
    /// Dynamically tuned by the consumer via sidecar control messages,
    /// starting from the contained interval (in-network retransmission:
    /// "the interval … should ideally depend on the loss ratio").
    Adaptive(SimDuration),
}

/// Full parameter set negotiated between two sidecars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SidecarConfig {
    /// Threshold `t`: maximum decodable missing packets per quACK window.
    pub threshold: usize,
    /// Identifier width `b` in bits.
    pub id_bits: u32,
    /// Count width `c` in bits (0 = count omitted, supplied out of band).
    pub count_bits: u32,
    /// Emission schedule.
    pub frequency: QuackFrequency,
    /// Grace period before a decoded-missing packet is declared lost
    /// (§3.3 "Re-ordered packets": "buffer missing packets for a period of
    /// time before actually deleting them").
    pub reorder_grace: SimDuration,
}

impl SidecarConfig {
    /// The paper's headline configuration: `t = 20`, `b = 32`, `c = 16`,
    /// one quACK per 60 ms RTT (§4.1, §4.3).
    pub fn paper_default() -> Self {
        SidecarConfig {
            threshold: 20,
            id_bits: 32,
            count_bits: 16,
            frequency: QuackFrequency::Interval(SimDuration::from_millis(60)),
            reorder_grace: SimDuration::from_millis(10),
        }
    }

    /// The wire format implied by these parameters.
    pub fn wire_format(&self) -> WireFormat {
        WireFormat {
            id_bits: self.id_bits,
            threshold: self.threshold,
            count_bits: self.count_bits,
        }
    }

    /// Size of one encoded quACK in bytes.
    pub fn quack_bytes(&self) -> usize {
        self.wire_format().encoded_bytes()
    }
}

impl Default for SidecarConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Timeouts and thresholds for the [`crate::supervise::Supervisor`] that
/// wraps a quACK-consuming session.
///
/// PEP assistance is opportunistic: "hosts can take advantage of them when
/// they are available, while remaining completely functional when they are
/// not" (paper §1). These knobs decide how quickly a consumer notices the
/// sidecar path is gone and falls back to end-to-end behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Initial `Hello` retry period while connecting or degraded.
    pub hello_timeout: SimDuration,
    /// Cap for the exponential `Hello` retry backoff.
    pub hello_backoff_cap: SimDuration,
    /// While packets are outstanding, a quACK (or handshake ack) must
    /// arrive within this span or the session is declared dead.
    pub liveness_timeout: SimDuration,
    /// Consecutive hard quACK errors (wrong epoch, malformed, undecodable)
    /// before degrading. Stale quACKs never count.
    pub degrade_after: u32,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            hello_timeout: SimDuration::from_millis(100),
            hello_backoff_cap: SimDuration::from_millis(1_600),
            liveness_timeout: SimDuration::from_millis(300),
            degrade_after: 3,
        }
    }
}

/// Keying material for the authenticated control channel
/// ([`crate::auth::ChannelAuth`], DESIGN.md §12).
///
/// Every endpoint of one deployment shares `psk` (the pre-shared secret)
/// and `key_id` (its generation number); each *sender* additionally owns a
/// run-unique `nonce` naming its transmit session. Scenarios assign fixed,
/// distinct nonces per node so runs stay deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthConfig {
    /// Pre-shared secret shared by all honest endpoints.
    pub psk: [u8; 32],
    /// Generation number of `psk`; receivers reject other key ids.
    pub key_id: u32,
    /// This sender's session nonce (must be nonzero and unique among the
    /// honest senders of one run).
    pub nonce: u64,
}

impl AuthConfig {
    /// Expands a 64-bit secret into the 32-byte PSK (convenience for
    /// scenarios and benches; real deployments would provision the full
    /// 32 bytes out of band).
    pub fn from_secret(secret: u64, key_id: u32) -> Self {
        let mut psk = [0u8; 32];
        psk[..8].copy_from_slice(&secret.to_be_bytes());
        psk[8..16].copy_from_slice(&secret.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes());
        AuthConfig {
            psk,
            key_id,
            nonce: 1,
        }
    }

    /// Returns the same keying material under a different session nonce —
    /// how a scenario derives one config per node from one shared secret.
    pub fn with_nonce(mut self, nonce: u64) -> Self {
        assert!(nonce != 0, "session nonce must be nonzero");
        self.nonce = nonce;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_82_bytes() {
        let cfg = SidecarConfig::paper_default();
        assert_eq!(cfg.quack_bytes(), 82);
        assert_eq!(cfg.threshold, 20);
        assert_eq!(cfg.id_bits, 32);
    }

    #[test]
    fn count_omission_shrinks_quack() {
        // §4.3 (ACK reduction): "to reduce the quACK size, we can omit c".
        let cfg = SidecarConfig {
            count_bits: 0,
            ..SidecarConfig::paper_default()
        };
        assert_eq!(cfg.quack_bytes(), 80);
    }
}
