//! Sidecar endpoint state machines: the quACK producer and consumer.
//!
//! A **producer** sits where packets are received (client host or a proxy's
//! ingress) and folds every observed identifier into its power sums,
//! emitting a quACK on the negotiated schedule. A **consumer** sits where
//! packets are sent (server host or a proxy's egress), mirrors the sums
//! over everything it sent, and decodes arriving quACKs into per-packet
//! fates.
//!
//! The consumer implements all of the paper's §3.3 practical
//! considerations:
//!
//! * **Resetting the threshold** — decoded-missing identifiers are removed
//!   from the mirror sums and log once confirmed, so `t` bounds the missing
//!   packets *since the last quACK*, not since connection start.
//! * **Re-ordered packets** — missing packets sit in a grace-period limbo
//!   before being declared lost; a later quACK that shows them received
//!   resurrects them.
//! * **In-flight packets** — when the sender has logged `n'` packets but
//!   the quACK covers `n` with `n' − n > t`, the newest `n' − n − t` log
//!   entries are subtracted out and treated as in transit, and any trailing
//!   run of recently-sent "missing" entries is likewise excused.
//! * **Exceeding the threshold** — `m > t` surfaces as an error; the
//!   protocols reset both endpoints to a new epoch.
//! * **Dropped quACKs** — power sums are cumulative, so a lost quACK merely
//!   delays information; stale (reordered) quACKs are detected via the
//!   wrap-aware count and skipped.

use crate::config::{QuackFrequency, SidecarConfig};
use crate::messages::SidecarMessage;
use sidecar_galois::{Field, NewtonWorkspace, LANES};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_quack::{DecodeError, PowerSumQuack};
use std::collections::VecDeque;

/// The quACK-producing side (receiver of the underlying packets).
///
/// Observed identifiers are buffered in a small burst buffer and folded
/// into the power sums [`LANES`] at a time via
/// `PowerSumQuack::insert_batch`, so back-to-back forwarded packets (the
/// netsim proxies call [`observe`](Self::observe) once per data packet)
/// amortize field setup and hit the lane-batched hot path. The buffer is
/// transparent: [`count`](Self::count) includes buffered identifiers and
/// [`emit`](Self::emit)/[`reset`](Self::reset) flush it, so no observed
/// packet is ever missing from an emitted quACK.
#[derive(Clone, Debug)]
pub struct QuackProducer<F: Field> {
    cfg: SidecarConfig,
    quack: PowerSumQuack<F>,
    /// Identifiers observed but not yet folded into `quack` (≤ [`LANES`]).
    burst: Vec<u64>,
    epoch: u32,
    /// Packets observed since the last emission (for `EveryPackets`).
    since_emit: u32,
    /// Current emission interval (for `Interval`/`Adaptive`).
    interval: Option<SimDuration>,
    /// Total quACKs emitted.
    pub emitted: u64,
}

impl<F: Field> QuackProducer<F> {
    /// Creates a producer.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.id_bits` disagrees with the field width `F::BITS`.
    pub fn new(cfg: SidecarConfig) -> Self {
        assert_eq!(cfg.id_bits, F::BITS, "config/field width mismatch");
        let interval = match cfg.frequency {
            QuackFrequency::Interval(d) | QuackFrequency::Adaptive(d) => Some(d),
            QuackFrequency::EveryPackets(_) => None,
        };
        QuackProducer {
            quack: PowerSumQuack::new(cfg.threshold),
            burst: Vec::with_capacity(LANES),
            cfg,
            epoch: 0,
            since_emit: 0,
            interval,
            emitted: 0,
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total identifiers observed in this epoch (including any still in the
    /// burst buffer).
    pub fn count(&self) -> u32 {
        self.quack.count().wrapping_add(self.burst.len() as u32)
    }

    /// Identifiers currently sitting in the burst buffer, not yet folded
    /// into the power sums. Read just before [`emit`](Self::emit) it tells
    /// how full the lane batch was when the quACK forced a flush.
    pub fn burst_fill(&self) -> usize {
        self.burst.len()
    }

    /// Folds the burst buffer into the power sums.
    fn flush(&mut self) {
        if !self.burst.is_empty() {
            self.quack.insert_batch(&self.burst);
            self.burst.clear();
        }
    }

    /// Observes one identifier; returns `true` if the packet-count schedule
    /// says a quACK is due now.
    ///
    /// The identifier lands in the burst buffer and is folded into the sums
    /// in a lane-batched chunk once [`LANES`] observations accumulate (or
    /// at the next [`emit`](Self::emit), whichever comes first).
    pub fn observe(&mut self, id: u64) -> bool {
        self.burst.push(id);
        if self.burst.len() >= LANES {
            self.flush();
        }
        self.since_emit += 1;
        matches!(self.cfg.frequency, QuackFrequency::EveryPackets(n) if self.since_emit >= n)
    }

    /// Observes a burst of identifiers at once (e.g. a GRO/pacing-batch of
    /// forwarded packets); returns `true` if the packet-count schedule says
    /// a quACK is due now. Equivalent to calling [`observe`](Self::observe)
    /// per identifier, with one batched fold instead of per-packet buffer
    /// management.
    pub fn observe_batch(&mut self, ids: &[u64]) -> bool {
        self.flush();
        self.quack.insert_batch(ids);
        self.since_emit = self.since_emit.saturating_add(ids.len() as u32);
        matches!(self.cfg.frequency, QuackFrequency::EveryPackets(n) if self.since_emit >= n)
    }

    /// The emission interval, if the schedule is time-based.
    pub fn interval(&self) -> Option<SimDuration> {
        self.interval
    }

    /// Applies a consumer-requested interval change (only meaningful for
    /// [`QuackFrequency::Adaptive`]).
    pub fn set_interval(&mut self, interval: SimDuration) {
        if matches!(self.cfg.frequency, QuackFrequency::Adaptive(_)) {
            self.interval = Some(interval);
        }
    }

    /// Emits the current quACK as a sidecar message (flushing the burst
    /// buffer first, so the quACK covers every observed packet).
    pub fn emit(&mut self) -> SidecarMessage {
        self.flush();
        self.since_emit = 0;
        self.emitted += 1;
        SidecarMessage::Quack {
            epoch: self.epoch,
            bytes: self.cfg.wire_format().encode(&self.quack),
        }
    }

    /// Resets to a new epoch (threshold exceeded): sums, counters, and the
    /// burst buffer start over.
    pub fn reset(&mut self, epoch: u32) {
        self.quack = PowerSumQuack::new(self.cfg.threshold);
        self.burst.clear();
        self.epoch = epoch;
        self.since_emit = 0;
    }
}

/// One packet tracked by the consumer's log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The opaque identifier the producer will see.
    pub id: u64,
    /// Caller-supplied tag (packet number, buffer slot, …) echoed back in
    /// reports.
    pub tag: u64,
    /// When the packet was sent (drives the in-transit excuse).
    pub sent_at: SimTime,
    /// Grace deadline if this entry decoded missing; `None` otherwise.
    limbo_deadline: Option<SimTime>,
    /// Whether the entry's missing verdict came from a collision group.
    pub ambiguous: bool,
}

/// The outcome of processing one quACK.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuackReport {
    /// Entries confirmed received (dropped from the log).
    pub received: Vec<(u64, u64)>,
    /// Entries that just entered the missing-grace limbo `(id, tag)`.
    pub newly_missing: Vec<(u64, u64)>,
    /// Entries flagged ambiguous (collision groups), `(id, tag)` of every
    /// group member.
    pub indeterminate: Vec<(u64, u64)>,
    /// Log entries excused as in transit.
    pub in_transit: usize,
    /// The missing count `m` the difference encoded.
    pub missing_estimate: usize,
}

/// A packet whose loss is confirmed (grace expired).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfirmedLoss {
    /// Opaque identifier.
    pub id: u64,
    /// Caller tag.
    pub tag: u64,
    /// Whether the verdict came from an ambiguous collision group.
    pub ambiguous: bool,
}

/// Why a quACK could not be processed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessError {
    /// More packets missing than the threshold can decode; the endpoints
    /// must reset (§3.3).
    ThresholdExceeded {
        /// Implied missing count.
        missing: usize,
    },
    /// The quACK belongs to a different epoch.
    WrongEpoch {
        /// Epoch carried by the quACK.
        got: u32,
        /// Our current epoch.
        expected: u32,
    },
    /// The quACK is older than one already processed (reordered); skipped.
    Stale,
    /// The encoded bytes failed validation.
    Malformed,
    /// Count/power-sum inconsistency (full count wraparound, §3.2).
    CountInconsistent,
}

impl core::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProcessError::ThresholdExceeded { missing } => {
                write!(f, "{missing} missing packets exceed the quACK threshold")
            }
            ProcessError::WrongEpoch { got, expected } => {
                write!(f, "quACK epoch {got} != local epoch {expected}")
            }
            ProcessError::Stale => write!(f, "stale (reordered) quACK"),
            ProcessError::Malformed => write!(f, "malformed quACK bytes"),
            ProcessError::CountInconsistent => write!(f, "quACK count wrapped a full cycle"),
        }
    }
}

impl std::error::Error for ProcessError {}

/// Consumer statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsumerStats {
    /// QuACKs successfully processed.
    pub quacks_processed: u64,
    /// QuACKs skipped as stale.
    pub quacks_stale: u64,
    /// Packets confirmed received.
    pub confirmed_received: u64,
    /// Packets confirmed lost (grace expired).
    pub confirmed_lost: u64,
    /// Packets resurrected from limbo by a later quACK.
    pub resurrected: u64,
    /// Ambiguous (collision) verdicts encountered.
    pub ambiguous_verdicts: u64,
    /// Processing failures that demanded a reset.
    pub resets_needed: u64,
}

/// The quACK-consuming side (sender of the underlying packets).
pub struct QuackConsumer<F: Field> {
    cfg: SidecarConfig,
    mirror: PowerSumQuack<F>,
    log: VecDeque<LogEntry>,
    workspace: NewtonWorkspace<F>,
    epoch: u32,
    /// Highest receiver count processed (wrap-aware staleness filter),
    /// `None` before the first quACK of the epoch.
    last_count: Option<u32>,
    /// Entries sent within this window of "now" may be excused as
    /// in-transit.
    in_transit_window: SimDuration,
    /// Statistics.
    pub stats: ConsumerStats,
}

impl<F: Field> QuackConsumer<F> {
    /// Creates a consumer. `in_transit_window` should be roughly one
    /// segment RTT: packets younger than this are never declared missing
    /// from a trailing run (they may simply still be in flight).
    pub fn new(cfg: SidecarConfig, in_transit_window: SimDuration) -> Self {
        assert_eq!(cfg.id_bits, F::BITS, "config/field width mismatch");
        // The generic consumer derives the missing count from the wire
        // count; `c = 0` (out-of-band counts, §4.3 ACK reduction) requires
        // a caller that supplies the count itself and is not supported
        // here — the wrap-aware staleness check would reject everything.
        assert!(
            cfg.count_bits >= 1,
            "QuackConsumer requires an in-band count (count_bits >= 1)"
        );
        QuackConsumer {
            mirror: PowerSumQuack::new(cfg.threshold),
            log: VecDeque::new(),
            workspace: NewtonWorkspace::new(cfg.threshold),
            cfg,
            epoch: 0,
            last_count: None,
            in_transit_window,
            stats: ConsumerStats::default(),
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of unresolved log entries.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Records one sent packet.
    pub fn record_sent(&mut self, id: u64, tag: u64, now: SimTime) {
        self.mirror.insert(id);
        self.log.push_back(LogEntry {
            id,
            tag,
            sent_at: now,
            limbo_deadline: None,
            ambiguous: false,
        });
    }

    /// Records a burst of sent packets `(id, tag)` sharing one send time,
    /// equivalent to calling [`record_sent`](Self::record_sent) per packet
    /// but folding the mirror sums through the lane-batched hot path.
    pub fn record_sent_batch(&mut self, packets: &[(u64, u64)], now: SimTime) {
        let mut ids = [0u64; LANES];
        for chunk in packets.chunks(LANES) {
            for (slot, &(id, _)) in ids.iter_mut().zip(chunk) {
                *slot = id;
            }
            self.mirror.insert_batch(&ids[..chunk.len()]);
        }
        self.log.reserve(packets.len());
        for &(id, tag) in packets {
            self.log.push_back(LogEntry {
                id,
                tag,
                sent_at: now,
                limbo_deadline: None,
                ambiguous: false,
            });
        }
    }

    /// Masks a count difference to the configured `c` bits.
    fn mask_count(&self, diff: u32) -> u32 {
        match self.cfg.count_bits {
            0 => diff, // out-of-band counts are full width
            c if c >= 32 => diff,
            c => diff & ((1u32 << c) - 1),
        }
    }

    /// Wrap-aware "is `new` ahead of `old`" on `c`-bit counts.
    fn count_advanced(&self, old: u32, new: u32) -> bool {
        let c = self.cfg.count_bits.clamp(1, 32);
        let half = 1u32 << (c - 1);
        let fwd = self.mask_count(new.wrapping_sub(old));
        fwd != 0 && fwd < half
    }

    /// Processes one quACK (already unwrapped from its sidecar message).
    pub fn process_quack(
        &mut self,
        now: SimTime,
        epoch: u32,
        bytes: &[u8],
    ) -> Result<QuackReport, ProcessError> {
        if epoch != self.epoch {
            return Err(ProcessError::WrongEpoch {
                got: epoch,
                expected: self.epoch,
            });
        }
        let received: PowerSumQuack<F> = self
            .cfg
            .wire_format()
            .decode(bytes, None)
            .map_err(|_| ProcessError::Malformed)?;
        // Cumulative sums: a reordered (older) quACK carries a smaller
        // count. Skip it — the newer one already told us more.
        if let Some(last) = self.last_count {
            if !self.count_advanced(last, received.count()) && received.count() != last {
                self.stats.quacks_stale += 1;
                return Err(ProcessError::Stale);
            }
        }

        // Difference with the count masked to c bits (§3.2 wraparound).
        let raw_diff = self.mirror.difference(&received);
        let m_total = self.mask_count(raw_diff.count()) as usize;
        let mut diff = raw_diff.with_count(m_total as u32);

        // §3.3 in-flight truncation: treat the newest n' − n − t entries as
        // in transit by subtracting them from the difference.
        let mut candidates = self.log.len();
        if m_total > self.cfg.threshold {
            let excess = m_total - self.cfg.threshold;
            if excess > self.log.len() {
                // Even excusing every logged packet cannot bring m within
                // the threshold: the window is unrecoverable.
                self.stats.resets_needed += 1;
                return Err(ProcessError::ThresholdExceeded { missing: m_total });
            }
            candidates = self.log.len() - excess;
            for entry in self.log.iter().skip(candidates) {
                diff.remove(entry.id);
            }
            diff = diff.with_count((m_total - excess) as u32);
        }

        let log_ids: Vec<u64> = self.log.iter().take(candidates).map(|e| e.id).collect();
        let decoded = match diff.decode_with_log_and_workspace(&log_ids, &self.workspace) {
            Ok(d) => d,
            Err(DecodeError::ThresholdExceeded { missing, .. }) => {
                self.stats.resets_needed += 1;
                return Err(ProcessError::ThresholdExceeded { missing });
            }
            Err(DecodeError::CountInconsistent) => {
                self.stats.resets_needed += 1;
                return Err(ProcessError::CountInconsistent);
            }
        };

        // Locator roots that match no log candidate mean the difference is
        // corrupt — typically the §3.3 truncation subtracted entries the
        // receiver had in fact received (its assumption that the newest
        // entries are in transit did not hold). The only safe move is a
        // reset.
        if decoded.residual() > 0 {
            self.stats.resets_needed += 1;
            return Err(ProcessError::ThresholdExceeded { missing: m_total });
        }

        self.stats.quacks_processed += 1;
        self.last_count = Some(received.count());

        let mut report = QuackReport {
            missing_estimate: m_total,
            in_transit: self.log.len() - candidates,
            ..QuackReport::default()
        };

        // Classify each candidate entry.
        let mut fate = vec![Fate::Received; candidates];
        for &i in decoded.missing() {
            fate[i] = Fate::Missing;
        }
        // Ambiguous groups: mark the oldest `missing` members as missing
        // (the copies are indistinguishable; this choice keeps the mirror
        // sums exact) and flag the whole group in the report.
        for group in decoded.indeterminate_groups() {
            self.stats.ambiguous_verdicts += group.indices.len() as u64;
            for &i in &group.indices {
                report.indeterminate.push((self.log[i].id, self.log[i].tag));
            }
            for &i in group.indices.iter().take(group.missing) {
                fate[i] = Fate::MissingAmbiguous;
            }
        }
        // §3.3: "any continuous suffix of missing packets [is] also … in
        // transit, instead of actually missing" — they were sent after the
        // quACK's snapshot (or are still queued behind it). Unconditional:
        // a genuine tail loss is detected as soon as a later packet arrives
        // and breaks the run (or, for a full outage, by the base protocol's
        // own timeout).
        for i in (0..candidates).rev() {
            if matches!(fate[i], Fate::Received) {
                break;
            }
            fate[i] = Fate::InTransit;
            report.in_transit += 1;
        }
        // Additionally excuse any *recent* missing entry (within the
        // in-transit window): with reordering, a young packet can appear
        // missing mid-log while an overtaker already arrived.
        let freshness_cutoff = now.saturating_sub(self.in_transit_window);
        #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
        for i in 0..candidates {
            if matches!(fate[i], Fate::Missing | Fate::MissingAmbiguous)
                && self.log[i].sent_at >= freshness_cutoff
            {
                fate[i] = Fate::InTransit;
                report.in_transit += 1;
            }
        }

        // Apply: walk the candidate prefix back-to-front so index-based
        // removal stays valid.
        for i in (0..candidates).rev() {
            match fate[i] {
                Fate::Received => {
                    let entry = self.log[i];
                    if entry.limbo_deadline.is_some() {
                        self.stats.resurrected += 1;
                    }
                    self.stats.confirmed_received += 1;
                    report.received.push((entry.id, entry.tag));
                    let _ = self.log.remove(i);
                }
                Fate::Missing | Fate::MissingAmbiguous => {
                    let entry = &mut self.log[i];
                    entry.ambiguous = matches!(fate[i], Fate::MissingAmbiguous);
                    if entry.limbo_deadline.is_none() {
                        entry.limbo_deadline = Some(now + self.cfg.reorder_grace);
                        report.newly_missing.push((entry.id, entry.tag));
                    }
                }
                Fate::InTransit => {
                    // Leave untouched; a limbo flag set by an earlier quACK
                    // stays (the earlier evidence stands).
                }
            }
        }
        report.received.reverse();
        report.newly_missing.reverse();
        Ok(report)
    }

    /// Confirms losses whose grace period expired: removes them from the
    /// mirror sums and log (§3.3 "Resetting the threshold") and returns
    /// them.
    pub fn poll_expired(&mut self, now: SimTime) -> Vec<ConfirmedLoss> {
        let mut losses = Vec::new();
        let mut i = 0;
        while i < self.log.len() {
            match self.log[i].limbo_deadline {
                Some(deadline) if deadline <= now => {
                    let entry = self.log.remove(i).expect("indexed");
                    self.mirror.remove(entry.id);
                    self.stats.confirmed_lost += 1;
                    losses.push(ConfirmedLoss {
                        id: entry.id,
                        tag: entry.tag,
                        ambiguous: entry.ambiguous,
                    });
                }
                _ => i += 1,
            }
        }
        losses
    }

    /// Earliest pending grace deadline, for timer scheduling.
    pub fn next_grace_deadline(&self) -> Option<SimTime> {
        self.log.iter().filter_map(|e| e.limbo_deadline).min()
    }

    /// Resets to a new epoch, draining the unresolved log so the protocol
    /// can decide each leftover's fate.
    pub fn reset(&mut self, epoch: u32) -> Vec<LogEntry> {
        self.mirror = PowerSumQuack::new(self.cfg.threshold);
        self.epoch = epoch;
        self.last_count = None;
        self.log.drain(..).collect()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Fate {
    Received,
    Missing,
    MissingAmbiguous,
    InTransit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidecar_galois::Fp32;

    fn cfg() -> SidecarConfig {
        SidecarConfig {
            reorder_grace: SimDuration::from_millis(10),
            ..SidecarConfig::paper_default()
        }
    }

    fn pair() -> (QuackProducer<Fp32>, QuackConsumer<Fp32>) {
        (
            QuackProducer::new(cfg()),
            QuackConsumer::new(cfg(), SimDuration::from_millis(5)),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Unwraps a Quack message.
    fn quack_bytes(msg: SidecarMessage) -> (u32, Vec<u8>) {
        match msg {
            SidecarMessage::Quack { epoch, bytes } => (epoch, bytes),
            other => panic!("expected quack, got {other:?}"),
        }
    }

    #[test]
    fn clean_path_confirms_everything() {
        let (mut prod, mut cons) = pair();
        for i in 0..50u64 {
            let id = i * 977 + 13;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        assert_eq!(report.received.len(), 50);
        assert!(report.newly_missing.is_empty());
        assert_eq!(report.missing_estimate, 0);
        assert_eq!(cons.log_len(), 0);
        assert!(cons.poll_expired(t(1000)).is_empty());
    }

    #[test]
    fn epoch_resync_survives_u32_wraparound() {
        // The protocols resync with `epoch().wrapping_add(1)`; epochs are
        // compared by equality only, so u32::MAX -> 0 must behave exactly
        // like any other bump: the new epoch matches, the stale one is
        // rejected with WrongEpoch (never ThresholdExceeded or a panic).
        let (mut prod, mut cons) = pair();
        prod.reset(u32::MAX);
        let _ = cons.reset(u32::MAX);
        for i in 0..20u64 {
            let id = i * 613 + 7;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        assert_eq!(epoch, u32::MAX);
        assert!(cons.process_quack(t(10), epoch, &bytes).is_ok());

        // Resync across the wrap, exactly as the reset paths do.
        let stale = bytes;
        let new_epoch = cons.epoch().wrapping_add(1);
        assert_eq!(new_epoch, 0);
        let _ = cons.reset(new_epoch);
        prod.reset(new_epoch);
        for i in 0..20u64 {
            let id = i * 401 + 3;
            cons.record_sent(id, i, t(20));
            prod.observe(id);
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        assert_eq!(epoch, 0);
        let report = cons.process_quack(t(30), epoch, &bytes).unwrap();
        assert_eq!(report.received.len(), 20);
        // A quACK from the pre-wrap epoch is cleanly refused.
        match cons.process_quack(t(31), u32::MAX, &stale) {
            Err(ProcessError::WrongEpoch { got, expected }) => {
                assert_eq!(got, u32::MAX);
                assert_eq!(expected, 0);
            }
            other => panic!("expected WrongEpoch, got {other:?}"),
        }
    }

    #[test]
    fn losses_detected_graced_then_confirmed() {
        let (mut prod, mut cons) = pair();
        for i in 0..30u64 {
            let id = i * 31 + 5;
            cons.record_sent(id, i, t(0));
            if i != 7 && i != 19 {
                prod.observe(id);
            }
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        let missing_tags: Vec<u64> = report.newly_missing.iter().map(|&(_, tag)| tag).collect();
        assert_eq!(missing_tags, vec![7, 19]);
        assert_eq!(report.missing_estimate, 2);
        // Grace not yet expired.
        assert!(cons.poll_expired(t(105)).is_empty());
        let losses = cons.poll_expired(t(111));
        assert_eq!(losses.len(), 2);
        assert_eq!(losses[0].tag, 7);
        assert!(!losses[0].ambiguous);
        assert_eq!(cons.log_len(), 0);
        assert_eq!(cons.stats.confirmed_lost, 2);
    }

    #[test]
    fn reordered_packet_resurrected_from_limbo() {
        let (mut prod, mut cons) = pair();
        for i in 0..10u64 {
            let id = i + 1000;
            cons.record_sent(id, i, t(0));
            if i != 4 {
                prod.observe(id);
            }
        }
        let (e1, b1) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(50), e1, &b1).unwrap();
        assert_eq!(report.newly_missing, vec![(1004, 4)]);
        // The "missing" packet arrives late, before grace expiry…
        prod.observe(1004);
        let (e2, b2) = quack_bytes(prod.emit());
        let report2 = cons.process_quack(t(55), e2, &b2).unwrap();
        assert!(report2.received.contains(&(1004, 4)));
        // …so no loss is ever confirmed.
        assert!(cons.poll_expired(t(1000)).is_empty());
        assert_eq!(cons.stats.resurrected, 1);
    }

    #[test]
    fn threshold_reset_applies_since_last_quack() {
        // After confirming losses, the mirror sums forget them, so the next
        // quACK decodes fresh losses only (§3.3 "Resetting the threshold").
        let (mut prod, mut cons) = pair();
        // Window 1: lose 15 of 100 (within t=20).
        for i in 0..100u64 {
            let id = i * 7 + 1;
            cons.record_sent(id, i, t(0));
            if i % 7 != 3 {
                prod.observe(id);
            }
        }
        let (e1, b1) = quack_bytes(prod.emit());
        let r1 = cons.process_quack(t(50), e1, &b1).unwrap();
        let lost1 = r1.newly_missing.len();
        assert!(lost1 >= 14, "{lost1}");
        let confirmed = cons.poll_expired(t(61));
        assert_eq!(confirmed.len(), lost1);
        // Window 2: lose another 15 of 100. Without the reset these would
        // stack past t=20 and fail; with it they decode fine.
        for i in 100..200u64 {
            let id = i * 7 + 1;
            cons.record_sent(id, i, t(62));
            if i % 7 != 3 {
                prod.observe(id);
            }
        }
        let (e2, b2) = quack_bytes(prod.emit());
        let r2 = cons.process_quack(t(120), e2, &b2).unwrap();
        assert!(r2.newly_missing.len() >= 14);
    }

    #[test]
    fn in_transit_suffix_not_declared_missing() {
        let (mut prod, mut cons) = pair();
        // 30 old packets, all received.
        for i in 0..30u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        // 25 more packets sent *after* the quACK was generated (> t = 20),
        // still in flight at processing time (sent "recently": t(99)).
        for i in 30..55u64 {
            cons.record_sent(i + 1, i, t(99));
        }
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        assert!(report.newly_missing.is_empty(), "{report:?}");
        assert_eq!(report.received.len(), 30);
        assert_eq!(report.in_transit, 25);
        assert_eq!(cons.log_len(), 25);
    }

    #[test]
    fn trailing_run_excused_until_broken_by_a_later_arrival() {
        // Tail losses sit in the §3.3 in-transit excuse until a later
        // packet arrives and breaks the run.
        let (mut prod, mut cons) = pair();
        for i in 0..10u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(0));
            if i < 5 {
                prod.observe(id); // tail 5..10 genuinely lost
            }
        }
        let (e1, b1) = quack_bytes(prod.emit());
        let r1 = cons.process_quack(t(100), e1, &b1).unwrap();
        assert!(r1.newly_missing.is_empty());
        assert_eq!(r1.in_transit, 5);
        // A later packet arrives and is quACKed: the run is broken, the
        // five tail losses surface (they are also older than the freshness
        // window by now).
        cons.record_sent(999, 10, t(101));
        prod.observe(999);
        let (e2, b2) = quack_bytes(prod.emit());
        let r2 = cons.process_quack(t(200), e2, &b2).unwrap();
        assert_eq!(r2.newly_missing.len(), 5);
        let tags: Vec<u64> = r2.newly_missing.iter().map(|&(_, g)| g).collect();
        assert_eq!(tags, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn fresh_mid_log_missing_excused_by_window() {
        // A missing entry that is NOT in the trailing run but was sent very
        // recently is excused by the in-transit freshness window
        // (reordering robustness).
        let (mut prod, mut cons) = pair();
        cons.record_sent(1, 0, t(0));
        prod.observe(1);
        // Sent "just now" relative to processing at t=101 (window = 5 ms):
        cons.record_sent(2, 1, t(100));
        // A later packet overtook it (e.g. jitter) and was received.
        cons.record_sent(3, 2, t(100));
        prod.observe(3);
        let (e, b) = quack_bytes(prod.emit());
        let r = cons.process_quack(t(101), e, &b).unwrap();
        assert!(r.newly_missing.is_empty(), "{r:?}");
        assert_eq!(r.in_transit, 1);
        // Much later, with yet another received packet keeping the run
        // broken, the stale entry is finally declared missing.
        cons.record_sent(4, 3, t(299));
        prod.observe(4);
        let (e2, b2) = quack_bytes(prod.emit());
        let r2 = cons.process_quack(t(300), e2, &b2).unwrap();
        assert_eq!(r2.newly_missing.len(), 1);
        assert_eq!(r2.newly_missing[0], (2, 1));
    }

    #[test]
    fn stale_quack_skipped() {
        let (mut prod, mut cons) = pair();
        for i in 0..10u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        let (e1, b1) = quack_bytes(prod.emit());
        for i in 10..20u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(1));
            prod.observe(id);
        }
        let (e2, b2) = quack_bytes(prod.emit());
        // Newer quACK processed first (reordering in the network)…
        cons.process_quack(t(50), e2, &b2).unwrap();
        // …then the older one arrives: skipped as stale.
        assert_eq!(cons.process_quack(t(51), e1, &b1), Err(ProcessError::Stale));
        assert_eq!(cons.stats.quacks_stale, 1);
    }

    #[test]
    fn dropped_quack_is_recovered_by_the_next() {
        let (mut prod, mut cons) = pair();
        for i in 0..10u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(0));
            if i != 2 {
                prod.observe(id);
            }
        }
        let _dropped = prod.emit(); // never delivered
        for i in 10..20u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(1));
            if i != 15 {
                prod.observe(id);
            }
        }
        let (e2, b2) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), e2, &b2).unwrap();
        let tags: Vec<u64> = report.newly_missing.iter().map(|&(_, g)| g).collect();
        assert_eq!(tags, vec![2, 15]);
    }

    #[test]
    fn threshold_exceeded_demands_reset() {
        let (mut prod, mut cons) = pair();
        // 30 losses among old packets: beyond t = 20 and not excusable.
        for i in 0..60u64 {
            let id = i + 1;
            cons.record_sent(id, i, t(0));
            if i % 2 == 0 {
                prod.observe(id);
            }
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        let err = cons.process_quack(t(100), epoch, &bytes).unwrap_err();
        assert!(matches!(
            err,
            ProcessError::ThresholdExceeded { missing: 30 }
        ));
        assert_eq!(cons.stats.resets_needed, 1);
        // Coordinate a reset.
        let leftovers = cons.reset(1);
        assert_eq!(leftovers.len(), 60);
        prod.reset(1);
        assert_eq!(prod.epoch(), 1);
        assert_eq!(cons.epoch(), 1);
        // A quACK from the old epoch is now rejected.
        assert!(matches!(
            cons.process_quack(t(101), 0, &bytes),
            Err(ProcessError::WrongEpoch {
                got: 0,
                expected: 1
            })
        ));
        // Fresh epoch works.
        for i in 0..5u64 {
            let id = i + 5000;
            cons.record_sent(id, i, t(102));
            prod.observe(id);
        }
        let (e, b) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(200), e, &b).unwrap();
        assert_eq!(report.received.len(), 5);
    }

    #[test]
    fn collision_group_flagged_and_resolved_conservatively() {
        let (mut prod, mut cons) = pair();
        // Two packets share an identifier (collision); one is lost.
        cons.record_sent(42, 0, t(0));
        cons.record_sent(42, 1, t(0));
        cons.record_sent(99, 2, t(0));
        prod.observe(42);
        prod.observe(99);
        let (epoch, bytes) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        // Both group members flagged indeterminate.
        assert_eq!(report.indeterminate.len(), 2);
        // Exactly one representative enters limbo.
        assert_eq!(report.newly_missing.len(), 1);
        let losses = cons.poll_expired(t(111));
        assert_eq!(losses.len(), 1);
        assert!(losses[0].ambiguous);
        // Mirror stays consistent: a follow-up round decodes cleanly.
        for i in 0..5u64 {
            let id = i + 300;
            cons.record_sent(id, 10 + i, t(112));
            prod.observe(id);
        }
        let (e, b) = quack_bytes(prod.emit());
        let r = cons.process_quack(t(200), e, &b).unwrap();
        // The surviving collision twin was already confirmed in round one,
        // so only the 5 new packets confirm here — and, crucially, the
        // difference is clean (no phantom missing from the collision).
        assert_eq!(r.received.len(), 5);
        assert_eq!(r.missing_estimate, 0);
    }

    #[test]
    fn producer_burst_buffer_is_transparent() {
        // Fewer than LANES observations: the ids sit in the burst buffer,
        // but count() sees them and emit() flushes them into the quACK.
        let (mut prod, mut cons) = pair();
        for i in 0..(LANES as u64 - 1) {
            let id = i * 11 + 3;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        assert_eq!(prod.count(), LANES as u32 - 1);
        let (epoch, bytes) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        assert_eq!(report.received.len(), LANES - 1);
        assert_eq!(report.missing_estimate, 0);
        // Reset drops any buffered ids along with the sums.
        prod.observe(999);
        prod.reset(1);
        assert_eq!(prod.count(), 0);
    }

    #[test]
    fn observe_batch_matches_observe_loop() {
        let ids: Vec<u64> = (0..100u64).map(|i| i * 7919 + 1).collect();
        let mut one_by_one: QuackProducer<Fp32> = QuackProducer::new(SidecarConfig {
            frequency: QuackFrequency::EveryPackets(100),
            ..cfg()
        });
        let mut batched: QuackProducer<Fp32> = QuackProducer::new(SidecarConfig {
            frequency: QuackFrequency::EveryPackets(100),
            ..cfg()
        });
        let mut due = false;
        for &id in &ids {
            due = one_by_one.observe(id);
        }
        assert!(due);
        assert!(batched.observe_batch(&ids));
        assert_eq!(one_by_one.count(), batched.count());
        let (_, a) = quack_bytes(one_by_one.emit());
        let (_, b) = quack_bytes(batched.emit());
        assert_eq!(a, b);
    }

    #[test]
    fn record_sent_batch_matches_loop() {
        let (mut prod, mut cons) = pair();
        let packets: Vec<(u64, u64)> = (0..80u64).map(|i| (i * 13 + 7, i)).collect();
        cons.record_sent_batch(&packets, t(0));
        assert_eq!(cons.log_len(), 80);
        for &(id, _) in &packets {
            if id != packets[17].0 {
                prod.observe(id);
            }
        }
        let (epoch, bytes) = quack_bytes(prod.emit());
        let report = cons.process_quack(t(100), epoch, &bytes).unwrap();
        assert_eq!(report.received.len(), 79);
        assert_eq!(report.newly_missing, vec![packets[17]]);
    }

    #[test]
    fn producer_packet_count_schedule() {
        let mut prod: QuackProducer<Fp32> = QuackProducer::new(SidecarConfig {
            frequency: QuackFrequency::EveryPackets(3),
            ..cfg()
        });
        assert!(!prod.observe(1));
        assert!(!prod.observe(2));
        assert!(prod.observe(3));
        let _ = prod.emit();
        assert!(!prod.observe(4));
        assert_eq!(prod.count(), 4);
        assert_eq!(prod.emitted, 1);
    }

    #[test]
    fn producer_interval_adaptation() {
        let mut adaptive: QuackProducer<Fp32> = QuackProducer::new(SidecarConfig {
            frequency: QuackFrequency::Adaptive(SimDuration::from_millis(10)),
            ..cfg()
        });
        assert_eq!(adaptive.interval(), Some(SimDuration::from_millis(10)));
        adaptive.set_interval(SimDuration::from_millis(40));
        assert_eq!(adaptive.interval(), Some(SimDuration::from_millis(40)));
        // Fixed-interval producers ignore remote tuning.
        let mut fixed: QuackProducer<Fp32> = QuackProducer::new(cfg());
        let before = fixed.interval();
        fixed.set_interval(SimDuration::from_millis(1));
        assert_eq!(fixed.interval(), before);
    }

    #[test]
    fn count_wraparound_across_c_bits() {
        // Push the counts past 2^16 so the wire count wraps; the consumer
        // must still decode correctly.
        let (mut prod, mut cons) = pair();
        // Fast-forward both sides with 70 000 received packets.
        for i in 0..70_000u64 {
            let id = i * 2 + 1;
            cons.record_sent(id, i, t(0));
            prod.observe(id);
        }
        let (e0, b0) = quack_bytes(prod.emit());
        let r0 = cons.process_quack(t(10), e0, &b0).unwrap();
        assert_eq!(r0.received.len(), 70_000);
        // Now a window with one loss, straddling the wrapped count.
        for i in 70_000..70_010u64 {
            let id = i * 2 + 1;
            cons.record_sent(id, i, t(11));
            if i != 70_005 {
                prod.observe(id);
            }
        }
        let (e1, b1) = quack_bytes(prod.emit());
        let r1 = cons.process_quack(t(100), e1, &b1).unwrap();
        assert_eq!(r1.newly_missing.len(), 1);
        assert_eq!(r1.newly_missing[0].1, 70_005);
    }
}
