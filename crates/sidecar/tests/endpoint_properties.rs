//! Property-based tests of the sidecar endpoint pair: for arbitrary
//! delivery patterns, quACK schedules, and quACK losses, the consumer must
//! eventually report exactly the undelivered packets as lost — never a
//! delivered one (§3.3's guarantees, end to end).

use proptest::prelude::*;
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::{QuackConsumer, QuackProducer, SidecarConfig, SidecarMessage};
use std::collections::BTreeSet;

fn cfg(threshold: usize) -> SidecarConfig {
    SidecarConfig {
        threshold,
        reorder_grace: SimDuration::from_millis(1),
        ..SidecarConfig::paper_default()
    }
}

/// Distinct, deterministic identifiers (no collisions, so ground truth is
/// exact).
fn id_for(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(1) % 4_294_967_291
}

/// Drives one full producer/consumer exchange; returns (confirmed lost
/// tags, resets seen).
fn drive(
    delivered: &[bool],
    quack_every: usize,
    quack_drop_mask: &[bool],
    threshold: usize,
) -> (BTreeSet<u64>, bool) {
    let mut producer: QuackProducer<Fp32> = QuackProducer::new(cfg(threshold));
    let mut consumer: QuackConsumer<Fp32> =
        QuackConsumer::new(cfg(threshold), SimDuration::from_millis(1));
    let mut lost = BTreeSet::new();
    let mut reset_seen = false;
    let mut quack_idx = 0usize;
    let mut t = SimTime::ZERO;

    let handle_quack = |producer: &mut QuackProducer<Fp32>,
                        consumer: &mut QuackConsumer<Fp32>,
                        t: SimTime,
                        lost: &mut BTreeSet<u64>,
                        reset_seen: &mut bool,
                        dropped: bool| {
        let msg = producer.emit();
        if dropped {
            return;
        }
        let SidecarMessage::Quack { epoch, bytes } = msg else {
            unreachable!()
        };
        match consumer.process_quack(t, epoch, &bytes) {
            Ok(_) => {}
            Err(sidecar_proto::ProcessError::ThresholdExceeded { .. })
            | Err(sidecar_proto::ProcessError::CountInconsistent) => {
                // Coordinated reset: leftovers count as lost (the
                // protocol can no longer vouch for them).
                *reset_seen = true;
                let next = consumer.epoch() + 1;
                for entry in consumer.reset(next) {
                    lost.insert(entry.tag);
                }
                producer.reset(next);
            }
            Err(_) => {}
        }
        for loss in consumer.poll_expired(t + SimDuration::from_millis(2)) {
            lost.insert(loss.tag);
        }
    };

    for (i, &ok) in delivered.iter().enumerate() {
        t += SimDuration::from_millis(10);
        let id = id_for(i);
        consumer.record_sent(id, i as u64, t);
        if ok {
            producer.observe(id);
        }
        if (i + 1) % quack_every == 0 {
            t += SimDuration::from_millis(5);
            let dropped = quack_drop_mask.get(quack_idx).copied().unwrap_or(false);
            quack_idx += 1;
            handle_quack(
                &mut producer,
                &mut consumer,
                t,
                &mut lost,
                &mut reset_seen,
                dropped,
            );
        }
    }
    // Flush: a sentinel delivered packet breaks any trailing missing run,
    // then a final (never dropped) quACK and a far-future grace poll settle
    // every verdict.
    t += SimDuration::from_millis(10);
    let sentinel = 4_000_000_000u64;
    consumer.record_sent(sentinel, u64::MAX, t);
    producer.observe(sentinel);
    t += SimDuration::from_millis(5);
    handle_quack(
        &mut producer,
        &mut consumer,
        t,
        &mut lost,
        &mut reset_seen,
        false,
    );
    t += SimDuration::from_secs(10);
    for loss in consumer.poll_expired(t) {
        lost.insert(loss.tag);
    }
    lost.remove(&u64::MAX);
    (lost, reset_seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With a threshold comfortably above the loss burst size and no quACK
    /// drops, the confirmed-lost set equals the ground-truth undelivered
    /// set exactly.
    #[test]
    fn losses_reported_exactly(delivered in proptest::collection::vec(prop::bool::weighted(0.9), 1..120),
                               quack_every in 1usize..8) {
        let (lost, reset) = drive(&delivered, quack_every, &[], 64);
        let expected: BTreeSet<u64> = delivered
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert!(!reset, "threshold 64 should never be exceeded here");
        prop_assert_eq!(lost, expected);
    }

    /// Dropped quACKs never change the final verdicts (cumulative sums,
    /// §3.3 "Dropped quACKs") as long as at least the flush quACK arrives.
    #[test]
    fn quack_drops_are_harmless(delivered in proptest::collection::vec(prop::bool::weighted(0.85), 1..100),
                                quack_every in 1usize..6,
                                drops in proptest::collection::vec(any::<bool>(), 0..100)) {
        let (with_drops, r1) = drive(&delivered, quack_every, &drops, 64);
        let (without_drops, r2) = drive(&delivered, quack_every, &[], 64);
        prop_assert!(!r1 && !r2);
        prop_assert_eq!(with_drops, without_drops);
    }

    /// Delivered packets are never reported lost, even when the threshold
    /// is tight and resets occur (resets may over-report losses — that is
    /// their contract — but only for genuinely undelivered packets when no
    /// reset fires).
    #[test]
    fn no_false_losses_without_resets(delivered in proptest::collection::vec(prop::bool::weighted(0.7), 1..80),
                                      quack_every in 1usize..5,
                                      threshold in 8usize..32) {
        let (lost, reset) = drive(&delivered, quack_every, &[], threshold);
        if !reset {
            for (i, &ok) in delivered.iter().enumerate() {
                if ok {
                    prop_assert!(!lost.contains(&(i as u64)), "delivered packet {i} reported lost");
                }
            }
        }
    }
}
