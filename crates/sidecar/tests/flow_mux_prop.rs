//! Mux-transparency property: K flows interleaved through one flow table
//! must behave bit-identically to K isolated single-flow runs.
//!
//! The flow-aware refactor claims the [`FlowTable`] is pure plumbing — a
//! per-flow session looked up by id, with no cross-flow interference. This
//! test drives an arbitrary interleaving of K producer/consumer pairs
//! through one shared table, replays each flow's exact event subsequence
//! (same timestamps, same delivery pattern, same quACK schedule) through a
//! standalone pair, and demands identical confirmed-loss sets, epochs, and
//! counts.

use proptest::prelude::*;
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::FlowId;
use sidecar_proto::{
    FlowTable, FlowTableConfig, ProcessError, QuackConsumer, QuackProducer, SidecarConfig,
    SidecarMessage,
};
use std::collections::BTreeSet;

fn cfg(threshold: usize) -> SidecarConfig {
    SidecarConfig {
        threshold,
        reorder_grace: SimDuration::from_millis(1),
        ..SidecarConfig::paper_default()
    }
}

/// Distinct deterministic identifiers, disjoint across flows.
fn id_for(flow: usize, seq: u64) -> u64 {
    (flow as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(seq)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(1)
        % 4_294_967_291
}

/// One flow's session state, identical for muxed and isolated runs.
struct Session {
    producer: QuackProducer<Fp32>,
    consumer: QuackConsumer<Fp32>,
    seq: u64,
    lost: BTreeSet<u64>,
    resets: u32,
}

impl Session {
    fn new(threshold: usize) -> Self {
        Session {
            producer: QuackProducer::new(cfg(threshold)),
            consumer: QuackConsumer::new(cfg(threshold), SimDuration::from_millis(1)),
            seq: 0,
            lost: BTreeSet::new(),
            resets: 0,
        }
    }

    /// Ships one quACK producer→consumer and absorbs the outcome the way
    /// the protocols do (coordinated reset on overflow, leftovers lost).
    fn exchange(&mut self, t: SimTime) {
        let SidecarMessage::Quack { epoch, bytes } = self.producer.emit() else {
            unreachable!("emit() always yields a quACK");
        };
        match self.consumer.process_quack(t, epoch, &bytes) {
            Ok(_) | Err(ProcessError::Stale) => {}
            Err(ProcessError::ThresholdExceeded { .. }) | Err(ProcessError::CountInconsistent) => {
                let next = self.consumer.epoch().wrapping_add(1);
                for entry in self.consumer.reset(next) {
                    self.lost.insert(entry.tag);
                }
                self.producer.reset(next);
                self.resets += 1;
            }
            Err(other) => panic!("unexpected quACK outcome: {other:?}"),
        }
    }

    /// One data packet: recorded at the consumer, observed by the producer
    /// iff it survived the subpath.
    fn step(&mut self, flow: usize, delivered: bool, quack_every: u64, t: SimTime) {
        let id = id_for(flow, self.seq);
        self.consumer.record_sent(id, self.seq, t);
        if delivered {
            self.producer.observe(id);
        }
        self.seq += 1;
        if self.seq.is_multiple_of(quack_every) {
            self.exchange(t);
        }
    }

    /// Final quACK plus grace expiry; returns the flow's fingerprint.
    fn finish(mut self, t: SimTime) -> (BTreeSet<u64>, u32, u32, u64) {
        self.exchange(t);
        for loss in self.consumer.poll_expired(t + SimDuration::from_secs(1)) {
            self.lost.insert(loss.tag);
        }
        (self.lost, self.resets, self.consumer.epoch(), self.seq)
    }
}

/// Runs the interleaved schedule through one shared flow table.
fn run_muxed(
    events: &[(usize, bool)],
    flows: usize,
    quack_every: u64,
    threshold: usize,
) -> Vec<(BTreeSet<u64>, u32, u32, u64)> {
    let mut table: FlowTable<Session> = FlowTable::new(FlowTableConfig {
        shards: 4,
        per_shard: 4,
        idle_timeout: SimDuration::from_secs(3_600),
    });
    for (i, &(flow, delivered)) in events.iter().enumerate() {
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
        let (_, session) =
            table.get_or_insert_with(FlowId(flow as u32), t, || Session::new(threshold));
        session.step(flow, delivered, quack_every, t);
    }
    let t_end = SimTime::ZERO + SimDuration::from_millis(events.len() as u64);
    (0..flows)
        .map(|flow| {
            table
                .remove(FlowId(flow as u32))
                .map(|s| s.finish(t_end))
                .unwrap_or_else(|| (BTreeSet::new(), 0, 0, 0))
        })
        .collect()
}

/// Replays one flow's exact subsequence through an isolated pair.
fn run_isolated(
    events: &[(usize, bool)],
    flow: usize,
    quack_every: u64,
    threshold: usize,
) -> (BTreeSet<u64>, u32, u32, u64) {
    let mut session = Session::new(threshold);
    let mut touched = false;
    for (i, &(f, delivered)) in events.iter().enumerate() {
        if f != flow {
            continue;
        }
        touched = true;
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
        session.step(flow, delivered, quack_every, t);
    }
    if !touched {
        return (BTreeSet::new(), 0, 0, 0);
    }
    session.finish(SimTime::ZERO + SimDuration::from_millis(events.len() as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K interleaved flows through one table ≡ K isolated runs.
    #[test]
    fn muxing_is_transparent(
        flows in 2usize..6,
        events in proptest::collection::vec((0usize..6, any::<bool>()), 1..300),
        quack_every in 2u64..20,
        threshold in 4usize..16,
    ) {
        let events: Vec<(usize, bool)> =
            events.into_iter().map(|(f, d)| (f % flows, d)).collect();
        let muxed = run_muxed(&events, flows, quack_every, threshold);
        for (flow, muxed_flow) in muxed.iter().enumerate() {
            let isolated = run_isolated(&events, flow, quack_every, threshold);
            prop_assert_eq!(
                muxed_flow,
                &isolated,
                "flow {} diverged between muxed and isolated runs",
                flow
            );
        }
    }
}
