//! Mux-transparency property: K flows interleaved through one flow table
//! must behave bit-identically to K isolated single-flow runs.
//!
//! The flow-aware refactor claims the [`FlowTable`] is pure plumbing — a
//! per-flow session looked up by id, with no cross-flow interference. This
//! test drives an arbitrary interleaving of K producer/consumer pairs
//! through one shared table, replays each flow's exact event subsequence
//! (same timestamps, same delivery pattern, same quACK schedule) through a
//! standalone pair, and demands identical confirmed-loss sets, epochs, and
//! counts.
//!
//! The slab rebuild adds two layers on top:
//!
//! * the same transparency property at K up to 1024 under *adversarial*
//!   interleavings — strict round-robin (maximally interleaved, every
//!   packet lands on a different slot than its predecessor), bursty
//!   per-flow runs (the fold-bucketing fast path), and eviction-and-return
//!   (slot recycling through the free list while neighbours keep state);
//! * a slab-vs-legacy equivalence oracle: the PR 4 scan table survives as
//!   [`sidecar_proto::flows::legacy`], and an arbitrary op soup (touch /
//!   remove / evict-if-idle / sweep, strictly increasing timestamps) must
//!   leave both tables with identical surviving flows, per-flow quACK
//!   state, eviction results, and stats.

use proptest::prelude::*;
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::FlowId;
use sidecar_proto::{
    FlowTable, FlowTableConfig, ProcessError, QuackConsumer, QuackProducer, SidecarConfig,
    SidecarMessage,
};
use sidecar_quack::PowerSumQuack;
use std::collections::{BTreeMap, BTreeSet};

fn cfg(threshold: usize) -> SidecarConfig {
    SidecarConfig {
        threshold,
        reorder_grace: SimDuration::from_millis(1),
        ..SidecarConfig::paper_default()
    }
}

/// Distinct deterministic identifiers, disjoint across flows.
fn id_for(flow: usize, seq: u64) -> u64 {
    (flow as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(seq)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(1)
        % 4_294_967_291
}

/// One flow's session state, identical for muxed and isolated runs.
struct Session {
    producer: QuackProducer<Fp32>,
    consumer: QuackConsumer<Fp32>,
    seq: u64,
    lost: BTreeSet<u64>,
    resets: u32,
}

impl Session {
    fn new(threshold: usize) -> Self {
        Session {
            producer: QuackProducer::new(cfg(threshold)),
            consumer: QuackConsumer::new(cfg(threshold), SimDuration::from_millis(1)),
            seq: 0,
            lost: BTreeSet::new(),
            resets: 0,
        }
    }

    /// Ships one quACK producer→consumer and absorbs the outcome the way
    /// the protocols do (coordinated reset on overflow, leftovers lost).
    fn exchange(&mut self, t: SimTime) {
        let SidecarMessage::Quack { epoch, bytes } = self.producer.emit() else {
            unreachable!("emit() always yields a quACK");
        };
        match self.consumer.process_quack(t, epoch, &bytes) {
            Ok(_) | Err(ProcessError::Stale) => {}
            Err(ProcessError::ThresholdExceeded { .. }) | Err(ProcessError::CountInconsistent) => {
                let next = self.consumer.epoch().wrapping_add(1);
                for entry in self.consumer.reset(next) {
                    self.lost.insert(entry.tag);
                }
                self.producer.reset(next);
                self.resets += 1;
            }
            Err(other) => panic!("unexpected quACK outcome: {other:?}"),
        }
    }

    /// One data packet: recorded at the consumer, observed by the producer
    /// iff it survived the subpath.
    fn step(&mut self, flow: usize, delivered: bool, quack_every: u64, t: SimTime) {
        let id = id_for(flow, self.seq);
        self.consumer.record_sent(id, self.seq, t);
        if delivered {
            self.producer.observe(id);
        }
        self.seq += 1;
        if self.seq.is_multiple_of(quack_every) {
            self.exchange(t);
        }
    }

    /// Final quACK plus grace expiry; returns the flow's fingerprint.
    fn finish(mut self, t: SimTime) -> (BTreeSet<u64>, u32, u32, u64) {
        self.exchange(t);
        for loss in self.consumer.poll_expired(t + SimDuration::from_secs(1)) {
            self.lost.insert(loss.tag);
        }
        (self.lost, self.resets, self.consumer.epoch(), self.seq)
    }
}

/// Runs the interleaved schedule through one shared flow table.
fn run_muxed(
    events: &[(usize, bool)],
    flows: usize,
    quack_every: u64,
    threshold: usize,
) -> Vec<(BTreeSet<u64>, u32, u32, u64)> {
    let mut table: FlowTable<Session> = FlowTable::new(FlowTableConfig {
        shards: 4,
        per_shard: 4,
        idle_timeout: SimDuration::from_secs(3_600),
    });
    for (i, &(flow, delivered)) in events.iter().enumerate() {
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
        let (_, session) =
            table.get_or_insert_with(FlowId(flow as u32), t, || Session::new(threshold));
        session.step(flow, delivered, quack_every, t);
    }
    let t_end = SimTime::ZERO + SimDuration::from_millis(events.len() as u64);
    (0..flows)
        .map(|flow| {
            table
                .remove(FlowId(flow as u32))
                .map(|s| s.finish(t_end))
                .unwrap_or_else(|| (BTreeSet::new(), 0, 0, 0))
        })
        .collect()
}

/// Replays one flow's exact subsequence through an isolated pair.
fn run_isolated(
    events: &[(usize, bool)],
    flow: usize,
    quack_every: u64,
    threshold: usize,
) -> (BTreeSet<u64>, u32, u32, u64) {
    let mut session = Session::new(threshold);
    let mut touched = false;
    for (i, &(f, delivered)) in events.iter().enumerate() {
        if f != flow {
            continue;
        }
        touched = true;
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
        session.step(flow, delivered, quack_every, t);
    }
    if !touched {
        return (BTreeSet::new(), 0, 0, 0);
    }
    session.finish(SimTime::ZERO + SimDuration::from_millis(events.len() as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K interleaved flows through one table ≡ K isolated runs.
    #[test]
    fn muxing_is_transparent(
        flows in 2usize..6,
        events in proptest::collection::vec((0usize..6, any::<bool>()), 1..300),
        quack_every in 2u64..20,
        threshold in 4usize..16,
    ) {
        let events: Vec<(usize, bool)> =
            events.into_iter().map(|(f, d)| (f % flows, d)).collect();
        let muxed = run_muxed(&events, flows, quack_every, threshold);
        for (flow, muxed_flow) in muxed.iter().enumerate() {
            let isolated = run_isolated(&events, flow, quack_every, threshold);
            prop_assert_eq!(
                muxed_flow,
                &isolated,
                "flow {} diverged between muxed and isolated runs",
                flow
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Adversarial interleavings at scale (slab engine, K up to 1024)
// ---------------------------------------------------------------------------

/// A scheduled proxy event: one data packet for a flow, or an explicit
/// eviction (the slot returns to the free list; the flow's next packet
/// re-creates it from scratch — in a recycled slot, under adversarial
/// schedules the *same* slot another flow's state just vacated).
#[derive(Clone, Copy, Debug)]
enum Ev {
    Packet { flow: usize, delivered: bool },
    Evict { flow: usize },
}

/// Tiny deterministic generator so the big-K schedules stay cheap to
/// produce and shrink (proptest only picks `seed`, not the event soup).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// True with probability `num`/`den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Maximally interleaved: every packet lands on a different flow (and
/// shard/slot) than its predecessor — the worst case for any scheme that
/// caches "the current flow".
fn round_robin_schedule(k: usize, rounds: usize, seed: u64) -> Vec<Ev> {
    let mut lcg = Lcg(seed | 1);
    let mut events = Vec::with_capacity(k * rounds);
    for _ in 0..rounds {
        for flow in 0..k {
            events.push(Ev::Packet {
                flow,
                delivered: lcg.chance(9, 10),
            });
        }
    }
    events
}

/// Bursty per-flow runs: contiguous packets for one flow before switching —
/// the arrival shape the slot-bucketed fold path is built for.
fn bursty_schedule(k: usize, burst: usize, bursts: usize, seed: u64) -> Vec<Ev> {
    let mut lcg = Lcg(seed | 1);
    let mut events = Vec::with_capacity(burst * bursts);
    for _ in 0..bursts {
        let flow = (lcg.next() as usize) % k;
        for _ in 0..burst {
            events.push(Ev::Packet {
                flow,
                delivered: lcg.chance(9, 10),
            });
        }
    }
    events
}

/// Round-robin with rotating explicit evictions: flows leave mid-run and
/// return later, recycling slots out of the free list while their
/// neighbours' sessions must stay untouched.
fn eviction_and_return_schedule(k: usize, rounds: usize, evict_every: usize, seed: u64) -> Vec<Ev> {
    let mut lcg = Lcg(seed | 1);
    let mut events = Vec::new();
    let mut victim = 0usize;
    for round in 0..rounds {
        for flow in 0..k {
            events.push(Ev::Packet {
                flow,
                delivered: lcg.chance(9, 10),
            });
        }
        if (round + 1) % evict_every == 0 {
            events.push(Ev::Evict { flow: victim });
            victim = (victim + 7) % k;
        }
    }
    events
}

type Fingerprint = (BTreeSet<u64>, u32, u32, u64);

/// Runs a schedule through one shared slab table. Each eviction closes one
/// session *incarnation*; a flow's fingerprint is the list of its
/// incarnations' fingerprints in order.
fn run_muxed_ev(
    events: &[Ev],
    k: usize,
    quack_every: u64,
    threshold: usize,
) -> Vec<Vec<Fingerprint>> {
    let mut table: FlowTable<Session> =
        FlowTable::new(FlowTableConfig::sized_for(k, SimDuration::from_secs(3_600)));
    let mut fps: Vec<Vec<Fingerprint>> = (0..k).map(|_| Vec::new()).collect();
    for (i, ev) in events.iter().enumerate() {
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
        match *ev {
            Ev::Packet { flow, delivered } => {
                let (_, session) =
                    table.get_or_insert_with(FlowId(flow as u32), t, || Session::new(threshold));
                session.step(flow, delivered, quack_every, t);
            }
            Ev::Evict { flow } => {
                if let Some(session) = table.remove(FlowId(flow as u32)) {
                    fps[flow].push(session.finish(t));
                }
            }
        }
    }
    let t_end = SimTime::ZERO + SimDuration::from_millis(events.len() as u64);
    for (flow, fp) in fps.iter_mut().enumerate().take(k) {
        if let Some(session) = table.remove(FlowId(flow as u32)) {
            fp.push(session.finish(t_end));
        }
    }
    fps
}

/// Replays every flow's exact event subsequence through isolated sessions,
/// splitting incarnations at the same eviction points.
fn run_isolated_ev(
    events: &[Ev],
    k: usize,
    quack_every: u64,
    threshold: usize,
) -> Vec<Vec<Fingerprint>> {
    // One pass to bucket events per flow (the naive per-flow scan is
    // O(K·events) and K reaches 1024 here).
    let mut per_flow: Vec<Vec<(usize, Option<bool>)>> = (0..k).map(|_| Vec::new()).collect();
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            Ev::Packet { flow, delivered } => per_flow[flow].push((i, Some(delivered))),
            Ev::Evict { flow } => per_flow[flow].push((i, None)),
        }
    }
    let t_end = SimTime::ZERO + SimDuration::from_millis(events.len() as u64);
    per_flow
        .into_iter()
        .enumerate()
        .map(|(flow, evs)| {
            let mut fps = Vec::new();
            let mut session: Option<Session> = None;
            for (i, delivered) in evs {
                let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
                match delivered {
                    Some(delivered) => session.get_or_insert_with(|| Session::new(threshold)).step(
                        flow,
                        delivered,
                        quack_every,
                        t,
                    ),
                    None => {
                        if let Some(s) = session.take() {
                            fps.push(s.finish(t));
                        }
                    }
                }
            }
            if let Some(s) = session.take() {
                fps.push(s.finish(t_end));
            }
            fps
        })
        .collect()
}

fn assert_schedule_transparent(
    events: &[Ev],
    k: usize,
    quack_every: u64,
    threshold: usize,
) -> Result<(), TestCaseError> {
    let muxed = run_muxed_ev(events, k, quack_every, threshold);
    let isolated = run_isolated_ev(events, k, quack_every, threshold);
    for (flow, (m, i)) in muxed.iter().zip(isolated.iter()).enumerate() {
        prop_assert_eq!(m, i, "flow {} diverged (k={})", flow, k);
    }
    Ok(())
}

proptest! {
    // Big-K runs are expensive; a handful of cases per shape is plenty —
    // the schedules themselves are the adversarial part, not the sampling.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Strict round-robin interleaving at K up to 1024.
    #[test]
    fn mux_transparent_round_robin_at_scale(
        k in prop_oneof![Just(16usize), Just(128), Just(1024)],
        rounds in 2usize..4,
        quack_every in 2u64..8,
        seed in any::<u64>(),
    ) {
        let events = round_robin_schedule(k, rounds, seed);
        assert_schedule_transparent(&events, k, quack_every, 8)?;
    }

    /// Bursty per-flow runs (contiguous arrivals) at K up to 512.
    #[test]
    fn mux_transparent_bursty_runs(
        k in prop_oneof![Just(8usize), Just(64), Just(512)],
        burst in 2usize..16,
        bursts in 8usize..48,
        quack_every in 2u64..8,
        seed in any::<u64>(),
    ) {
        let events = bursty_schedule(k, burst, bursts, seed);
        assert_schedule_transparent(&events, k, quack_every, 8)?;
    }

    /// Eviction-and-return: slots recycle through the free list mid-run.
    #[test]
    fn mux_transparent_eviction_and_return(
        k in prop_oneof![Just(8usize), Just(64), Just(256)],
        rounds in 4usize..8,
        evict_every in 1usize..4,
        quack_every in 2u64..8,
        seed in any::<u64>(),
    ) {
        let events = eviction_and_return_schedule(k, rounds, evict_every, seed);
        assert_schedule_transparent(&events, k, quack_every, 8)?;
    }
}

// ---------------------------------------------------------------------------
// Slab-vs-legacy equivalence oracle
// ---------------------------------------------------------------------------

/// One flow-table operation. Timestamps increase strictly monotonically
/// across the op sequence, which makes LRU order well-defined (the legacy
/// table breaks recency ties by scan order, the slab by list position —
/// with distinct timestamps there are no ties to break).
#[derive(Clone, Copy, Debug)]
enum TableOp {
    /// Ensure the flow exists (possibly capacity-evicting the shard's LRU)
    /// and fold one identifier into its quACK.
    Touch(u32),
    /// Explicitly remove the flow.
    Remove(u32),
    /// Evict the flow iff idle.
    EvictIfIdle(u32),
    /// Sweep every idle flow.
    Sweep,
}

fn table_op() -> impl Strategy<Value = TableOp> {
    // The vendored propcheck union is uniform; repeating the touch branch
    // weights the mix toward the hot path (~2/3 touches).
    prop_oneof![
        (0u32..24).prop_map(TableOp::Touch),
        (0u32..24).prop_map(TableOp::Touch),
        (0u32..24).prop_map(TableOp::Touch),
        (0u32..24).prop_map(TableOp::Touch),
        (0u32..24).prop_map(TableOp::Remove),
        (0u32..24).prop_map(TableOp::EvictIfIdle),
        Just(TableOp::Sweep),
    ]
}

type Sketch = PowerSumQuack<Fp32>;

fn snapshot(table: &FlowTable<Sketch>) -> BTreeMap<u32, Sketch> {
    table.iter().map(|(f, s)| (f.0, s.clone())).collect()
}

fn snapshot_legacy(
    table: &sidecar_proto::flows::legacy::FlowTable<Sketch>,
) -> BTreeMap<u32, Sketch> {
    table.iter().map(|(f, s)| (f.0, s.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The slab engine and the PR 4 scan table are the same policy: an
    /// arbitrary op soup leaves identical surviving flows, per-flow quACK
    /// state, eviction results, and lifetime stats.
    #[test]
    fn slab_matches_legacy_oracle(
        ops in proptest::collection::vec(table_op(), 1..250),
        threshold in 2usize..6,
    ) {
        // Deliberately tiny: 2 shards × 3 slots so capacity evictions and
        // free-list recycling happen constantly; a short idle timeout so
        // sweeps bite mid-sequence.
        let cfg = FlowTableConfig {
            shards: 2,
            per_shard: 3,
            idle_timeout: SimDuration::from_millis(80),
        };
        let mut slab: FlowTable<Sketch> = FlowTable::new(cfg);
        let mut legacy: sidecar_proto::flows::legacy::FlowTable<Sketch> =
            sidecar_proto::flows::legacy::FlowTable::new(cfg);
        let mut next_id = 0u64;
        for (i, op) in ops.iter().enumerate() {
            // Strictly increasing, never-equal timestamps (see enum doc).
            let t = SimTime::ZERO + SimDuration::from_millis(10 * (i as u64 + 1));
            match *op {
                TableOp::Touch(f) => {
                    next_id += 1;
                    let id = next_id;
                    let (c_slab, s_slab) =
                        slab.get_or_insert_with(FlowId(f), t, || Sketch::new(threshold));
                    s_slab.insert(id);
                    let (c_leg, s_leg) =
                        legacy.get_or_insert_with(FlowId(f), t, || Sketch::new(threshold));
                    s_leg.insert(id);
                    prop_assert_eq!(c_slab, c_leg, "created flag diverged on flow {}", f);
                }
                TableOp::Remove(f) => {
                    prop_assert_eq!(slab.remove(FlowId(f)), legacy.remove(FlowId(f)));
                }
                TableOp::EvictIfIdle(f) => {
                    prop_assert_eq!(
                        slab.evict_if_idle(FlowId(f), t),
                        legacy.evict_if_idle(FlowId(f), t)
                    );
                }
                TableOp::Sweep => {
                    // Eviction *sets* must match; the tables may surface
                    // them in different orders (tail-walk vs scan).
                    let mut a: Vec<(u32, Sketch)> =
                        slab.sweep_idle(t).into_iter().map(|(f, s)| (f.0, s)).collect();
                    let mut b: Vec<(u32, Sketch)> =
                        legacy.sweep_idle(t).into_iter().map(|(f, s)| (f.0, s)).collect();
                    a.sort_by_key(|(f, _)| *f);
                    b.sort_by_key(|(f, _)| *f);
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(slab.len(), legacy.len(), "live count diverged after op {}", i);
        }
        prop_assert_eq!(snapshot(&slab), snapshot_legacy(&legacy));
        prop_assert_eq!(slab.take_stats(), legacy.take_stats());
    }
}
