//! Driver parity: the §2.3 retx chain driven purely through the
//! `dyn Driver` seam must match the same chain driven through `World`'s
//! concrete API, fact for fact.
//!
//! The tentpole claim of the driver refactor is "one implementation, two
//! hosts": protocol state machines written against `Node`/`Context` with
//! zero netsim-specific paths. The live loopback suite proves the second
//! host; this suite proves the seam itself is behaviorally invisible —
//! hosting the simulator behind `&mut dyn Driver` changes nothing about
//! what the protocols do.
//!
//! The parity facts (hop counts, causal certification) are read from the
//! world's obs trace, so the suite rides the `obs` feature.
#![cfg(feature = "obs")]

use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::NodeId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
use sidecar_netsim::{Driver, FlowId, World};
use sidecar_obs::Lifecycle;
use sidecar_proto::protocols::retx::{ReceiverSideProxy, SenderSideProxy};
use sidecar_proto::{QuackFrequency, SidecarConfig, SupervisionConfig};

const TOTAL: u64 = 400;

struct Chain {
    world: World,
    server: NodeId,
    proxy_a: NodeId,
    proxy_b: NodeId,
    client: NodeId,
}

/// The four-node chain with a lossy subpath, topology built with the
/// concrete `World` API (topology is host business; only *running* goes
/// through the seam).
fn build_chain(seed: u64) -> Chain {
    let mut w = World::new(seed);
    let server = w.add_node(SenderNode::boxed(SenderConfig {
        flow: FlowId(1),
        total_packets: Some(TOTAL),
        id_seed: seed ^ 0xA5A5,
        peer_max_ack_delay: SimDuration::from_millis(100),
        ..SenderConfig::default()
    }));
    let cfg = SidecarConfig {
        frequency: QuackFrequency::Adaptive(SimDuration::from_millis(5)),
        reorder_grace: SimDuration::from_millis(3),
        ..SidecarConfig::paper_default()
    };
    let proxy_a = w.add_node(Box::new(SenderSideProxy::new(
        cfg,
        SimDuration::from_millis(12),
        4_096,
        SupervisionConfig::default(),
    )));
    let proxy_b = w.add_node(Box::new(ReceiverSideProxy::new(cfg)));
    let client = w.add_node(ReceiverNode::boxed(ReceiverConfig {
        ack_every: 16,
        max_ack_delay: SimDuration::from_millis(40),
        immediate_on_gap: false,
        ..ReceiverConfig::default()
    }));

    let edge = LinkConfig {
        rate_bps: 1_000_000_000,
        delay: SimDuration::from_millis(2),
        ..LinkConfig::default()
    };
    let subpath = LinkConfig {
        rate_bps: 100_000_000,
        delay: SimDuration::from_millis(5),
        loss: LossModel::Bernoulli { p: 0.05 },
        ..LinkConfig::default()
    };
    w.connect(server, proxy_a, edge.clone(), edge.clone());
    w.connect(proxy_a, proxy_b, subpath.clone(), subpath);
    w.connect(proxy_b, client, edge.clone(), edge);
    Chain {
        world: w,
        server,
        proxy_a,
        proxy_b,
        client,
    }
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Facts {
    completed_at: Option<SimTime>,
    sent: u64,
    e2e_retransmissions: u64,
    proxy_retransmissions: u64,
    quacks_sent: u64,
    delivered_units: u64,
    hop_delivers: usize,
    hop_drops: usize,
}

/// Reads the facts through the seam only.
fn facts(d: &dyn Driver, chain: &Chain) -> Facts {
    let sender: &SenderNode = d.node_as(chain.server);
    let proxy_a: &SenderSideProxy = d.node_as(chain.proxy_a);
    let proxy_b: &ReceiverSideProxy = d.node_as(chain.proxy_b);
    let client: &ReceiverNode = d.node_as(chain.client);
    Facts {
        completed_at: sender.stats().completed_at,
        sent: sender.stats().sent_packets,
        e2e_retransmissions: sender.stats().retransmissions,
        proxy_retransmissions: proxy_a.retransmitted,
        quacks_sent: proxy_b.quacks_sent,
        delivered_units: client.stats().unique_units,
        hop_delivers: chain.world.obs().trace.count_kind("hop_deliver"),
        hop_drops: chain.world.obs().trace.count_kind("hop_drop"),
    }
}

/// Drives the chain to completion using nothing but `Driver` methods —
/// this function compiles against the seam, so it would host `LiveDriver`
/// unchanged.
fn drive_through_seam(d: &mut dyn Driver, server: NodeId) {
    let mut deadline = SimTime::ZERO;
    for _ in 0..240 {
        deadline += SimDuration::from_millis(500);
        d.run_until(deadline);
        let sender: &SenderNode = d.node_as(server);
        if sender.core().is_complete() {
            return;
        }
    }
    panic!("transfer did not complete within the cap");
}

#[test]
fn retx_chain_completes_and_certifies_behind_the_seam() {
    let mut chain = build_chain(7);
    let server = chain.server;
    drive_through_seam(&mut chain.world, server);
    let f = facts(&chain.world, &chain);
    assert_eq!(f.delivered_units, TOTAL, "client missing data units");
    assert!(f.proxy_retransmissions > 0, "sidecar never repaired a loss");
    assert!(f.quacks_sent > 0, "receiver-side proxy never quACKed");
    Lifecycle::from_trace(&chain.world.obs().trace)
        .check_causal()
        .expect("causal certification");
}

/// The seam must be behaviorally invisible: a run driven through
/// `&mut dyn Driver` and a run driven through the concrete `World` API
/// (same seed) agree on every observable fact, including the trace.
#[test]
fn seam_hosted_run_is_fact_identical_to_concrete_run() {
    for seed in [7, 21, 63] {
        let mut through_seam = build_chain(seed);
        let server = through_seam.server;
        drive_through_seam(&mut through_seam.world, server);

        let mut concrete = build_chain(seed);
        let mut deadline = SimTime::ZERO;
        for _ in 0..240 {
            deadline += SimDuration::from_millis(500);
            concrete.world.run_until(deadline);
            if concrete
                .world
                .node_as::<SenderNode>(concrete.server)
                .core()
                .is_complete()
            {
                break;
            }
        }

        let a = facts(&through_seam.world, &through_seam);
        let b = facts(&concrete.world, &concrete);
        assert_eq!(
            a, b,
            "seed {seed}: dyn-Driver run diverged from concrete run"
        );
        assert!(a.completed_at.is_some(), "seed {seed}: never completed");
    }
}
