//! Failure transparency: when the sidecar path breaks mid-flow, every
//! protocol must fall back to (and perform like) its end-to-end baseline,
//! and must recover when the path heals.
//!
//! "Hosts can take advantage of [sidecars] when they are available, while
//! remaining completely functional when they are not" (paper §1). These
//! tests drive that claim end to end with deterministic fault scripts:
//! control blackouts, byte-corrupted quACK streams, and proxy
//! crash/restart — the same script is lowered onto the sidecar run and its
//! baseline twin, so goodput ratios compare identical fault weather.

use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::protocols::{FaultScript, ScenarioReport};

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Sidecar control datagrams vanish from t=50ms onward — the sidecar
/// session is dead but the data path is untouched.
fn control_blackout() -> FaultScript {
    FaultScript {
        fault_seed: 7,
        drop_control: Some((at(50), at(600_000))),
        ..FaultScript::default()
    }
}

/// Every sidecar payload gets up to 6 random bit flips for the whole run.
fn corruption_flood() -> FaultScript {
    FaultScript {
        fault_seed: 21,
        corrupt_control: Some((6, at(0), at(600_000))),
        ..FaultScript::default()
    }
}

/// The proxy dies mid-transfer and comes back half a second later.
fn crash_restart(from_ms: u64, until_ms: u64) -> FaultScript {
    FaultScript {
        fault_seed: 3,
        proxy_crash: Some((at(from_ms), at(until_ms))),
        ..FaultScript::default()
    }
}

fn goodput(r: &ScenarioReport) -> f64 {
    r.goodput_bps.unwrap_or(0.0)
}

/// Degraded-mode goodput must stay within 10% of the baseline twin under
/// the same faults (the ISSUE's failure-transparency bound).
fn assert_transparent(label: &str, sidecar: &ScenarioReport, baseline: &ScenarioReport) {
    assert!(
        sidecar.completion.is_some(),
        "{label}: faulted sidecar run never completed: {sidecar:?}"
    );
    assert!(
        baseline.completion.is_some(),
        "{label}: faulted baseline run never completed: {baseline:?}"
    );
    let ratio = goodput(sidecar) / goodput(baseline);
    assert!(
        ratio >= 0.9,
        "{label}: degraded sidecar goodput {:.2} Mbit/s is materially worse than \
         baseline {:.2} Mbit/s (ratio {ratio:.3})",
        goodput(sidecar) / 1e6,
        goodput(baseline) / 1e6,
    );
}

/// Like [`assert_transparent`], but averaged over seeds. Corruption scripts
/// leave the (garbled) control datagrams *on* the links, so they interleave
/// with data and shift the per-packet Bernoulli loss draws: the sidecar run
/// and its twin see different loss realizations of the same process. A
/// single seed can diverge well beyond the degradation cost being measured
/// (NewReno on a lossy path is realization-sensitive), so the transparency
/// bound is on the mean ratio, with a loose per-seed floor.
fn assert_transparent_mean(label: &str, runs: &[(ScenarioReport, ScenarioReport)]) {
    let mut sum = 0.0;
    for (i, (sidecar, baseline)) in runs.iter().enumerate() {
        assert!(
            sidecar.completion.is_some(),
            "{label}[{i}]: faulted sidecar run never completed: {sidecar:?}"
        );
        assert!(
            baseline.completion.is_some(),
            "{label}[{i}]: faulted baseline run never completed: {baseline:?}"
        );
        let ratio = goodput(sidecar) / goodput(baseline);
        assert!(
            ratio >= 0.7,
            "{label}[{i}]: ratio {ratio:.3} is below even the per-seed floor"
        );
        sum += ratio;
    }
    let mean = sum / runs.len() as f64;
    assert!(
        mean >= 0.9,
        "{label}: mean goodput ratio over {} seeds is {mean:.3} (< 0.9)",
        runs.len(),
    );
}

// ---------------------------------------------------------------- retx ----

#[test]
fn retx_control_blackout_degrades_to_baseline() {
    let scenario = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    let script = control_blackout();
    let side = scenario.run_sidecar_faulted(11, &script);
    // drop_control only touches sidecar datagrams, so the baseline twin is
    // oblivious to this script — faulted and plain baselines coincide.
    let base = scenario.run_baseline_faulted(11, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_transparent("retx/control-blackout", &side, &base);
}

#[test]
fn retx_corrupted_quacks_never_panic_or_break_the_flow() {
    let scenario = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    let script = corruption_flood();
    let runs: Vec<_> = [12, 13, 14]
        .map(|seed| {
            (
                scenario.run_sidecar_faulted(seed, &script),
                scenario.run_baseline_faulted(seed, &script),
            )
        })
        .into_iter()
        .collect();
    assert_transparent_mean("retx/corruption", &runs);
}

#[test]
fn retx_proxy_crash_mid_transfer_completes() {
    let scenario = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    // The sender-side proxy is on the forwarding path: its outage stalls
    // both runs equally; post-restart the sidecar session re-handshakes.
    let script = crash_restart(300, 800);
    let side = scenario.run_sidecar_faulted(13, &script);
    let base = scenario.run_baseline_faulted(13, &script);
    assert_transparent("retx/crash-restart", &side, &base);
}

// ----------------------------------------------------- ack reduction ----

#[test]
fn ack_reduction_control_blackout_degrades_to_baseline() {
    let scenario = AckReductionScenario {
        total_packets: 1_200,
        ..AckReductionScenario::default()
    };
    let script = control_blackout();
    let side = scenario.run_sidecar_faulted(21, &script);
    // The honest twin keeps the client's reduced-ACK cadence: degradation
    // swaps the *server* back to pure e2e control, but it cannot reach
    // across the network and reconfigure the client's ACK policy (that
    // would itself need a working control channel).
    let base = scenario.run_baseline_faulted(21, scenario.reduced_ack_every, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_transparent("ackred/control-blackout", &side, &base);
}

#[test]
fn ack_reduction_corrupted_quacks_never_panic_or_break_the_flow() {
    let scenario = AckReductionScenario {
        total_packets: 1_200,
        ..AckReductionScenario::default()
    };
    let script = corruption_flood();
    let side = scenario.run_sidecar_faulted(22, &script);
    let base = scenario.run_baseline_faulted(22, scenario.reduced_ack_every, &script);
    assert_transparent("ackred/corruption", &side, &base);
}

#[test]
fn ack_reduction_proxy_crash_recovers_the_session() {
    let scenario = AckReductionScenario {
        total_packets: 2_000,
        ..AckReductionScenario::default()
    };
    let script = crash_restart(200, 700);
    let side = scenario.run_sidecar_faulted(23, &script);
    let base = scenario.run_baseline_faulted(23, scenario.reduced_ack_every, &script);
    assert_transparent("ackred/crash-restart", &side, &base);
    // The 500ms outage outlives the liveness timeout, so the server must
    // have degraded; the restarted proxy's epoch announcement (or a hello
    // retry) re-enables it.
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert!(side.recoveries >= 1, "never recovered: {side:?}");
}

// ----------------------------------------------------------------- ccd ----

#[test]
fn ccd_control_blackout_degrades_to_baseline() {
    // Long enough that the one-off handover cost (~350ms of frozen steering
    // until the liveness timeout trips, then NewReno re-ramping from the
    // small steered window) amortizes below the 10% bound: after the
    // fallback both runs are byte-for-byte the same sender and forwarder.
    let scenario = CcdScenario {
        total_packets: 10_000,
        ..CcdScenario::default()
    };
    let script = control_blackout();
    let side = scenario.run_sidecar_faulted(31, &script);
    let base = scenario.run_baseline_faulted(31, &script);
    assert!(side.degradations >= 1, "never degraded: {side:?}");
    assert_transparent("ccd/control-blackout", &side, &base);
}

#[test]
fn ccd_corrupted_quacks_never_panic_or_break_the_flow() {
    let scenario = CcdScenario {
        total_packets: 1_200,
        ..CcdScenario::default()
    };
    let script = corruption_flood();
    let side = scenario.run_sidecar_faulted(32, &script);
    let base = scenario.run_baseline_faulted(32, &script);
    assert_transparent("ccd/corruption", &side, &base);
}

#[test]
fn ccd_proxy_crash_mid_transfer_completes() {
    let scenario = CcdScenario {
        total_packets: 1_200,
        ..CcdScenario::default()
    };
    let script = crash_restart(200, 700);
    let side = scenario.run_sidecar_faulted(33, &script);
    let base = scenario.run_baseline_faulted(33, &script);
    assert_transparent("ccd/crash-restart", &side, &base);
}

// ---------------------------------------------------------- adversary ----
//
// Active attackers: forged control datagrams, replayed captures, tampered
// copies, and a stateful firewall that eats idle control flows. With the
// authenticated channel enabled every protocol must hold its goodput at
// (or above) the e2e baseline under every attack — forged and replayed
// datagrams are rejected by the MAC/replay-window check before they can
// touch protocol state, and a starved channel degrades to the baseline.

/// Inject a well-formed forged quACK alongside every sidecar datagram.
fn forge_flood() -> FaultScript {
    FaultScript {
        fault_seed: 17,
        forge_control: Some((at(0), at(600_000))),
        ..FaultScript::default()
    }
}

/// Replay each captured sidecar datagram `copies` times, 5ms apart.
fn replay_storm(copies: u32) -> FaultScript {
    FaultScript {
        fault_seed: 18,
        replay_control: Some((copies, SimDuration::from_millis(5), at(0), at(600_000))),
        ..FaultScript::default()
    }
}

/// Deliver a bit-flipped copy next to every sidecar datagram.
fn tamper_flood(flips: u32) -> FaultScript {
    FaultScript {
        fault_seed: 19,
        tamper_control: Some((flips, at(0), at(600_000))),
        ..FaultScript::default()
    }
}

/// Stateful firewall: ctrl flows idle longer than `idle_ms` lose their
/// next datagram.
fn firewall(idle_ms: u64) -> FaultScript {
    FaultScript {
        fault_seed: 20,
        firewall_idle: Some((SimDuration::from_millis(idle_ms), at(0), at(600_000))),
        ..FaultScript::default()
    }
}

/// Forgery against the *legacy* (unauthenticated) wire: the forged quACK
/// parses cleanly and its bogus epoch pollutes the session. The protocols
/// must still survive it — epoch resync and supervision absorb the damage
/// without panics or a wedged flow. (The authenticated twin of this test
/// lives in `adversary` below and asserts rejection instead.)
#[test]
fn forged_quacks_never_wedge_an_unauthenticated_flow() {
    let script = forge_flood();
    let retx = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    let ackred = AckReductionScenario {
        total_packets: 1_200,
        ..AckReductionScenario::default()
    };
    let ccd = CcdScenario {
        total_packets: 1_200,
        ..CcdScenario::default()
    };
    let r = retx.run_sidecar_faulted(51, &script);
    assert!(r.completion.is_some(), "retx wedged: {r:?}");
    let a = ackred.run_sidecar_faulted(51, &script);
    assert!(a.completion.is_some(), "ackred wedged: {a:?}");
    let c = ccd.run_sidecar_faulted(51, &script);
    assert!(c.completion.is_some(), "ccd wedged: {c:?}");
}

#[cfg(feature = "auth")]
mod adversary {
    use super::*;
    use sidecar_proto::AuthConfig;

    fn auth() -> AuthConfig {
        AuthConfig::from_secret(0x5EC2_E7A1, 1)
    }

    /// Every attack datagram that reaches an authenticated receiver must be
    /// rejected (never decoded into protocol state): the run records auth
    /// rejections and the attack's injection counter is non-zero.
    #[cfg(feature = "obs")]
    fn assert_rejected(label: &str, report: &ScenarioReport, fault: &str) {
        assert!(
            report.metrics.counter(&format!("netsim.fault.{fault}")) > 0,
            "{label}: the {fault} attack never fired: {:?}",
            report.metrics
        );
        assert!(
            report.metrics.counter_sum("auth.rejected.") > 0,
            "{label}: no auth rejections under {fault}: {:?}",
            report.metrics
        );
    }

    #[cfg(not(feature = "obs"))]
    fn assert_rejected(_label: &str, _report: &ScenarioReport, _fault: &str) {}

    #[test]
    fn retx_holds_baseline_goodput_under_every_attack() {
        let scenario = RetxScenario {
            total_packets: 1_200,
            auth: Some(auth()),
            ..RetxScenario::default()
        };
        for (name, fault, script) in [
            ("forge", "forge", forge_flood()),
            ("replay", "replay", replay_storm(2)),
            ("tamper", "tamper", tamper_flood(4)),
        ] {
            let side = scenario.run_sidecar_faulted(52, &script);
            let base = scenario.run_baseline_faulted(52, &script);
            assert_transparent(&format!("retx/{name}"), &side, &base);
            assert_rejected(&format!("retx/{name}"), &side, fault);
        }
    }

    #[test]
    fn retx_firewalled_control_flow_degrades_to_baseline() {
        let scenario = RetxScenario {
            total_packets: 1_200,
            auth: Some(auth()),
            ..RetxScenario::default()
        };
        // Idle threshold below the quACK cadence: the firewall eats every
        // control datagram, which is a blackout by another name.
        let script = firewall(20);
        let side = scenario.run_sidecar_faulted(53, &script);
        let base = scenario.run_baseline_faulted(53, &script);
        assert!(side.degradations >= 1, "never degraded: {side:?}");
        assert_transparent("retx/firewall", &side, &base);
    }

    #[test]
    fn ackred_holds_baseline_goodput_under_every_attack() {
        let scenario = AckReductionScenario {
            total_packets: 1_200,
            auth: Some(auth()),
            ..AckReductionScenario::default()
        };
        for (name, fault, script) in [
            ("forge", "forge", forge_flood()),
            ("replay", "replay", replay_storm(2)),
            ("tamper", "tamper", tamper_flood(4)),
        ] {
            let side = scenario.run_sidecar_faulted(54, &script);
            let base = scenario.run_baseline_faulted(54, scenario.reduced_ack_every, &script);
            assert_transparent(&format!("ackred/{name}"), &side, &base);
            assert_rejected(&format!("ackred/{name}"), &side, fault);
        }
    }

    #[test]
    fn ccd_holds_baseline_goodput_under_every_attack() {
        // Long run for the same amortization reason as the blackout test:
        // if sustained rejection noise trips the error budget, the one-off
        // handover cost must wash out against the horizon.
        let scenario = CcdScenario {
            total_packets: 10_000,
            auth: Some(auth()),
            ..CcdScenario::default()
        };
        for (name, fault, script) in [
            ("forge", "forge", forge_flood()),
            ("replay", "replay", replay_storm(2)),
            ("tamper", "tamper", tamper_flood(4)),
        ] {
            let side = scenario.run_sidecar_faulted(55, &script);
            let base = scenario.run_baseline_faulted(55, &script);
            assert_transparent(&format!("ccd/{name}"), &side, &base);
            assert_rejected(&format!("ccd/{name}"), &side, fault);
        }
    }

    #[test]
    fn ccd_firewalled_control_flow_degrades_to_baseline() {
        let scenario = CcdScenario {
            total_packets: 10_000,
            auth: Some(auth()),
            ..CcdScenario::default()
        };
        let script = firewall(20);
        let side = scenario.run_sidecar_faulted(56, &script);
        let base = scenario.run_baseline_faulted(56, &script);
        assert!(side.degradations >= 1, "never degraded: {side:?}");
        assert_transparent("ccd/firewall", &side, &base);
    }

    #[test]
    fn adversarial_runs_are_deterministic() {
        let scenario = RetxScenario {
            total_packets: 600,
            auth: Some(auth()),
            ..RetxScenario::default()
        };
        for script in [
            forge_flood(),
            replay_storm(2),
            tamper_flood(4),
            firewall(20),
        ] {
            assert_eq!(
                scenario.run_sidecar_faulted(57, &script),
                scenario.run_sidecar_faulted(57, &script),
                "retx not deterministic under {script:?}"
            );
        }
    }
}

// -------------------------------------------------------- determinism ----

#[test]
fn faulted_runs_are_deterministic() {
    let retx = RetxScenario {
        total_packets: 600,
        ..RetxScenario::default()
    };
    let ackred = AckReductionScenario {
        total_packets: 600,
        ..AckReductionScenario::default()
    };
    let ccd = CcdScenario {
        total_packets: 600,
        ..CcdScenario::default()
    };
    for script in [
        control_blackout(),
        corruption_flood(),
        crash_restart(150, 500),
    ] {
        assert_eq!(
            retx.run_sidecar_faulted(42, &script),
            retx.run_sidecar_faulted(42, &script),
            "retx not deterministic under {script:?}"
        );
        assert_eq!(
            ackred.run_sidecar_faulted(42, &script),
            ackred.run_sidecar_faulted(42, &script),
            "ackred not deterministic under {script:?}"
        );
        assert_eq!(
            ccd.run_sidecar_faulted(42, &script),
            ccd.run_sidecar_faulted(42, &script),
            "ccd not deterministic under {script:?}"
        );
    }
}
