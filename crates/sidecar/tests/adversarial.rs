//! Adversarial-input robustness for the quACK consumer.
//!
//! The paper's §5 asks "how do we handle adversarial proxies?" — full
//! answers need authentication (out of scope for the sketch itself), but
//! the consumer must at minimum survive malformed, forged, replayed, and
//! corrupted quACKs without panicking, corrupting its mirror, or
//! fabricating losses, and must recover once honest quACKs resume. These
//! tests pin that contract down.

use sidecar_galois::Fp32;
use sidecar_netsim::rng::SimRng;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::{ProcessError, QuackConsumer, QuackProducer, SidecarConfig, SidecarMessage};

fn cfg() -> SidecarConfig {
    SidecarConfig {
        reorder_grace: SimDuration::from_millis(5),
        ..SidecarConfig::paper_default()
    }
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn quack_bytes(msg: SidecarMessage) -> (u32, Vec<u8>) {
    match msg {
        SidecarMessage::Quack { epoch, bytes } => (epoch, bytes),
        other => panic!("expected quack, got {other:?}"),
    }
}

/// A healthy exchange to set up state.
fn setup(n: u64) -> (QuackProducer<Fp32>, QuackConsumer<Fp32>) {
    let mut producer = QuackProducer::new(cfg());
    let mut consumer = QuackConsumer::new(cfg(), SimDuration::from_millis(5));
    for i in 0..n {
        let id = i * 101 + 3;
        consumer.record_sent(id, i, t(0));
        producer.observe(id);
    }
    (producer, consumer)
}

#[test]
fn wrong_length_bytes_rejected_cleanly() {
    let (_, mut consumer) = setup(10);
    for len in [0usize, 1, 81, 83, 4096] {
        let junk = vec![0xAAu8; len];
        assert_eq!(
            consumer.process_quack(t(10), 0, &junk),
            Err(ProcessError::Malformed),
            "len {len}"
        );
    }
    // State untouched: an honest quACK still settles everything.
    let (mut producer, consumer2) = setup(10);
    let _ = consumer2; // fresh pair for the happy path
    let (epoch, bytes) = quack_bytes(producer.emit());
    let report = consumer.process_quack(t(20), epoch, &bytes).unwrap();
    assert_eq!(report.received.len(), 10);
}

#[test]
fn non_canonical_power_sums_rejected() {
    let (_, mut consumer) = setup(5);
    // 82 bytes of 0xFF: every 32-bit sum is 0xFFFF_FFFF >= p.
    let forged = vec![0xFFu8; 82];
    assert_eq!(
        consumer.process_quack(t(10), 0, &forged),
        Err(ProcessError::Malformed)
    );
}

#[test]
fn replayed_quack_is_idempotent() {
    let (mut producer, mut consumer) = setup(30);
    // One packet missing.
    let extra = 99_999u64;
    consumer.record_sent(extra, 30, t(1));
    let (epoch, bytes) = quack_bytes(producer.emit());
    let r1 = consumer.process_quack(t(10), epoch, &bytes).unwrap();
    assert_eq!(r1.received.len(), 30);
    // Replay the identical quACK (attacker or network duplicate): count is
    // unchanged, so it re-processes harmlessly — no new verdicts appear.
    let r2 = consumer.process_quack(t(11), epoch, &bytes).unwrap();
    assert!(r2.received.is_empty());
    assert!(r2.newly_missing.len() <= 1); // the same straggler at most once
    assert_eq!(consumer.stats.confirmed_received, 30);
}

#[test]
fn forged_count_ahead_of_mirror_demands_reset_not_panic() {
    let (mut producer, mut consumer) = setup(10);
    // Attacker claims to have received far more than was ever sent: take a
    // legitimate quACK and graft an inflated count into the trailing c bits.
    let (epoch, mut bytes) = quack_bytes(producer.emit());
    let len = bytes.len();
    bytes[len - 2] = 0xFF;
    bytes[len - 1] = 0xF0;
    let result = consumer.process_quack(t(10), epoch, &bytes);
    assert!(
        matches!(
            result,
            Err(ProcessError::ThresholdExceeded { .. }) | Err(ProcessError::CountInconsistent)
        ),
        "got {result:?}"
    );
    // Recovery: coordinated reset, then honest operation resumes.
    let next = consumer.epoch() + 1;
    let _ = consumer.reset(next);
    producer.reset(next);
    for i in 0..5u64 {
        let id = i + 70_000;
        consumer.record_sent(id, i, t(20));
        producer.observe(id);
    }
    let (e, b) = quack_bytes(producer.emit());
    let report = consumer.process_quack(t(30), e, &b).unwrap();
    assert_eq!(report.received.len(), 5);
}

#[test]
fn random_bit_flips_never_panic_and_never_fabricate_losses_silently() {
    let mut rng = SimRng::new(0xBAD);
    for trial in 0..200u64 {
        let (mut producer, mut consumer) = setup(50);
        let (epoch, mut bytes) = quack_bytes(producer.emit());
        // Flip 1..8 random bits.
        let flips = 1 + (rng.next_u64() % 8) as usize;
        for _ in 0..flips {
            let bit = rng.below(bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        // Must not panic; any Ok result must not confirm losses for
        // delivered packets *immediately* (they would need grace expiry,
        // and a later honest quACK resurrects them first).
        match consumer.process_quack(t(10), epoch, &bytes) {
            Ok(_) | Err(_) => {}
        }
        // Honest follow-up: emit a fresh quACK covering one more packet.
        let id = 1_000_000 + trial;
        consumer.record_sent(id, 50, t(11));
        producer.observe(id);
        let (e, b) = quack_bytes(producer.emit());
        match consumer.process_quack(t(12), e, &b) {
            Ok(report) => {
                // Any limbo verdicts the corruption caused are resurrected
                // by the honest quACK before grace expires…
                let _ = report;
                let losses = consumer.poll_expired(t(20));
                assert!(
                    losses.is_empty(),
                    "trial {trial}: corrupted quACK caused {} false losses",
                    losses.len()
                );
            }
            Err(ProcessError::Stale) => {
                // A bit flip that inflated the count makes honest quACKs
                // look stale — a real (documented) DoS vector absent
                // authentication; the consumer stays consistent and a
                // reset recovers.
                let next = consumer.epoch() + 1;
                let _ = consumer.reset(next);
                producer.reset(next);
            }
            Err(_) => {}
        }
    }
}

/// With the authenticated channel, replayed quACKs die at the envelope:
/// the replay window rejects the duplicate sequence number before the
/// power-sum payload is ever decoded, so the consumer never even sees it.
#[cfg(feature = "auth")]
#[test]
fn replayed_sealed_quack_rejected_before_decode() {
    use sidecar_proto::{AuthConfig, AuthError, ChannelAuth};

    let psk = AuthConfig::from_secret(0xD00D_F00D, 9);
    let mut tx = ChannelAuth::new(psk.with_nonce(1));
    let mut rx = ChannelAuth::new(psk.with_nonce(2));

    let (mut producer, mut consumer) = setup(12);
    let (epoch, bytes) = quack_bytes(producer.emit());
    let msg = SidecarMessage::Quack {
        epoch,
        bytes: bytes.clone(),
    };
    let (tag, sealed) = tx.seal(&msg, 5);

    // First delivery verifies and yields the inner quACK…
    let (flow, opened) = rx.open(tag, &sealed).expect("honest quACK verifies");
    assert_eq!(flow, 5);
    let (e, b) = quack_bytes(opened);
    assert_eq!(
        consumer.process_quack(t(10), e, &b).unwrap().received.len(),
        12
    );

    // …but the byte-identical replay is killed by the replay window. The
    // payload is still perfectly well-formed — the error is `Replayed`,
    // not a decode failure, proving rejection happens before decode.
    assert_eq!(rx.open(tag, &sealed), Err(AuthError::Replayed));
    assert_eq!(rx.stats.rejected, 1);
    // The consumer's mirror never saw the replay: still exactly 12.
    assert_eq!(consumer.stats.confirmed_received, 12);
}

/// A forged plain-wire quACK (the strongest thing an attacker without the
/// PSK can build) is rejected as unauthenticated by an authenticated
/// receiver — again without touching the quACK decoder.
#[cfg(feature = "auth")]
#[test]
fn forged_and_tampered_datagrams_rejected_at_the_envelope() {
    use sidecar_proto::{AuthConfig, AuthError, ChannelAuth, AUTH_OVERHEAD};

    let psk = AuthConfig::from_secret(0xD00D_F00D, 9);
    let mut tx = ChannelAuth::new(psk.with_nonce(1));
    let mut rx = ChannelAuth::new(psk.with_nonce(2));

    // Forgery: well-formed legacy encoding, no MAC.
    let (mut producer, _) = setup(8);
    let forged = producer.emit();
    let (plain_tag, plain_body) = forged.encode_for_flow(5);
    assert_eq!(
        rx.open(plain_tag, &plain_body),
        Err(AuthError::NotAuthenticated(plain_tag))
    );

    // Tampering: flip one bit of a sealed datagram's inner payload.
    let (tag, mut sealed) = tx.seal(&producer.emit(), 5);
    sealed[AUTH_OVERHEAD + 3] ^= 0x40;
    assert_eq!(rx.open(tag, &sealed), Err(AuthError::BadMac));
    assert_eq!(rx.stats.rejected, 2);
    assert_eq!(rx.stats.accepted, 0);
}

#[test]
fn stale_count_dos_is_bounded_by_reset() {
    // Deliberate version of the DoS above: attacker replays a forged high
    // count; honest quACKs then read as stale until a reset.
    let (mut producer, mut consumer) = setup(10);
    let (epoch, mut bytes) = quack_bytes(producer.emit());
    let len = bytes.len();
    // Forge count = real + 100 (within threshold so it processes).
    let real_count = u16::from_be_bytes([bytes[len - 2], bytes[len - 1]]);
    let forged = real_count.wrapping_add(15);
    bytes[len - 2..].copy_from_slice(&forged.to_be_bytes());
    // The forged quACK claims 15 *extra* receptions: count ahead of the
    // mirror ⇒ inconsistency or garbage decode; either error or a stale
    // mark may result. Whatever happens must not panic…
    let _ = consumer.process_quack(t(10), epoch, &bytes);
    // …and after the (possibly needed) reset, the pair works again.
    let next = consumer.epoch() + 1;
    let _ = consumer.reset(next);
    producer.reset(next);
    for i in 0..3u64 {
        let id = i + 1;
        consumer.record_sent(id, i, t(20));
        producer.observe(id);
    }
    let (e, b) = quack_bytes(producer.emit());
    assert_eq!(
        consumer.process_quack(t(30), e, &b).unwrap().received.len(),
        3
    );
}
