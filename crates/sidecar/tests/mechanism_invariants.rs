//! Metric-asserting mechanism tests: one invariant per paper protocol,
//! pinned against the `ScenarioReport::metrics` snapshot rather than ad-hoc
//! node counters. These are the §2.1–§2.3 mechanisms stated as arithmetic
//! over the observability registry, so a refactor that silently changes
//! *how much* the mechanisms fire (not just whether the flow completes)
//! fails loudly here.
#![cfg(feature = "obs")]

use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::time::SimDuration;
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::manyflow::{ManyFlowProtocol, ManyFlowScenario};
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::FlowTableConfig;

/// §4.3 / §2.2: with `QuackFrequency::EveryPackets(2)` the proxy quACKs
/// once per two observed data packets — the quACK count tracks `packets/n`
/// within the one-packet tail, never the (reduced) ACK count.
#[test]
fn ackred_quacks_track_observed_packets_over_n() {
    let scenario = AckReductionScenario {
        total_packets: 600,
        ..AckReductionScenario::default()
    };
    let report = scenario.run_sidecar(11);
    assert!(report.completion.is_some(), "{report:?}");
    let m = &report.metrics;

    let observed = m.counter("quack.observed");
    let quacks = m.counter("sidecar.sent.quack");
    assert!(observed >= 600, "producer must see every data packet");
    // Every second observation forces an emit: |observed - 2·quacks| ≤ 1.
    assert!(
        (2 * quacks).abs_diff(observed) <= 1,
        "quACKs {quacks} must be ⌊observed/2⌋ of {observed}"
    );
    // The registry and the report count the same wire messages.
    assert_eq!(quacks, report.sidecar_messages);
    // Clean links: every quACK decodes, nothing burns the error budget.
    assert!(m.counter("quack.decoded") > 0);
    assert_eq!(m.counter("quack.err.threshold"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.malformed"), 0);
    assert_eq!(report.degradations, 0);
}

/// §2.3: the sender-side proxy only retransmits packets the quACK stream
/// proved missing, so in-network retransmissions are bounded by what the
/// simulator actually dropped — and on a 2% subpath they recover most of it.
#[test]
fn retx_proxy_retransmissions_bounded_by_simulated_drops() {
    let scenario = RetxScenario {
        total_packets: 800,
        ..RetxScenario::default()
    };
    let report = scenario.run_sidecar(13);
    assert!(report.completion.is_some(), "{report:?}");
    let m = &report.metrics;

    let dropped = m.counter_sum("netsim.drop.");
    assert!(dropped > 0, "2% subpath loss must drop packets");
    assert!(
        report.proxy_retransmissions <= dropped,
        "proxy retransmitted {} of only {dropped} drops",
        report.proxy_retransmissions
    );
    // The quACK feedback loop did the work: decodes happened, and the
    // confirmed-missing stream the proxy acted on is also drop-bounded.
    assert!(m.counter("quack.decoded") > 0);
    assert!(m.counter("quack.newly_missing") <= dropped);
    // Identifiers confirmed received never exceed identifiers observed.
    assert!(m.counter("quack.confirmed_received") <= m.counter("quack.observed"));
}

/// §2.1 / §3.2: on a lossless, uncongested path every quACK decodes below
/// the threshold — zero decode failures, zero packets reported missing.
#[test]
fn ccd_lossless_path_decodes_every_quack_below_threshold() {
    let scenario = CcdScenario {
        total_packets: 300,
        downstream: LinkConfig {
            loss: LossModel::None,
            // Deep queue so slow-start bursts cannot cause congestive
            // drops, which would legitimately show up as missing.
            queue_packets: 8_192,
            ..CcdScenario::default().downstream
        },
        buffer_cap: 8_192,
        ..CcdScenario::default()
    };
    let report = scenario.run_sidecar(17);
    assert!(report.completion.is_some(), "{report:?}");
    let m = &report.metrics;

    assert!(m.counter("quack.decoded") > 0, "{m:?}");
    assert_eq!(m.counter("quack.err.threshold"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.malformed"), 0);
    assert_eq!(m.counter("quack.err.wrong_epoch"), 0);
    assert_eq!(m.counter("quack.err.count_inconsistent"), 0);
    assert_eq!(
        m.counter("quack.newly_missing"),
        0,
        "nothing was dropped, so nothing may be reported missing: {m:?}"
    );
    assert_eq!(m.counter_sum("netsim.drop."), 0);
    // Both supervised consumers (server + proxy) handshook into Active and
    // stayed there.
    assert_eq!(report.degradations, 0);
    assert!(m.counter("supervisor.transitions") >= 2);
    assert!(m.counter("sidecar.handshake.accepted") >= 2);
    assert_eq!(m.counter("sidecar.handshake.rejected"), 0);
    // The proxy's flow table held the single flow for the whole run.
    assert!(m.counter("flowtable.created") >= 1, "{m:?}");
    assert_eq!(m.counter("flowtable.evicted.idle"), 0, "{m:?}");
    assert_eq!(m.counter("flowtable.evicted.capacity"), 0, "{m:?}");
}

/// DESIGN §10: the flow table evicts only on idle expiry or capacity
/// pressure. A lossless single-flow transfer neither idles mid-flight nor
/// pressures the default 8 × 64 table, so both eviction counters must stay
/// at zero for every protocol — a nonzero count here means per-flow quACK
/// state was silently dropped and rebuilt behind a healthy flow's back.
#[test]
fn flow_table_never_evicts_in_lossless_scenarios() {
    let retx = RetxScenario {
        total_packets: 400,
        subpath: LinkConfig {
            loss: LossModel::None,
            ..RetxScenario::default().subpath
        },
        ..RetxScenario::default()
    };
    let ackred = AckReductionScenario {
        total_packets: 400,
        ..AckReductionScenario::default() // both links lossless by default
    };
    for (label, report) in [
        ("retx", retx.run_sidecar(19)),
        ("ackred", ackred.run_sidecar(23)),
    ] {
        assert!(report.completion.is_some(), "{label}: {report:?}");
        let m = &report.metrics;
        assert_eq!(m.counter_sum("netsim.drop."), 0, "{label}: {m:?}");
        assert!(
            m.counter("flowtable.created") >= 1,
            "{label}: the proxy must route through the flow table: {m:?}"
        );
        assert_eq!(m.counter("flowtable.evicted.idle"), 0, "{label}: {m:?}");
        assert_eq!(m.counter("flowtable.evicted.capacity"), 0, "{label}: {m:?}");
        assert_eq!(m.counter("sidecar.flow_mismatch"), 0, "{label}: {m:?}");
    }
}

/// ISSUE 8 / DESIGN §14: a lossless 10k-flow run through a
/// [`FlowTableConfig::sized_for`] slab must finish with **zero evictions
/// and zero threshold failures** — the engine's capacity claim stated as
/// arithmetic. ACK reduction carries the invariant (the lightest proxy
/// tier, so 10k flows stay affordable in a debug build); links are
/// provisioned so the only possible eviction causes would be table bugs:
/// deep queues absorb the 10k-flow slow-start burst, the idle timeout
/// outlives the horizon, and `sized_for`'s 2× headroom must absorb the
/// hashed shard imbalance.
#[test]
fn lossless_10k_flow_run_has_zero_evictions_and_threshold_failures() {
    const FLOWS: u32 = 10_000;
    let mut s = ManyFlowScenario::new(ManyFlowProtocol::AckReduction, FLOWS);
    s.packets_per_flow = 8;
    s.table = FlowTableConfig::sized_for(FLOWS as usize, SimDuration::from_secs(300));
    s.trunk = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(25),
        queue_packets: 131_072,
        ..LinkConfig::default()
    };
    s.edge = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(2),
        queue_packets: 131_072,
        ..s.edge
    };
    s.horizon = SimDuration::from_secs(60);
    let report = s.run();
    let m = &report.metrics;

    assert_eq!(report.completed, FLOWS, "every flow must finish");
    assert_eq!(
        m.counter_sum("netsim.drop."),
        0,
        "the run must actually be lossless: {m:?}"
    );
    // The headline invariant: a sized-for table under a lossless population
    // never sheds state…
    assert_eq!(report.evictions_idle, 0, "{report:?}");
    assert_eq!(report.evictions_capacity, 0, "{report:?}");
    assert_eq!(report.live_flows_at_end, FLOWS as usize);
    assert_eq!(m.counter("flowtable.created"), FLOWS as u64);
    // …and no sketch ever overflows or misdecodes.
    assert!(m.counter("quack.decoded") > 0);
    assert_eq!(m.counter("quack.err.threshold"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.malformed"), 0);
    assert_eq!(m.counter("quack.err.count_inconsistent"), 0);
}

/// ISSUE 8: under deliberate overcommit (24 flows through a 2×4 table),
/// every capacity-evicted flow's next packet rebuilds a fresh session and
/// its subsequent quACK stream resyncs **cleanly** — consumers may see the
/// benign `stale` outcome while counts catch up, but never a decode error
/// (threshold / malformed / wrong-epoch / count-inconsistent), and every
/// flow still completes via end-to-end recovery.
#[test]
fn overcommitted_table_resyncs_evicted_flows_without_decode_errors() {
    const FLOWS: u32 = 24;
    let mut s = ManyFlowScenario::new(ManyFlowProtocol::AckReduction, FLOWS);
    s.packets_per_flow = 32;
    s.horizon = SimDuration::from_secs(30);
    s.table = FlowTableConfig {
        shards: 2,
        per_shard: 4,
        idle_timeout: SimDuration::from_secs(2),
    };
    let report = s.run();
    let m = &report.metrics;

    assert!(
        report.evictions_capacity > 0,
        "overcommit must force LRU evictions: {report:?}"
    );
    assert!(
        m.counter("flowtable.created") > FLOWS as u64,
        "evicted flows must return and rebuild sessions: {m:?}"
    );
    assert_eq!(report.completed, FLOWS, "{report:?}");
    // Clean resync, never a decode error.
    assert_eq!(m.counter("quack.err.threshold"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.malformed"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.wrong_epoch"), 0, "{m:?}");
    assert_eq!(m.counter("quack.err.count_inconsistent"), 0, "{m:?}");
    // One supervisor transition per flow (Handshaking → Active): no flow
    // ever fell back to degraded mode over an eviction.
    assert_eq!(m.counter("supervisor.transitions"), FLOWS as u64, "{m:?}");
}
