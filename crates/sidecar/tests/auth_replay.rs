//! Replay-window property tests (RFC 4303-style sliding window).
//!
//! The window is the piece of the authenticated channel that turns "the
//! MAC verifies" into "and we have never accepted this datagram before":
//! every in-window sequence number is accepted exactly once, duplicates
//! are rejected as replays, and anything older than the window is refused
//! outright (`Stale`) rather than tracked forever.
#![cfg(feature = "auth")]

use proptest::prelude::*;
use sidecar_proto::{AuthError, ReplayWindow, REPLAY_WINDOW};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Monotonically increasing sequences are always accepted (accept-once,
    /// in order — the common no-loss, no-reorder case).
    #[test]
    fn strictly_increasing_sequences_all_accepted(
        start in 1u64..u64::MAX / 2,
        gaps in proptest::collection::vec(1u64..200, 1..64),
    ) {
        let mut w = ReplayWindow::new();
        let mut seq = start;
        for gap in gaps {
            prop_assert_eq!(w.check_and_update(seq), Ok(()));
            seq += gap;
        }
    }

    /// Every accepted in-window sequence number is rejected as `Replayed`
    /// the second time, regardless of how the first pass was ordered.
    #[test]
    fn second_presentation_is_rejected_as_replay(
        base in 1u64..u64::MAX - 2 * REPLAY_WINDOW,
        mut offsets in proptest::collection::vec(0u64..REPLAY_WINDOW, 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        offsets.sort_unstable();
        offsets.dedup();
        // Deterministic Fisher–Yates so the first pass arrives reordered.
        let mut order = offsets.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut w = ReplayWindow::new();
        for &off in &order {
            prop_assert_eq!(w.check_and_update(base + off), Ok(()), "first pass, off {}", off);
        }
        for &off in &order {
            prop_assert_eq!(
                w.check_and_update(base + off),
                Err(AuthError::Replayed),
                "second pass, off {}", off
            );
        }
    }

    /// Sequence numbers at or beyond a full window behind the newest are
    /// rejected as `Stale` — even if they were never seen.
    #[test]
    fn far_behind_sequences_are_stale(
        newest in 2 * REPLAY_WINDOW..u64::MAX / 2,
        lag in 0u64..1000,
    ) {
        let mut w = ReplayWindow::new();
        prop_assert_eq!(w.check_and_update(newest), Ok(()));
        let old = newest - REPLAY_WINDOW - lag.min(newest - REPLAY_WINDOW - 1);
        prop_assert_eq!(w.check_and_update(old), Err(AuthError::Stale));
    }

    /// Advancing the window slides unseen slots out of reach: a sequence
    /// that *would* have been accepted becomes stale once the newest seq
    /// moves a full window past it, while near-behind unseen slots still
    /// accept exactly once.
    #[test]
    fn window_advance_expires_unseen_slots(
        base in REPLAY_WINDOW..u64::MAX / 2,
        jump in 0u64..3 * REPLAY_WINDOW,
    ) {
        let mut w = ReplayWindow::new();
        prop_assert_eq!(w.check_and_update(base), Ok(()));
        let newest = base + REPLAY_WINDOW + jump;
        prop_assert_eq!(w.check_and_update(newest), Ok(()));
        // `base` is now >= one full window behind `newest`.
        prop_assert_eq!(w.check_and_update(base), Err(AuthError::Stale));
        // An unseen slot just inside the window is still accepted once…
        let inside = newest - 1;
        prop_assert_eq!(w.check_and_update(inside), Ok(()));
        // …and only once.
        prop_assert_eq!(w.check_and_update(inside), Err(AuthError::Replayed));
    }
}

/// Sequence number 0 is reserved (sealers start at 1): always stale.
#[test]
fn zero_sequence_is_always_stale() {
    let mut w = ReplayWindow::new();
    assert_eq!(w.check_and_update(0), Err(AuthError::Stale));
    assert_eq!(w.check_and_update(5), Ok(()));
    assert_eq!(w.check_and_update(0), Err(AuthError::Stale));
}
