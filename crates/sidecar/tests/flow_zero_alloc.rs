//! Steady-state zero-allocation proof for the slab flow engine at 10k
//! flows.
//!
//! A counting global allocator wraps the system allocator; the test warms a
//! 10k-flow table past every capacity plateau (slot arena, open-addressed
//! index, fold-buffer storage, sweep scratch vector, per-session quACK
//! burst buffers), snapshots the allocation counter, then runs several
//! rounds of the three hot operations — slot lookup, slot-bucketed batched
//! folds, and idle eviction — and requires the counter unchanged: the slab
//! recycles slots through its free list, the fold buffer sorts in place and
//! reuses its scratch, and `sweep_idle_into` appends into a caller-warmed
//! vector.
//!
//! It also pins the arena's measured bytes/flow under the documented bound
//! (DESIGN.md §14): the slab's per-flow overhead must stay a small
//! constant, or 100k-flow deployments quietly bloat.
//!
//! This file holds exactly one test: the harness runs test files in one
//! process per file but multiple tests per process on worker threads, and a
//! concurrent test's allocations would race the counter.

use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::FlowId;
use sidecar_proto::{FlowTable, FlowTableConfig, FoldBuffer, QuackProducer, SidecarConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point that can acquire memory.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const FLOWS: usize = 10_000;

/// Documented arena overhead ceiling (also stated in DESIGN.md §14): slot
/// bookkeeping (flow id, clocks, generation, LRU links) plus the inline
/// session struct, excluding session-owned heap (sketch vectors are counted
/// by the warmup instead — they are per-flow one-time allocations).
const BYTES_PER_FLOW_BOUND: usize = 512;

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Deterministic per-flow packet identifiers, disjoint across flows.
fn id_for(flow: u32, seq: u64) -> u64 {
    (flow as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(seq)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(1)
}

/// One full pass over the population: look every flow up by id, buffer one
/// identifier per packet through the slot-bucketed fold path, flush on the
/// buffer's own cadence, and run a (mostly empty) idle sweep — the exact
/// shape of a proxy's steady state between quACK emissions.
fn steady_round(
    table: &mut FlowTable<QuackProducer<Fp32>>,
    folds: &mut FoldBuffer,
    sweep_out: &mut Vec<(FlowId, QuackProducer<Fp32>)>,
    round: u64,
    base_ms: u64,
) {
    for flow in 0..FLOWS as u32 {
        let now = t(base_ms + flow as u64 % 7);
        let (created, slot) = table.ensure_slot(FlowId(flow), now, || unreachable!("warmed flow"));
        assert!(!created);
        if folds.push(slot, id_for(flow, round)) {
            folds.flush(table, |_, producer, ids| {
                producer.observe_batch(ids);
            });
        }
    }
    folds.flush(table, |_, producer, ids| {
        producer.observe_batch(ids);
    });
    // Nothing is idle mid-round; the sweep must still be free.
    sweep_out.clear();
    table.sweep_idle_into(t(base_ms + 8), sweep_out);
    assert!(sweep_out.is_empty(), "no flow may be idle mid-round");
}

#[test]
fn steady_state_flow_engine_does_not_allocate() {
    let idle = SimDuration::from_secs(2);
    let mut table: FlowTable<QuackProducer<Fp32>> =
        FlowTable::new(FlowTableConfig::sized_for(FLOWS, idle));
    let cfg = SidecarConfig::paper_default();
    let mut folds = FoldBuffer::with_capacity(FoldBuffer::DEFAULT_CAPACITY);
    let mut sweep_out: Vec<(FlowId, QuackProducer<Fp32>)> = Vec::with_capacity(FLOWS);

    // Warmup: create the whole population (grows the arena to its plateau
    // and allocates each producer's sketch), run two full fold/sweep
    // rounds (grows the fold buffer and its scratch), and pre-size the
    // sweep vector.
    for flow in 0..FLOWS as u32 {
        let (created, _) = table.ensure_slot(FlowId(flow), t(0), || QuackProducer::new(cfg));
        assert!(created);
    }
    assert_eq!(table.len(), FLOWS, "sized_for must hold the population");
    steady_round(&mut table, &mut folds, &mut sweep_out, 0, 10);
    steady_round(&mut table, &mut folds, &mut sweep_out, 1, 20);

    let baseline = ALLOCS.load(Ordering::Relaxed);

    // Steady state: lookups + batched folds + sweeps, three rounds.
    for round in 0..3u64 {
        steady_round(
            &mut table,
            &mut folds,
            &mut sweep_out,
            2 + round,
            30 + round * 10,
        );
    }

    // Eviction leg, still inside the measured window: half the population
    // goes idle and is reclaimed through the warmed sweep vector; the
    // survivors were touched recently enough to stay.
    let survivors_touched_at = 3_000;
    for flow in (0..FLOWS as u32).step_by(2) {
        let (created, _) = table.ensure_slot(FlowId(flow), t(survivors_touched_at), || {
            unreachable!("warmed flow")
        });
        assert!(!created);
    }
    sweep_out.clear();
    table.sweep_idle_into(t(survivors_touched_at + 100), &mut sweep_out);
    assert_eq!(
        sweep_out.len(),
        FLOWS / 2,
        "exactly the untouched half is idle"
    );
    assert_eq!(table.len(), FLOWS - FLOWS / 2);

    let steady = ALLOCS.load(Ordering::Relaxed) - baseline;
    assert_eq!(
        steady, 0,
        "steady-state lookup/fold/evict at {FLOWS} flows must not allocate"
    );

    // The arena's measured per-flow footprint stays under the documented
    // bound.
    let bytes = table.bytes_per_flow();
    assert!(
        bytes > 0 && bytes <= BYTES_PER_FLOW_BOUND,
        "bytes/flow {bytes} exceeds the documented bound {BYTES_PER_FLOW_BOUND}"
    );
}
