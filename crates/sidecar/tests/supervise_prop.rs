//! Property tests for the supervision state machine: arbitrary interleavings
//! of feedback, errors, sends, and polls must only ever walk legal edges of
//! the Connecting → Active ⇄ Degraded diagram, and the transition log must
//! agree with the observable state and counters at every step.
//!
//! The transition log is always on (it feeds the obs event trace when that
//! feature is enabled, and is bounded otherwise), so this suite runs on both
//! feature legs.

use proptest::prelude::*;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::config::SupervisionConfig;
use sidecar_proto::endpoint::ProcessError;
use sidecar_proto::supervise::{Supervisor, SupervisorState, Transition};

fn cfg() -> SupervisionConfig {
    SupervisionConfig {
        hello_timeout: SimDuration::from_millis(100),
        hello_backoff_cap: SimDuration::from_millis(400),
        liveness_timeout: SimDuration::from_millis(300),
        degrade_after: 3,
    }
}

/// Is `from → to` an edge the diagram allows? Connecting can only be left
/// (never re-entered), Active and Degraded alternate, and self-edges (e.g.
/// a redundant Active → Active re-entry) must never be recorded.
fn legal_edge(from: SupervisorState, to: SupervisorState) -> bool {
    use SupervisorState::*;
    matches!(
        (from, to),
        (Connecting, Active) | (Connecting, Degraded) | (Active, Degraded) | (Degraded, Active)
    )
}

/// One scripted stimulus; `dt_ms` advances the clock before it applies.
fn apply(s: &mut Supervisor, op: u8, now: SimTime) {
    match op % 6 {
        0 => {
            let _ = s.poll(now, true);
        }
        1 => {
            let _ = s.poll(now, false);
        }
        2 => {
            let _ = s.on_feedback_ok(now);
        }
        3 => {
            let _ = s.on_handshake_ack(now);
        }
        4 => s.note_send(now),
        _ => {
            let err = match op / 6 {
                0 => ProcessError::Stale,
                1 => ProcessError::Malformed,
                _ => ProcessError::CountInconsistent,
            };
            let _ = s.on_quack_error(&err, now);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving yields a contiguous chain of legal edges starting at
    /// Connecting, with monotone timestamps, and the drained log always
    /// agrees with the live state and the degradation/recovery counters.
    #[test]
    fn transition_log_walks_only_legal_edges(
        ops in proptest::collection::vec((0u8..18, 1u64..500), 1..120),
    ) {
        let mut s = Supervisor::new(cfg());
        let mut now = SimTime::ZERO;
        let mut log: Vec<Transition> = Vec::new();
        for &(op, dt_ms) in &ops {
            now += SimDuration::from_millis(dt_ms);
            apply(&mut s, op, now);
            // Drain every step: the full history stays contiguous even
            // though the undrained log is bounded.
            log.extend(s.take_transitions());
        }

        let mut state = SupervisorState::Connecting;
        let mut last_at = SimTime::ZERO;
        let mut degradations = 0u64;
        let mut recoveries = 0u64;
        for t in &log {
            prop_assert!(
                legal_edge(t.from, t.to),
                "illegal edge {:?} -> {:?}", t.from, t.to
            );
            prop_assert_eq!(t.from, state, "chain must be contiguous");
            prop_assert!(t.at >= last_at, "timestamps must be monotone");
            state = t.to;
            last_at = t.at;
            if t.to == SupervisorState::Degraded {
                degradations += 1;
            }
            if t.from == SupervisorState::Degraded {
                recoveries += 1;
            }
        }
        prop_assert_eq!(state, s.state(), "log must reach the live state");
        prop_assert_eq!(degradations, s.stats.degradations);
        prop_assert_eq!(recoveries, s.stats.recoveries);
        prop_assert_eq!(s.enabled(), state != SupervisorState::Degraded);
    }

    /// After any history, a session that owes feedback and then hears
    /// nothing for a full liveness timeout degrades at the next poll — and
    /// that degradation shows up as a Degraded-bound edge in the log.
    #[test]
    fn liveness_deadline_always_produces_a_degraded_event(
        ops in proptest::collection::vec((0u8..18, 1u64..500), 0..80),
    ) {
        let mut s = Supervisor::new(cfg());
        let mut now = SimTime::ZERO;
        for &(op, dt_ms) in &ops {
            now += SimDuration::from_millis(dt_ms);
            apply(&mut s, op, now);
        }
        let _ = s.take_transitions();

        // Establish an active session with feedback owed, then go silent.
        now += SimDuration::from_millis(1);
        s.on_feedback_ok(now);
        s.note_send(now + SimDuration::from_millis(1));
        let deadline = now + cfg().liveness_timeout + SimDuration::from_millis(1);
        let outcome = s.poll(deadline, true);
        prop_assert!(outcome.degraded_now);
        prop_assert!(s.is_degraded());
        let log = s.take_transitions();
        let last = log.last().expect("degradation must be logged");
        prop_assert_eq!(last.to, SupervisorState::Degraded);
        prop_assert_eq!(last.at, deadline);
    }
}
