//! Property + golden tests for the cross-node flight recorder.
//!
//! The lifecycle reconstruction claims three causal invariants over any
//! seeded scenario (ISSUE: quACK→retx reaction attribution):
//!
//! 1. `check_causal` certifies every complete reconstruction — steps
//!    time-ordered, hop accounting resolves every accepted transmission to
//!    delivery xor drop (modulo the one legitimate on-the-wire packet at
//!    the simulation cutoff);
//! 2. every in-network `ProxyRetx` is *caused*: a `DecodeMissing` with the
//!    same `TraceId` precedes it — proxies never retransmit spontaneously;
//! 3. the reconstruction is deterministic in `(scenario, seed)` — pinned
//!    byte-for-byte by a golden `explain` fixture, regenerated with
//!    `UPDATE_GOLDEN=1 cargo test -p sidecar-proto --test lifecycle_prop`.
#![cfg(feature = "obs")]

use proptest::prelude::*;
use sidecar_netsim::link::LossModel;
use sidecar_obs::{DropCause, Event, Lifecycle, TraceClass};
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use std::path::PathBuf;

/// Ring capacity large enough that no property run ever truncates.
const TRACE_CAP: usize = 1 << 20;

fn retx_lifecycle(seed: u64, p: f64, total: u64) -> Lifecycle {
    let mut scenario = RetxScenario {
        total_packets: total,
        trace_capacity: Some(TRACE_CAP),
        ..RetxScenario::default()
    };
    scenario.subpath.loss = LossModel::Bernoulli { p };
    Lifecycle::from_trace(&scenario.run_sidecar(seed).trace)
}

/// Scans every timeline for the reaction-causality and delivery-xor-drop
/// invariants, independently of `check_causal`'s own bookkeeping.
fn assert_causal_by_hand(lc: &Lifecycle) -> Result<(), TestCaseError> {
    for tl in lc.timelines() {
        let mut first_decode = None;
        let mut enq = 0u64;
        let mut resolved = 0u64;
        for &(at, ref event) in &tl.steps {
            match *event {
                Event::DecodeMissing { .. } => {
                    first_decode.get_or_insert(at);
                }
                Event::ProxyRetx { .. } => {
                    prop_assert!(
                        first_decode.is_some_and(|d| d <= at),
                        "{}: proxy retx at {at}ns without preceding decode_missing",
                        tl.id
                    );
                }
                Event::HopEnqueue { .. } => enq += 1,
                Event::HopDeliver { .. } => resolved += 1,
                Event::HopDrop {
                    cause: DropCause::NodeDown,
                    ..
                } => resolved += 1,
                _ => {}
            }
            prop_assert!(
                resolved <= enq,
                "{}: more resolutions than enqueues at {at}ns",
                tl.id
            );
        }
        let trailing_enqueue = matches!(tl.steps.last(), Some(&(_, Event::HopEnqueue { .. })));
        prop_assert!(
            resolved == enq || (resolved + 1 == enq && trailing_enqueue),
            "{}: {enq} enqueues but {resolved} resolutions",
            tl.id
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded lossy retx run reconstructs complete, causally valid
    /// timelines: certification passes and the hand-rolled scan agrees.
    #[test]
    fn retx_lifecycle_is_causal(
        seed in any::<u64>(),
        loss_bp in 0u32..800,
        total in 60u64..200,
    ) {
        let lc = retx_lifecycle(seed, f64::from(loss_bp) / 10_000.0, total);
        prop_assert!(lc.is_complete(), "analysis ring must not truncate");
        prop_assert!(!lc.is_empty(), "a run must leave timelines");
        lc.check_causal().map_err(TestCaseError::Fail)?;
        assert_causal_by_hand(&lc)?;
        // Reaction latencies are positive by construction (decode ≤ retx).
        for ns in lc.proxy_reaction_latencies() {
            prop_assert!(ns < 10_000_000_000, "implausible reaction {ns}ns");
        }
    }

    /// Same certification over the ccd topology, whose reaction chain is
    /// e2e (decode at the server → transport retx under a new pn): the
    /// lost-pn → data-unit join must produce a latency for every reacted
    /// loss without violating causality.
    #[test]
    fn ccd_lifecycle_is_causal(seed in any::<u64>(), loss_bp in 0u32..500) {
        let p = f64::from(loss_bp) / 10_000.0;
        let mut scenario = CcdScenario {
            total_packets: 120,
            trace_capacity: Some(TRACE_CAP),
            ..CcdScenario::default()
        };
        scenario.upstream.loss = LossModel::Bernoulli { p };
        let lc = Lifecycle::from_trace(&scenario.run_sidecar(seed).trace);
        prop_assert!(lc.is_complete());
        lc.check_causal().map_err(TestCaseError::Fail)?;
        assert_causal_by_hand(&lc)?;
    }
}

// ---------------------------------------------------------------------------
// Golden fixture: the reconstruction and `explain` rendering are part of the
// deterministic surface, byte-stable for a fixed (scenario, seed).
// ---------------------------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_golden(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "lifecycle reconstruction diverged from {} — if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn explain_output_matches_golden() {
    let run = || {
        let lc = retx_lifecycle(7, 0.05, 120);
        lc.check_causal().expect("golden scenario must be causal");
        // Deterministic selection: the first (lowest TraceId) data packet
        // the proxy retransmitted, plus the run-level attribution summary.
        let retransmitted = lc
            .data_timelines()
            .find(|tl| tl.proxy_retransmitted())
            .expect("5% subpath loss over 120 packets must trigger a proxy retx");
        let mut out = String::new();
        out.push_str(&format!(
            "timelines={} data={} in_flight_at_end={}\n",
            lc.len(),
            lc.data_timelines().count(),
            lc.in_flight_at_end(),
        ));
        for (&(node, iface), &count) in &lc.drop_segments() {
            out.push_str(&format!("drops node={node} iface={iface} count={count}\n"));
        }
        let latencies = lc.proxy_reaction_latencies();
        out.push_str(&format!("proxy_reactions={}\n\n", latencies.len()));
        out.push_str(&lc.explain(retransmitted.id));
        out
    };
    let got = run();
    // Determinism first: the fixture only means something if two in-process
    // replays agree byte-for-byte.
    assert_eq!(run(), got);
    assert!(
        got.contains("proxy_retx"),
        "selected packet was retransmitted"
    );
    assert_golden("golden_lifecycle.explain", &got);
}

#[test]
fn truncated_ring_refuses_certification() {
    // A deliberately tiny ring over the same scenario must evict records;
    // the reconstruction then refuses completeness claims end to end.
    let mut scenario = RetxScenario {
        total_packets: 200,
        trace_capacity: Some(64),
        ..RetxScenario::default()
    };
    scenario.subpath.loss = LossModel::Bernoulli { p: 0.05 };
    let lc = Lifecycle::from_trace(&scenario.run_sidecar(3).trace);
    assert!(!lc.is_complete());
    assert!(lc.dropped_records() > 0);
    let err = lc.check_causal().unwrap_err();
    assert!(err.contains("truncated"), "got: {err}");
}

#[test]
fn ctrl_and_data_keyspaces_are_disjoint() {
    let lc = retx_lifecycle(11, 0.02, 80);
    let ctrl = lc
        .timelines()
        .filter(|tl| tl.id.class == TraceClass::Ctrl)
        .count();
    let data = lc.data_timelines().count();
    assert!(ctrl > 0, "sidecar runs emit stamped control datagrams");
    assert!(data > 0);
    assert_eq!(ctrl + data, lc.len());
}
