//! Fuzz-style property tests: sidecar message parsing and quACK processing
//! must be total (no panics) over arbitrary byte soup.

use proptest::prelude::*;
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::{QuackConsumer, SidecarConfig, SidecarMessage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Message decoding is total over arbitrary (tag, body) pairs, and every
    /// successfully decoded message re-encodes to the same bytes.
    #[test]
    fn message_decode_is_total_and_roundtrips(tag in any::<u8>(),
                                              body in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(msg) = SidecarMessage::decode(tag, &body) {
            let (tag2, body2) = msg.encode();
            prop_assert_eq!(tag2, tag);
            prop_assert_eq!(body2, body);
        }
    }

    /// The consumer survives arbitrary quACK bytes at arbitrary epochs with
    /// arbitrary prior state, without panicking.
    #[test]
    fn consumer_processes_arbitrary_bytes_without_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        epoch in 0u32..3,
        prior in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..40),
    ) {
        let cfg = SidecarConfig {
            reorder_grace: SimDuration::from_millis(1),
            ..SidecarConfig::paper_default()
        };
        let mut consumer: QuackConsumer<Fp32> = QuackConsumer::new(cfg, SimDuration::from_millis(1));
        for (i, &(id, _)) in prior.iter().enumerate() {
            consumer.record_sent(id, i as u64, SimTime::ZERO);
        }
        let _ = consumer.process_quack(SimTime::ZERO + SimDuration::from_millis(5), epoch, &bytes);
        let _ = consumer.poll_expired(SimTime::ZERO + SimDuration::from_millis(50));
    }

    /// Wire roundtrip of every message variant.
    #[test]
    fn every_variant_roundtrips(epoch in any::<u32>(),
                                payload in proptest::collection::vec(any::<u8>(), 0..128),
                                interval_ns in any::<u64>()) {
        let variants = vec![
            SidecarMessage::Quack { epoch, bytes: payload.clone() },
            SidecarMessage::Configure { interval: SimDuration::from_nanos(interval_ns) },
            SidecarMessage::Reset { epoch },
            SidecarMessage::Hello {
                threshold: epoch,
                id_bits: payload.first().copied().unwrap_or(32),
                count_bits: payload.last().copied().unwrap_or(16),
                interval: SimDuration::from_nanos(interval_ns),
            },
        ];
        for msg in variants {
            let (tag, body) = msg.encode();
            prop_assert_eq!(SidecarMessage::decode(tag, &body).unwrap(), msg);
        }
    }
}
