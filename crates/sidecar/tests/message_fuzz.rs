//! Fuzz-style property tests: sidecar message parsing and quACK processing
//! must be total (no panics) over arbitrary byte soup.

use proptest::prelude::*;
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::{QuackConsumer, SidecarConfig, SidecarMessage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Message decoding is total over arbitrary (tag, body) pairs, and every
    /// successfully decoded message re-encodes to the same bytes.
    #[test]
    fn message_decode_is_total_and_roundtrips(tag in any::<u8>(),
                                              body in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(msg) = SidecarMessage::decode(tag, &body) {
            let (tag2, body2) = msg.encode();
            prop_assert_eq!(tag2, tag);
            prop_assert_eq!(body2, body);
        }
    }

    /// The consumer survives arbitrary quACK bytes at arbitrary epochs with
    /// arbitrary prior state, without panicking.
    #[test]
    fn consumer_processes_arbitrary_bytes_without_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        epoch in 0u32..3,
        prior in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..40),
    ) {
        let cfg = SidecarConfig {
            reorder_grace: SimDuration::from_millis(1),
            ..SidecarConfig::paper_default()
        };
        let mut consumer: QuackConsumer<Fp32> = QuackConsumer::new(cfg, SimDuration::from_millis(1));
        for (i, &(id, _)) in prior.iter().enumerate() {
            consumer.record_sent(id, i as u64, SimTime::ZERO);
        }
        let _ = consumer.process_quack(SimTime::ZERO + SimDuration::from_millis(5), epoch, &bytes);
        let _ = consumer.poll_expired(SimTime::ZERO + SimDuration::from_millis(50));
    }

    /// Flow-aware decoding is total over arbitrary (tag, body) pairs, and
    /// every successful decode re-encodes to the same wire image — except
    /// that a flow-tagged body carrying flow 0 canonicalizes to the legacy
    /// encoding (both images decode to the same message).
    #[test]
    fn flow_decode_is_total_and_roundtrips(tag in any::<u8>(),
                                           body in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok((flow, msg)) = SidecarMessage::decode_flow(tag, &body) {
            let (tag2, body2) = msg.clone().encode_for_flow(flow);
            if flow == 0 {
                prop_assert_eq!(SidecarMessage::decode_flow(tag2, &body2), Ok((flow, msg)));
            } else {
                prop_assert_eq!(tag2, tag);
                prop_assert_eq!(body2, body);
            }
        }
    }

    /// Authenticated envelope: sealing any message for any flow under any
    /// session parameters opens to exactly the sealed message, and opening
    /// is total (no panics) over arbitrary byte soup at the auth tags.
    #[cfg(feature = "auth")]
    #[test]
    fn sealed_messages_roundtrip_and_open_is_total(
        epoch in any::<u32>(),
        flow in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        secret in any::<u64>(),
        key_id in any::<u32>(),
        junk_tag in any::<u8>(),
        junk in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        use sidecar_proto::{AuthConfig, ChannelAuth};

        let cfg = AuthConfig::from_secret(secret, key_id);
        let mut tx = ChannelAuth::new(cfg.with_nonce(1));
        let mut rx = ChannelAuth::new(cfg.with_nonce(2));
        let msg = SidecarMessage::Quack { epoch, bytes: payload };
        let (tag, sealed) = tx.seal(&msg, flow);
        prop_assert_eq!(rx.open(tag, &sealed), Ok((flow, msg)));
        // Arbitrary bytes never panic the opener (and never verify, except
        // for the vanishing 2^-128 MAC-collision case proptest won't hit).
        let _ = rx.open(junk_tag, &junk);
    }

    /// Any single bit flip anywhere in a sealed body is rejected.
    #[cfg(feature = "auth")]
    #[test]
    fn sealed_messages_reject_any_single_bit_flip(
        epoch in any::<u32>(),
        flow in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        bit in any::<u16>(),
    ) {
        use sidecar_proto::{AuthConfig, ChannelAuth};

        let cfg = AuthConfig::from_secret(0xF1DE_117E, 3);
        let mut tx = ChannelAuth::new(cfg.with_nonce(1));
        let mut rx = ChannelAuth::new(cfg.with_nonce(2));
        let (tag, mut sealed) = tx.seal(&SidecarMessage::Quack { epoch, bytes: payload }, flow);
        let bit = bit as usize % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(rx.open(tag, &sealed).is_err());
    }

    /// The checked encoders agree with the infallible ones below the wire
    /// maximum and reject with a typed error above it — for every variant,
    /// at every flow. Decoding the truncated *image* of an oversized body
    /// (what the old silently-truncating length accounting would have put
    /// on the wire) stays total: it parses as a shorter message or fails
    /// cleanly, never panics.
    #[test]
    fn oversized_encode_rejected_and_truncated_images_decode_totally(
        flow in any::<u32>(),
        pad in 0usize..8,
        cut in 0usize..64,
    ) {
        use sidecar_proto::messages::MAX_BODY;

        let msg = SidecarMessage::Quack { epoch: 9, bytes: vec![0xA5; MAX_BODY - 7 + pad] };
        let (_, body) = msg.encode_for_flow(flow);
        match msg.try_encode_for_flow(flow) {
            Ok((t2, b2)) => {
                prop_assert!(body.len() <= MAX_BODY);
                prop_assert_eq!((t2, b2), msg.encode_for_flow(flow));
            }
            Err(e) => {
                prop_assert!(body.len() > MAX_BODY);
                prop_assert_eq!(e, sidecar_proto::MessageError::Oversized(body.len()));
            }
        }
        // Truncated-length images: decode every prefix an attacker (or the
        // old truncating arithmetic) could present at either tag family.
        let cut = body.len().saturating_sub(cut);
        let (tag, _) = msg.encode_for_flow(flow);
        let _ = SidecarMessage::decode_flow(tag, &body[..cut]);
        let _ = SidecarMessage::decode(tag, &body[..cut]);
    }

    /// Wire roundtrip of every message variant.
    #[test]
    fn every_variant_roundtrips(epoch in any::<u32>(),
                                payload in proptest::collection::vec(any::<u8>(), 0..128),
                                interval_ns in any::<u64>()) {
        let variants = vec![
            SidecarMessage::Quack { epoch, bytes: payload.clone() },
            SidecarMessage::Configure { interval: SimDuration::from_nanos(interval_ns) },
            SidecarMessage::Reset { epoch },
            SidecarMessage::Hello {
                threshold: epoch,
                id_bits: payload.first().copied().unwrap_or(32),
                count_bits: payload.last().copied().unwrap_or(16),
                interval: SimDuration::from_nanos(interval_ns),
            },
        ];
        for msg in variants {
            let (tag, body) = msg.encode();
            prop_assert_eq!(SidecarMessage::decode(tag, &body).unwrap(), msg);
        }
    }
}
