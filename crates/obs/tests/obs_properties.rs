//! Property tests for the telemetry layer: exposition roundtrip, the
//! sampler-vs-raw-snapshot oracle, and scoreboard ranking.
//!
//! Three claims the unit tests spot-check are swept here over generated
//! inputs:
//!
//! * **Exposition roundtrip** — `parse_prometheus(render_prometheus(s))`
//!   recovers any snapshot whose names are already in the Prometheus
//!   charset, and `sanitize_metric_name` is an idempotent projection onto
//!   that charset for arbitrary byte soup.
//! * **Sampler oracle** — feeding a [`Sampler`] an arbitrary snapshot
//!   sequence (including counter resets and wraparounds) produces exactly
//!   the points [`diff_point`] computes from the raw snapshot pairs, with
//!   rates equal to `counter_delta / dt` — and the rendered series
//!   roundtrips through `parse` and passes `validate`.
//! * **Scoreboard ranking** — for any event soup, `snapshot(k)` agrees
//!   with a `BTreeMap` oracle: per-flow totals conserved (tracked rows +
//!   overflow), rows ordered by `(score desc, flow asc)`, and the
//!   rendering invariant under arrival order.

use proptest::prelude::*;
use sidecar_obs::{
    counter_delta, diff_point, parse_prometheus, render_prometheus, sanitize_metric_name,
    FlowScoreboard, HealthDim, HistogramSnapshot, MetricsSnapshot, Sampler, TimeSeries,
};
use std::collections::BTreeMap;

/// Fixed name pool: indices into this stay sorted (the snapshot invariant
/// — registry maps are `BTreeMap`s) and every name is already inside the
/// Prometheus charset, so `sanitize_metric_name` is the identity and the
/// exposition roundtrip can be exact.
const NAMES: [&str; 6] = [
    "net_a_rate",
    "net_b_total",
    "proxy_retx",
    "quack:decoded",
    "sidecar_sent",
    "zz_tail",
];

/// Builds a snapshot from per-name optional counter/gauge values and one
/// optional histogram. Gauges derive from integers so they are always
/// finite.
fn snapshot(
    counters: &[Option<u64>],
    gauges: &[Option<u32>],
    hist: Option<(Vec<u64>, u64)>,
) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (i, v) in counters.iter().enumerate() {
        if let Some(v) = v {
            snap.counters.push((NAMES[i].to_string(), *v));
        }
    }
    for (i, v) in gauges.iter().enumerate() {
        if let Some(v) = v {
            snap.gauges.push((NAMES[i].to_string(), *v as f64 / 128.0));
        }
    }
    if let Some((buckets, sum)) = hist {
        // Three fixed bounds; buckets has 4 entries (last = overflow).
        let count = buckets.iter().sum();
        snap.histograms.push(HistogramSnapshot {
            name: "hist_window".to_string(),
            bounds: vec![10, 100, 1_000],
            buckets,
            count,
            sum,
        });
    }
    snap
}

/// Strategy pieces: an optional small-or-edge counter value. Mixing tiny
/// values with near-`u64::MAX` ones exercises both the reset and the
/// wraparound branches of [`counter_delta`].
fn counter_value(selector: u8, magnitude: u64) -> Option<u64> {
    match selector % 4 {
        0 => None,
        1 => Some(magnitude % 1_000),
        2 => Some(magnitude),
        _ => Some(u64::MAX - (magnitude % 1_000)),
    }
}

proptest! {
    #[test]
    fn sanitize_is_an_idempotent_projection(bytes in prop::collection::vec(any::<u8>(), 0..24)) {
        let raw = String::from_utf8_lossy(&bytes).into_owned();
        let once = sanitize_metric_name(&raw);
        // Lands in the legal charset…
        prop_assert!(!once.is_empty());
        for (i, c) in once.chars().enumerate() {
            let legal = c.is_ascii_alphabetic()
                || c == '_'
                || c == ':'
                || (i > 0 && c.is_ascii_digit());
            prop_assert!(legal, "illegal char {c:?} in {once:?} from {raw:?}");
        }
        // …and a legal name is a fixed point.
        prop_assert_eq!(&sanitize_metric_name(&once), &once);
    }

    #[test]
    fn prometheus_exposition_roundtrips(
        counters in prop::collection::vec((any::<u8>(), any::<u64>()), 6),
        gauges in prop::collection::vec((any::<u8>(), any::<u32>()), 6),
        buckets in prop::collection::vec(0u64..50, 4),
        sum in any::<u64>(),
        with_hist in any::<bool>(),
    ) {
        let cvals: Vec<Option<u64>> =
            counters.iter().map(|(s, m)| counter_value(*s, *m)).collect();
        let gvals: Vec<Option<u32>> = gauges
            .iter()
            .map(|(s, v)| (s % 3 != 0).then_some(*v))
            .collect();
        let snap = snapshot(&cvals, &gvals, with_hist.then_some((buckets, sum)));
        let text = render_prometheus(&snap);
        let parsed = parse_prometheus(&text).expect("rendered exposition must parse");
        // NAMES are chosen inside the Prometheus charset, so sanitization
        // is the identity and the roundtrip is exact.
        prop_assert_eq!(parsed, snap);
    }

    #[test]
    fn sampler_matches_the_raw_snapshot_oracle(
        steps in prop::collection::vec(
            (
                1u64..3_000_000_000,                                  // dt_ns
                prop::collection::vec((any::<u8>(), any::<u64>()), 6), // counters
                prop::collection::vec((any::<u8>(), any::<u32>()), 6), // gauges
                prop::collection::vec(0u64..50, 4),                    // hist buckets
            ),
            2..8,
        ),
    ) {
        // Build the snapshot sequence with strictly increasing timestamps.
        let mut t = 0u64;
        let mut seq: Vec<(u64, MetricsSnapshot)> = Vec::new();
        for (dt, counters, gauges, buckets) in &steps {
            t += dt;
            let cvals: Vec<Option<u64>> =
                counters.iter().map(|(s, m)| counter_value(*s, *m)).collect();
            let gvals: Vec<Option<u32>> = gauges
                .iter()
                .map(|(s, v)| (s % 3 != 0).then_some(*v))
                .collect();
            let hist_sum: u64 = buckets.iter().sum();
            seq.push((t, snapshot(&cvals, &gvals, Some((buckets.clone(), hist_sum)))));
        }

        let mut sampler = Sampler::default();
        for (at, snap) in &seq {
            sampler.sample(*at, snap.clone());
        }
        let points: Vec<_> = sampler.series().points().cloned().collect();
        prop_assert_eq!(points.len(), seq.len() - 1);

        for (i, point) in points.iter().enumerate() {
            let (prev_ns, prev) = &seq[i];
            let (at_ns, cur) = &seq[i + 1];
            // Whole-point oracle: recompute from the raw snapshot pair.
            let oracle = diff_point(*prev_ns, prev, *at_ns, cur);
            prop_assert_eq!(point, &oracle);
            // Rate arithmetic oracle: counter_delta over the window width,
            // one row per counter in the *current* snapshot.
            prop_assert_eq!(point.rates.len(), cur.counters.len());
            let dt = (*at_ns - *prev_ns) as f64 / 1e9;
            for (name, rate) in &point.rates {
                let expect = counter_delta(prev.counter(name), cur.counter(name)) as f64 / dt;
                prop_assert!(
                    (rate - expect).abs() <= expect.abs() * 1e-12,
                    "rate {name}={rate}, oracle {expect}"
                );
            }
        }

        // The rendered series roundtrips and validates.
        let series = sampler.series();
        let text = series.render();
        let parsed = TimeSeries::parse(&text).expect("rendered series must parse");
        prop_assert_eq!(&parsed, series);
        prop_assert!(parsed.validate().is_ok());
    }

    #[test]
    fn scoreboard_ranking_matches_map_oracle(
        events in prop::collection::vec((any::<u32>(), any::<u8>(), 1u64..100), 0..64),
        flow_space in 1u32..40,
        k in 0usize..12,
    ) {
        let dims = [
            HealthDim::ProxyRetx,
            HealthDim::DecodeFail,
            HealthDim::AuthReject,
            HealthDim::Eviction,
        ];
        // Capacity 64 ≥ flow_space, so nothing overflows and the oracle is
        // exact per flow.
        let sb = FlowScoreboard::with_capacity(64);
        let mut oracle: BTreeMap<u32, [u64; 4]> = BTreeMap::new();
        let mut total = 0u64;
        for (flow, dim, n) in &events {
            let flow = flow % flow_space;
            let dim_i = (*dim as usize) % dims.len();
            sb.record_n(flow, dims[dim_i], *n);
            oracle.entry(flow).or_default()[dim_i] += n;
            total += n;
        }
        let snap = sb.snapshot(k);
        prop_assert_eq!(snap.tracked, oracle.len());
        prop_assert_eq!(snap.overflow, 0);
        prop_assert_eq!(snap.rows.len(), k.min(oracle.len()));
        // Rows carry the oracle's exact totals…
        for row in &snap.rows {
            let cells = oracle.get(&row.flow).expect("row for untracked flow");
            prop_assert_eq!(
                [row.retx, row.decode_fail, row.auth_reject, row.evictions],
                *cells
            );
        }
        // …in (score desc, flow asc) order…
        for w in snap.rows.windows(2) {
            prop_assert!(
                (w[1].score(), w[0].flow) < (w[0].score(), w[1].flow + 1)
                    || w[0].score() > w[1].score()
                    || (w[0].score() == w[1].score() && w[0].flow < w[1].flow),
                "rows out of order: {:?} then {:?}", w[0], w[1]
            );
        }
        // …and the top-K really is the K best: every omitted flow scores
        // no higher than the last kept row (ties broken by flow id).
        if let Some(last) = snap.rows.last() {
            let kept: Vec<u32> = snap.rows.iter().map(|r| r.flow).collect();
            for (flow, cells) in &oracle {
                if kept.contains(flow) {
                    continue;
                }
                let score: u64 = cells.iter().sum();
                prop_assert!(
                    (score, std::cmp::Reverse(*flow))
                        <= (last.score(), std::cmp::Reverse(last.flow)),
                    "omitted flow {flow} (score {score}) outranks kept tail"
                );
            }
        }
        // Conservation: every recorded event is in some slot (no overflow
        // at this capacity).
        let full = sb.snapshot(usize::MAX);
        let sum: u64 = full.rows.iter().map(|r| r.score()).sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn scoreboard_render_is_arrival_order_invariant(
        events in prop::collection::vec((any::<u32>(), any::<u8>(), 1u64..50), 1..48),
        k in 1usize..16,
    ) {
        let dims = [
            HealthDim::ProxyRetx,
            HealthDim::DecodeFail,
            HealthDim::AuthReject,
            HealthDim::Eviction,
        ];
        let apply = |order: &[(u32, u8, u64)]| {
            let sb = FlowScoreboard::with_capacity(64);
            for (flow, dim, n) in order {
                sb.record_n(flow % 32, dims[(*dim as usize) % dims.len()], *n);
            }
            sb.snapshot(k).render()
        };
        let forward = apply(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        prop_assert_eq!(forward, apply(&reversed));
    }
}
