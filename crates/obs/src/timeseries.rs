//! Windowed time-series sampling over metrics snapshots.
//!
//! The registry ([`crate::MetricsRegistry`]) accumulates monotone counters,
//! gauges, and histograms; a single end-of-run snapshot hides everything an
//! operator actually watches — rates, drift, bursts. A [`Sampler`] closes
//! that gap: feed it a [`MetricsSnapshot`] once per sampling interval and it
//! diffs consecutive snapshots into a [`SamplePoint`] — windowed counter
//! *rates* (events/second over the window), gauge tracks, and per-window
//! histogram percentile tracks (p50/p90/p99 via
//! [`HistogramSnapshot::percentile`]) — stored in a bounded [`TimeSeries`]
//! ring with a byte-stable text encoding, the same contract
//! [`EventTrace::render`](crate::EventTrace::render) honors.
//!
//! # Determinism contract
//!
//! Like the rest of this crate, nothing here reads a clock: timestamps are
//! caller-supplied nanoseconds (the simulator passes sim-time, the live
//! driver passes its monotonic axis). Sampling a deterministic run at
//! deterministic instants therefore renders byte-identical text, which is
//! what makes time-series golden-testable.
//!
//! # Counter edges: resets and wraparound
//!
//! Raw subtraction of consecutive counter readings breaks at two edges, and
//! both produce garbage rates (a `u64` underflow is a ~1.8e19 "rate"):
//!
//! * **Reset** — the process restarted (live) or a node's registry was
//!   replaced; the counter restarts from zero and the new reading is
//!   *below* the old one.
//! * **Wraparound** — a counter legitimately passes `u64::MAX` and wraps.
//!
//! [`counter_delta`] disambiguates by where the previous reading sat: a
//! drop from within [`WRAP_GUARD`] of `u64::MAX` is treated as a genuine
//! wrap (delta = the wrapped distance); any other drop is a reset (delta =
//! the new reading, i.e. everything counted since the restart). Histogram
//! windows apply the same policy per bucket: any decreasing bucket or
//! count marks a reset and the window restarts from the current snapshot.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Previous readings within this distance of `u64::MAX` make a decreasing
/// counter a wraparound rather than a reset (see module docs).
pub const WRAP_GUARD: u64 = 1 << 32;

/// The window delta between two readings of one monotone counter, safe
/// against resets and `u64` wraparound — never underflows.
pub fn counter_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else if prev > u64::MAX - WRAP_GUARD {
        // The previous reading sat against the ceiling: the counter wrapped.
        cur.wrapping_sub(prev)
    } else {
        // Reset: the counter restarted from zero and has reached `cur`.
        cur
    }
}

/// One histogram's percentile track over a sampling window.
#[derive(Clone, Debug, PartialEq)]
pub struct PercentileTrack {
    /// Histogram name.
    pub name: String,
    /// Observations that landed in the window.
    pub count: u64,
    /// Window median estimate.
    pub p50: f64,
    /// Window 90th-percentile estimate.
    pub p90: f64,
    /// Window 99th-percentile estimate.
    pub p99: f64,
}

/// One sampling instant: rates, gauges, and percentile tracks for the
/// window that ended at `at_ns`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SamplePoint {
    /// Window end, in caller-supplied nanoseconds.
    pub at_ns: u64,
    /// Per-counter rate in events/second over the window, sorted by name.
    /// Every counter present in the current snapshot appears (zero rates
    /// included), so rows stay aligned across points.
    pub rates: Vec<(String, f64)>,
    /// Gauge values at the window end, sorted by name. Non-finite gauge
    /// values are dropped at sampling time, so rendered series always
    /// validate as finite.
    pub gauges: Vec<(String, f64)>,
    /// Percentile tracks for histograms that saw observations in the
    /// window, sorted by name.
    pub pcts: Vec<PercentileTrack>,
}

/// Diffs two consecutive snapshots into the [`SamplePoint`] for the window
/// `prev_ns..at_ns`. Exposed so tests can recompute a sampler's output from
/// the raw snapshots (the oracle property); requires `at_ns > prev_ns`.
pub fn diff_point(
    prev_ns: u64,
    prev: &MetricsSnapshot,
    at_ns: u64,
    cur: &MetricsSnapshot,
) -> SamplePoint {
    assert!(at_ns > prev_ns, "sampling window must have positive width");
    let dt = (at_ns - prev_ns) as f64 / 1e9;
    let rates = cur
        .counters
        .iter()
        .map(|(name, value)| {
            let delta = counter_delta(prev.counter(name), *value);
            (name.clone(), delta as f64 / dt)
        })
        .collect();
    let gauges = cur
        .gauges
        .iter()
        .filter(|(_, v)| v.is_finite())
        .cloned()
        .collect();
    let mut pcts = Vec::new();
    for h in &cur.histograms {
        let window = match prev.histogram(&h.name) {
            Some(old) => histogram_window(old, h),
            None => h.clone(),
        };
        if window.count == 0 {
            continue;
        }
        // The window histogram is non-empty, so every percentile is Some.
        pcts.push(PercentileTrack {
            name: h.name.clone(),
            count: window.count,
            p50: window.p50().unwrap_or(0.0),
            p90: window.p90().unwrap_or(0.0),
            p99: window.p99().unwrap_or(0.0),
        });
    }
    SamplePoint {
        at_ns,
        rates,
        gauges,
        pcts,
    }
}

/// The window histogram between two readings: per-bucket deltas, or the
/// current snapshot wholesale when a reset is detected (any decreasing
/// bucket or count, or changed bounds).
fn histogram_window(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    let reset = prev.bounds != cur.bounds
        || cur.count < prev.count
        || cur.buckets.len() != prev.buckets.len()
        || cur.buckets.iter().zip(&prev.buckets).any(|(c, p)| c < p);
    if reset {
        return cur.clone();
    }
    HistogramSnapshot {
        name: cur.name.clone(),
        bounds: cur.bounds.clone(),
        buckets: cur
            .buckets
            .iter()
            .zip(&prev.buckets)
            .map(|(c, p)| c - p)
            .collect(),
        count: cur.count - prev.count,
        // Sums accumulate observed values and can wrap long before count
        // does; the window sum stays correct under modular arithmetic.
        sum: cur.sum.wrapping_sub(prev.sum),
    }
}

/// A bounded ring of [`SamplePoint`]s with a byte-stable text encoding.
///
/// Like [`EventTrace`](crate::EventTrace), the ring evicts its oldest point
/// when full and owns up to it: [`TimeSeries::render`] emits a
/// `# truncated dropped=N` header whenever points were lost, so a consumer
/// can never mistake a truncated series for a complete one.
///
/// The encoding is line-based, one line per track per point:
///
/// ```text
/// t=<ns> rate <name> <f64>
/// t=<ns> gauge <name> <f64>
/// t=<ns> pct <name> count=<u64> p50=<f64> p90=<f64> p99=<f64>
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: VecDeque<SamplePoint>,
    capacity: usize,
    dropped: u64,
}

/// Equality compares the retained points and the eviction debt — not the
/// configured capacity, which is tuning, not data (a parsed series must
/// compare equal to the series that rendered it).
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points && self.dropped == other.dropped
    }
}

impl TimeSeries {
    /// A ring holding at most `capacity` points (floor 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            points: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a point, evicting the oldest when the ring is full.
    pub fn push(&mut self, point: SamplePoint) {
        if self.capacity == 0 {
            // A default-constructed series is unbounded-by-accident
            // otherwise; treat capacity 0 as "default capacity".
            self.capacity = DEFAULT_CAPACITY;
        }
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back(point);
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SamplePoint> {
        self.points.iter()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<&SamplePoint> {
        self.points.back()
    }

    /// Renders the stable text encoding (see the type docs). Byte-identical
    /// across runs for deterministic inputs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "# truncated dropped={}", self.dropped);
        }
        for p in &self.points {
            for (name, v) in &p.rates {
                let _ = writeln!(out, "t={} rate {name} {v:?}", p.at_ns);
            }
            for (name, v) in &p.gauges {
                let _ = writeln!(out, "t={} gauge {name} {v:?}", p.at_ns);
            }
            for t in &p.pcts {
                let _ = writeln!(
                    out,
                    "t={} pct {} count={} p50={:?} p90={:?} p99={:?}",
                    p.at_ns, t.name, t.count, t.p50, t.p90, t.p99
                );
            }
        }
        out
    }

    /// Parses text produced by [`TimeSeries::render`]. Blank lines and `#`
    /// comments are ignored (the truncation header is a comment; parsed
    /// series report `dropped() == 0`). Lines must be grouped by point in
    /// render order: a timestamp may not reappear after a later one.
    pub fn parse(text: &str) -> Result<TimeSeries, String> {
        let mut series = TimeSeries::with_capacity(DEFAULT_CAPACITY);
        let mut open: Option<SamplePoint> = None;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            let mut parts = line.split_whitespace();
            let at_ns: u64 = parts
                .next()
                .and_then(|t| t.strip_prefix("t="))
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("missing t=<ns>"))?;
            let point = match &mut open {
                Some(p) if p.at_ns == at_ns => p,
                _ => {
                    if let Some(done) = open.take() {
                        if at_ns <= done.at_ns {
                            return Err(err("timestamps must be grouped and increasing"));
                        }
                        series.push_parsed(done)?;
                    }
                    open = Some(SamplePoint {
                        at_ns,
                        ..SamplePoint::default()
                    });
                    open.as_mut().expect("just set")
                }
            };
            let kind = parts.next().ok_or_else(|| err("missing record kind"))?;
            let name = parts.next().ok_or_else(|| err("missing name"))?;
            match kind {
                "rate" | "gauge" => {
                    let value: f64 = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad value"))?;
                    if parts.next().is_some() {
                        return Err(err("trailing garbage"));
                    }
                    let track = if kind == "rate" {
                        &mut point.rates
                    } else {
                        &mut point.gauges
                    };
                    track.push((name.to_string(), value));
                }
                "pct" => {
                    let mut t = PercentileTrack {
                        name: name.to_string(),
                        count: 0,
                        p50: 0.0,
                        p90: 0.0,
                        p99: 0.0,
                    };
                    for field in parts {
                        let (key, value) =
                            field.split_once('=').ok_or_else(|| err("bad pct field"))?;
                        match key {
                            "count" => t.count = value.parse().map_err(|_| err("bad count"))?,
                            "p50" => t.p50 = value.parse().map_err(|_| err("bad p50"))?,
                            "p90" => t.p90 = value.parse().map_err(|_| err("bad p90"))?,
                            "p99" => t.p99 = value.parse().map_err(|_| err("bad p99"))?,
                            _ => return Err(err("unknown pct field")),
                        }
                    }
                    point.pcts.push(t);
                }
                _ => return Err(err("unknown record kind")),
            }
        }
        if let Some(done) = open.take() {
            series.push_parsed(done)?;
        }
        Ok(series)
    }

    fn push_parsed(&mut self, point: SamplePoint) -> Result<(), String> {
        if self.points.len() == self.capacity {
            return Err(format!(
                "series exceeds the parse capacity of {} points",
                self.capacity
            ));
        }
        self.points.push_back(point);
        Ok(())
    }

    /// Schema validation for artifact files: timestamps strictly
    /// increasing, every value finite, and no duplicate `(kind, name)` key
    /// within a point. `validate_reports` runs this over every
    /// `BENCH_*_timeseries.txt` a bench emitted.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_ns: Option<u64> = None;
        for (i, p) in self.points.iter().enumerate() {
            if let Some(prev) = last_ns {
                if p.at_ns <= prev {
                    return Err(format!(
                        "point {i}: timestamp {} not after previous {prev}",
                        p.at_ns
                    ));
                }
            }
            last_ns = Some(p.at_ns);
            let check_sorted = |kind: &str, names: &[&str]| -> Result<(), String> {
                for w in names.windows(2) {
                    if w[1] <= w[0] {
                        return Err(format!(
                            "point {i}: {kind} names not strictly sorted: {:?} then {:?}",
                            w[0], w[1]
                        ));
                    }
                }
                Ok(())
            };
            let rate_names: Vec<&str> = p.rates.iter().map(|(n, _)| n.as_str()).collect();
            let gauge_names: Vec<&str> = p.gauges.iter().map(|(n, _)| n.as_str()).collect();
            let pct_names: Vec<&str> = p.pcts.iter().map(|t| t.name.as_str()).collect();
            check_sorted("rate", &rate_names)?;
            check_sorted("gauge", &gauge_names)?;
            check_sorted("pct", &pct_names)?;
            let finite = p
                .rates
                .iter()
                .chain(p.gauges.iter())
                .all(|(_, v)| v.is_finite())
                && p.pcts
                    .iter()
                    .all(|t| t.p50.is_finite() && t.p90.is_finite() && t.p99.is_finite());
            if !finite {
                return Err(format!("point {i}: non-finite value at t={}", p.at_ns));
            }
        }
        Ok(())
    }
}

/// Default ring capacity: at one sample per 100 ms this holds ~7 minutes of
/// history, and at the 1 s live default, over an hour.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Diffs a stream of [`MetricsSnapshot`]s into a bounded [`TimeSeries`].
///
/// Call [`Sampler::sample`] once per interval with the current snapshot and
/// its timestamp. The first call primes the differ (no point is emitted —
/// a window needs two edges); every later call with an advanced timestamp
/// appends one [`SamplePoint`]. Calls that do not advance the clock are
/// ignored, so a sloppy caller cannot produce zero-width windows.
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    prev: Option<(u64, MetricsSnapshot)>,
    series: TimeSeries,
}

impl Sampler {
    /// A sampler whose ring retains `capacity` points.
    pub fn with_capacity(capacity: usize) -> Self {
        Sampler {
            prev: None,
            series: TimeSeries::with_capacity(capacity),
        }
    }

    /// Feeds the snapshot taken at `at_ns` (see the type docs).
    pub fn sample(&mut self, at_ns: u64, snap: MetricsSnapshot) {
        match &self.prev {
            Some((prev_ns, prev)) if at_ns > *prev_ns => {
                self.series.push(diff_point(*prev_ns, prev, at_ns, &snap));
            }
            Some((prev_ns, _)) if at_ns <= *prev_ns => return,
            _ => {}
        }
        self.prev = Some((at_ns, snap));
    }

    /// The accumulated series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the sampler, yielding its series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }

    /// Timestamp of the last accepted snapshot, if any.
    pub fn last_sampled_ns(&self) -> Option<u64> {
        self.prev.as_ref().map(|(ns, _)| *ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            gauges: gauges.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn rates_are_windowed_deltas_per_second() {
        let mut s = Sampler::with_capacity(8);
        s.sample(0, snap(&[("pkts", 100)], &[]));
        s.sample(2_000_000_000, snap(&[("pkts", 300)], &[("q", 7.0)]));
        let series = s.series();
        assert_eq!(series.len(), 1, "first sample only primes");
        let p = series.last().unwrap();
        assert_eq!(p.at_ns, 2_000_000_000);
        assert_eq!(p.rates, vec![("pkts".to_string(), 100.0)]);
        assert_eq!(p.gauges, vec![("q".to_string(), 7.0)]);
    }

    #[test]
    fn counter_reset_yields_restart_rate_not_garbage() {
        // Regression for the reset edge: a counter that restarted from zero
        // must contribute its post-restart total, never a u64 underflow.
        assert_eq!(counter_delta(1_000, 5), 5);
        let mut s = Sampler::with_capacity(8);
        s.sample(0, snap(&[("pkts", 1_000)], &[]));
        s.sample(1_000_000_000, snap(&[("pkts", 5)], &[]));
        let p = s.series().last().unwrap();
        assert_eq!(p.rates, vec![("pkts".to_string(), 5.0)]);
    }

    #[test]
    fn counter_wraparound_yields_wrapped_distance() {
        // Regression for the wrap edge: a previous reading against the
        // u64 ceiling means the counter wrapped, not that it reset.
        assert_eq!(counter_delta(u64::MAX - 3, 5), 9);
        assert_eq!(counter_delta(u64::MAX, 0), 1);
        // Below the guard band a drop is a reset.
        assert_eq!(counter_delta(u64::MAX - WRAP_GUARD, 5), 5);
        let mut s = Sampler::with_capacity(8);
        s.sample(0, snap(&[("pkts", u64::MAX - 3)], &[]));
        s.sample(1_000_000_000, snap(&[("pkts", 5)], &[]));
        let p = s.series().last().unwrap();
        assert_eq!(p.rates, vec![("pkts".to_string(), 9.0)]);
    }

    #[test]
    fn non_advancing_samples_are_ignored() {
        let mut s = Sampler::with_capacity(8);
        s.sample(5, snap(&[("c", 1)], &[]));
        s.sample(5, snap(&[("c", 2)], &[]));
        s.sample(3, snap(&[("c", 9)], &[]));
        assert!(s.series().is_empty());
        assert_eq!(s.last_sampled_ns(), Some(5));
        s.sample(6, snap(&[("c", 2)], &[]));
        assert_eq!(s.series().len(), 1);
    }

    #[test]
    fn histogram_percentile_tracks_cover_the_window_only() {
        let reg = MetricsRegistry::new();
        let bounds = &[10, 100];
        reg.observe("lat", bounds, 5);
        let mut s = Sampler::with_capacity(8);
        s.sample(0, reg.snapshot());
        for v in [50, 60, 70] {
            reg.observe("lat", bounds, v);
        }
        s.sample(1_000_000_000, reg.snapshot());
        let p = s.series().last().unwrap();
        assert_eq!(p.pcts.len(), 1);
        let t = &p.pcts[0];
        assert_eq!(t.count, 3, "only the window's observations count");
        // All three landed in (10, 100]; window p50 interpolates there, so
        // it must be far above the pre-window observation at 5.
        assert!(t.p50 > 10.0, "window p50 {} leaked pre-window data", t.p50);
    }

    #[test]
    fn quiet_histograms_emit_no_track() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", &[10], 3);
        let mut s = Sampler::with_capacity(8);
        s.sample(0, reg.snapshot());
        s.sample(1_000_000_000, reg.snapshot());
        assert!(s.series().last().unwrap().pcts.is_empty());
    }

    #[test]
    fn histogram_reset_restarts_the_window() {
        let prev = HistogramSnapshot {
            name: "h".into(),
            bounds: vec![10],
            buckets: vec![5, 1],
            count: 6,
            sum: 40,
        };
        let cur = HistogramSnapshot {
            name: "h".into(),
            bounds: vec![10],
            buckets: vec![2, 0],
            count: 2,
            sum: 4,
        };
        let w = histogram_window(&prev, &cur);
        assert_eq!(w, cur, "decreasing buckets mean reset");
    }

    #[test]
    fn ring_truncates_and_confesses() {
        let mut series = TimeSeries::with_capacity(2);
        for i in 0..4 {
            series.push(SamplePoint {
                at_ns: i,
                ..SamplePoint::default()
            });
        }
        assert_eq!(series.len(), 2);
        assert_eq!(series.dropped(), 2);
        assert!(series.render().starts_with("# truncated dropped=2\n"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut s = Sampler::with_capacity(8);
        let reg = MetricsRegistry::new();
        reg.add("a.b", 3);
        reg.gauge_set("g", -0.125);
        reg.observe("h", &[1, 4], 2);
        s.sample(0, reg.snapshot());
        reg.add("a.b", 7);
        reg.observe("h", &[1, 4], 3);
        s.sample(500_000_000, reg.snapshot());
        reg.add("a.b", 1);
        reg.gauge_set("g", 2.5);
        s.sample(1_000_000_000, reg.snapshot());
        let text = s.series().render();
        let parsed = TimeSeries::parse(&text).unwrap();
        assert_eq!(&parsed, s.series());
        assert_eq!(parsed.render(), text, "re-render is byte-identical");
        parsed.validate().expect("sampler output validates");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "rate a 1",                              // missing t=
            "t=1 rate a",                            // missing value
            "t=1 rate a x",                          // bad value
            "t=1 wat a 1",                           // unknown kind
            "t=1 rate a 1 extra",                    // trailing garbage
            "t=2 rate a 1\nt=1 rate a 1",            // decreasing timestamps
            "t=1 rate a 1\nt=2 g b 1\nt=1 rate c 1", // regrouped timestamp
            "t=1 pct h count=1 p50=x",               // bad pct field
            "t=1 pct h wat=1",                       // unknown pct field
        ] {
            assert!(TimeSeries::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn validate_catches_bad_series() {
        let mut dup = TimeSeries::with_capacity(4);
        dup.push(SamplePoint {
            at_ns: 1,
            rates: vec![("a".into(), 1.0), ("a".into(), 2.0)],
            ..SamplePoint::default()
        });
        assert!(dup.validate().is_err(), "duplicate keys must fail");

        let mut inf = TimeSeries::with_capacity(4);
        inf.push(SamplePoint {
            at_ns: 1,
            rates: vec![("a".into(), f64::INFINITY)],
            ..SamplePoint::default()
        });
        assert!(inf.validate().is_err(), "non-finite values must fail");
    }

    #[test]
    fn non_finite_gauges_are_dropped_at_sampling_time() {
        let mut s = Sampler::with_capacity(4);
        s.sample(0, snap(&[], &[("g", f64::NAN)]));
        s.sample(1_000, snap(&[], &[("g", f64::INFINITY), ("h", 1.0)]));
        let p = s.series().last().unwrap();
        assert_eq!(p.gauges, vec![("h".to_string(), 1.0)]);
        s.series().validate().unwrap();
    }
}
