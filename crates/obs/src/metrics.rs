//! The live registry: counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// A handle to one monotonic counter.
///
/// Cloning is cheap (an `Arc` bump); incrementing is one relaxed atomic add
/// with no lock and no map lookup, so hot loops should fetch the handle once
/// with [`MetricsRegistry::counter`] and hold it.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds.len() + 1` buckets, where bucket `i`
/// counts observations `v <= bounds[i]` (first matching bound wins) and the
/// final bucket is the overflow (`v > bounds.last()`).
#[derive(Debug)]
struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn add_snapshot(&self, snap: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, snap.bounds,
            "absorbing histogram {:?} with mismatched bounds",
            snap.name
        );
        for (cell, &n) in self.buckets.iter().zip(&snap.buckets) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    // Gauges store the f64 bit pattern so one atomic type serves both.
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// A registry of named metrics.
///
/// The handle is `Clone` (shared `Arc` inner) and `Sync`; registration takes
/// a short mutex, but recording through a held [`Counter`] is lock-free. All
/// names are `&'static str` so the registry never allocates per event.
///
/// Each simulated [`World`](../sidecar_netsim) owns a *fresh* registry, which
/// keeps metric-asserting tests isolated from each other even though the test
/// harness runs them on concurrent threads; [`crate::global`] is the shared
/// fallback for code with no world in reach.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter and returns a lock-free handle to it.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter map poisoned");
        let cell = map.entry(name).or_default().clone();
        Counter { cell }
    }

    /// Adds one to `name` (registering it on first use).
    pub fn inc(&self, name: &'static str) {
        self.counter(name).inc();
    }

    /// Adds `n` to `name` (registering it on first use).
    pub fn add(&self, name: &'static str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of counter `name` (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.inner.counters.lock().expect("counter map poisoned");
        map.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let mut map = self.inner.gauges.lock().expect("gauge map poisoned");
        map.entry(name)
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value of gauge `name`, if it was ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let map = self.inner.gauges.lock().expect("gauge map poisoned");
        map.get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Records `value` into histogram `name` with the given bucket `bounds`
    /// (upper-inclusive, strictly increasing; a final overflow bucket is
    /// implicit). All observations of one name must agree on `bounds`.
    pub fn observe(&self, name: &'static str, bounds: &[u64], value: u64) {
        let hist = {
            let mut map = self
                .inner
                .histograms
                .lock()
                .expect("histogram map poisoned");
            map.entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds)))
                .clone()
        };
        hist.observe(value);
    }

    /// Copies the current values into a plain-data, order-stable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(&k, h)| HistogramSnapshot {
                name: k.to_string(),
                bounds: h.bounds.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Folds a snapshot into this registry: counters and histograms add,
    /// gauges overwrite. Used by scenario runners to merge per-world
    /// registries into [`crate::global`].
    ///
    /// Snapshot names are interned by leaking; absorb is a cold path called
    /// once per scenario with a bounded set of metric names.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, value) in &snap.counters {
            self.add(intern(name), *value);
        }
        for (name, value) in &snap.gauges {
            self.gauge_set(intern(name), *value);
        }
        for h in &snap.histograms {
            let hist = {
                let mut map = self
                    .inner
                    .histograms
                    .lock()
                    .expect("histogram map poisoned");
                map.entry(intern(&h.name))
                    .or_insert_with(|| Arc::new(Histogram::new(&h.bounds)))
                    .clone()
            };
            hist.add_snapshot(h);
        }
    }
}

/// Interns a runtime string as `&'static str`, deduplicating so repeated
/// absorbs of the same metric names never grow memory.
fn intern(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().expect("intern map poisoned");
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_add() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        c.inc();
        c.add(4);
        reg.inc("a");
        reg.add("b", 7);
        assert_eq!(c.get(), 6);
        assert_eq!(reg.counter_value("a"), 6);
        assert_eq!(reg.counter_value("b"), 7);
        assert_eq!(reg.counter_value("missing"), 0);
    }

    #[test]
    fn handles_share_one_cell() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("shared");
        let c2 = reg.counter("shared");
        c1.inc();
        c2.inc();
        assert_eq!(reg.counter_value("shared"), 2);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.gauge_value("g"), None);
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", -2.25);
        assert_eq!(reg.gauge_value("g"), Some(-2.25));
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let reg = MetricsRegistry::new();
        for v in [0, 1, 2, 3, 4, 100] {
            reg.observe("h", &[1, 4], v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![1, 4]);
        assert_eq!(h.buckets, vec![2, 3, 1]); // <=1: {0,1}; <=4: {2,3,4}; >4: {100}
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 110);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        MetricsRegistry::new().observe("bad", &[4, 1], 0);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.inc("z");
        reg.inc("a");
        reg.gauge_set("m", 1.0);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].0, "a");
        assert_eq!(s1.counters[1].0, "z");
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        a.add("c", 3);
        a.observe("h", &[2], 1);
        a.gauge_set("g", 1.0);
        let b = MetricsRegistry::new();
        b.add("c", 2);
        b.observe("h", &[2], 5);
        b.gauge_set("g", 9.0);
        a.absorb(&b.snapshot());
        let merged = a.snapshot();
        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.gauge("g"), Some(9.0));
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.buckets, vec![1, 1]);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 6);
    }

    #[test]
    fn intern_deduplicates() {
        let a = intern("obs.test.intern");
        let b = intern("obs.test.intern");
        assert!(std::ptr::eq(a, b));
    }
}
