//! The bounded ring buffer of timestamped events.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::event::Event;

/// A bounded ring of `(sim-nanoseconds, Event)` records.
///
/// When full, the oldest record is evicted and `dropped` counts it — the
/// trace degrades by forgetting history, never by blocking or reallocating
/// without bound. Timestamps are caller-supplied simulated time, so a
/// rendering of a deterministic run is byte-stable (the property the
/// golden-trace tests pin).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventTrace {
    capacity: usize,
    events: VecDeque<(u64, Event)>,
    dropped: u64,
    /// When false, [`EventTrace::record`] is a no-op (retained records
    /// stay readable). Perf harnesses switch the recorder off so the
    /// diagnostics ring does not distort engine measurements.
    enabled: bool,
}

impl EventTrace {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// A trace with [`EventTrace::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A trace holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTrace {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
            enabled: true,
        }
    }

    /// Turns recording on or off (on by default). Disabling does not clear
    /// retained records.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether [`EventTrace::record`] currently retains events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event stamped with `at_ns` simulated nanoseconds,
    /// evicting the oldest record if the ring is full. No-op while
    /// disabled via [`EventTrace::set_enabled`].
    pub fn record(&mut self, at_ns: u64, event: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at_ns, event));
    }

    /// Records retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.events.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many retained events have the given kind tag (see
    /// [`Event::kind`]).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|(_, e)| e.kind() == kind).count()
    }

    /// Renders one `"<ns> <event>"` line per record (trailing newline when
    /// non-empty). This is the golden-fixture format.
    ///
    /// A truncated ring announces itself: when any record was evicted, the
    /// rendering opens with a `# truncated dropped=<n>` comment line so a
    /// partial trace can never masquerade as a complete one. Complete traces
    /// carry no header and render exactly as before.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "# truncated dropped={}", self.dropped);
        }
        for (at, event) in &self.events {
            let _ = writeln!(out, "{at} {event}");
        }
        out
    }

    /// Appends every record of `other` (and its eviction debt) into this
    /// ring, subject to this ring's own capacity. Scenario runners use this
    /// to fold per-world traces into the process-global trace that bench
    /// binaries dump via `--trace-out`.
    pub fn absorb(&mut self, other: &EventTrace) {
        self.dropped += other.dropped;
        for &(at, event) in &other.events {
            self.record(at, event);
        }
    }

    /// Parses one [`EventTrace::render`] line back into `(ns, Event)`.
    pub fn parse_line(line: &str) -> Result<(u64, Event), String> {
        let (at, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("missing timestamp in {line:?}"))?;
        let at = at
            .parse()
            .map_err(|_| format!("bad timestamp in {line:?}"))?;
        Ok((at, Event::parse(rest)?))
    }
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_renders() {
        let mut t = EventTrace::with_capacity(8);
        t.record(5, Event::Restart { node: 1 });
        t.record(9, Event::Outage { node: 2, up: true });
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_kind("restart"), 1);
        let text = t.render();
        assert_eq!(text, "5 restart node=1\n9 outage node=2 up=true\n");
        for line in text.lines() {
            EventTrace::parse_line(line).unwrap();
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = EventTrace::with_capacity(2);
        for i in 0..5 {
            t.record(i, Event::Restart { node: i as u32 });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let nodes: Vec<u32> = t
            .events()
            .map(|&(_, e)| match e {
                Event::Restart { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![3, 4]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut t = EventTrace::with_capacity(0);
        assert_eq!(t.capacity(), 1);
        t.record(0, Event::Restart { node: 0 });
        t.record(1, Event::Restart { node: 1 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn truncated_ring_announces_itself() {
        let mut t = EventTrace::with_capacity(2);
        t.record(0, Event::Restart { node: 0 });
        t.record(1, Event::Restart { node: 1 });
        assert!(!t.render().starts_with('#'), "complete trace has no header");
        t.record(2, Event::Restart { node: 2 });
        let text = t.render();
        assert!(text.starts_with("# truncated dropped=1\n"), "{text}");
        // Event lines after the header still parse.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            EventTrace::parse_line(line).unwrap();
        }
    }

    #[test]
    fn absorb_appends_and_carries_debt() {
        let mut a = EventTrace::with_capacity(8);
        a.record(1, Event::Restart { node: 1 });
        let mut b = EventTrace::with_capacity(1);
        b.record(2, Event::Restart { node: 2 });
        b.record(3, Event::Restart { node: 3 });
        assert_eq!(b.dropped(), 1);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        let mut c = EventTrace::with_capacity(8);
        c.absorb(&a);
        assert_eq!(c.render(), a.render());
    }

    #[test]
    fn parse_line_rejects_garbage() {
        assert!(EventTrace::parse_line("restart node=1").is_err());
        assert!(EventTrace::parse_line("x restart node=1").is_err());
        assert!(EventTrace::parse_line("5").is_err());
    }
}
