//! Per-flow health scoreboard: which flows are sick *right now*.
//!
//! Aggregate counters say the proxy retransmitted 10k packets; an operator
//! wants to know *which flows* those came from. The [`FlowScoreboard`] is a
//! fixed-capacity, lock-free table of per-flow trouble counters fed from
//! the protocols' packet path — proxy retransmissions, decode failures,
//! authentication rejections, and flow-table eviction pressure — and read
//! out as a deterministic top-K ranking ([`FlowScoreboard::snapshot`]).
//!
//! # Packet-path cost
//!
//! [`FlowScoreboard::record`] is one Fibonacci hash, a short linear probe
//! over a power-of-two slot array, and one relaxed atomic add — no locks,
//! no allocation, O(1) with a probe bound of the table length. The events
//! it records (retx, decode failure, auth reject, eviction) are exceptional
//! on a healthy path, so the steady-state cost is zero adds per packet.
//! When the table is full, records for untracked flows count into
//! [`FlowScoreboard::overflow`] instead of being silently lost.
//!
//! # Determinism
//!
//! Slot placement depends on arrival order, but snapshots sort rows by
//! `(score desc, flow asc)` before truncating to K, so the rendered
//! scoreboard is a pure function of the per-flow totals — identical across
//! runs of a deterministic scenario regardless of hash-table internals.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for an unoccupied slot (`u32` flow ids can never reach it).
const EMPTY: u64 = u64::MAX;

/// Fibonacci multiplier (2^64 / φ), the same mixing constant the slab flow
/// table uses for its open-addressed index.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// The health dimensions the scoreboard tracks per flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthDim {
    /// A sender-side proxy retransmitted one of this flow's packets.
    ProxyRetx = 0,
    /// A quACK decode for this flow failed (threshold, epoch, malformed…).
    DecodeFail = 1,
    /// An authenticated control datagram for this flow was rejected.
    AuthReject = 2,
    /// This flow's session was evicted from the flow table.
    Eviction = 3,
}

/// Number of [`HealthDim`] variants.
const DIMS: usize = 4;

#[derive(Debug)]
struct Slot {
    flow: AtomicU64,
    cells: [AtomicU64; DIMS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            flow: AtomicU64::new(EMPTY),
            cells: [const { AtomicU64::new(0) }; DIMS],
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Power-of-two slot array, linearly probed.
    slots: Box<[Slot]>,
    /// Records that found the table full.
    overflow: AtomicU64,
}

/// The shared scoreboard handle. Cloning shares the same table (an `Arc`
/// bump), so the live admin thread can snapshot while the dispatch thread
/// records.
#[derive(Clone, Debug)]
pub struct FlowScoreboard {
    inner: Arc<Inner>,
}

impl Default for FlowScoreboard {
    fn default() -> Self {
        FlowScoreboard::with_capacity(DEFAULT_FLOWS)
    }
}

/// Default tracked-flow capacity.
pub const DEFAULT_FLOWS: usize = 1024;

impl FlowScoreboard {
    /// A scoreboard tracking up to `flows` distinct flows (rounded up to a
    /// power of two, floor 8).
    pub fn with_capacity(flows: usize) -> Self {
        let cap = flows.next_power_of_two().max(8);
        FlowScoreboard {
            inner: Arc::new(Inner {
                slots: (0..cap).map(|_| Slot::new()).collect(),
                overflow: AtomicU64::new(0),
            }),
        }
    }

    /// Tracked-flow capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Records one `dim` event for `flow` (see module docs for cost).
    pub fn record(&self, flow: u32, dim: HealthDim) {
        self.record_n(flow, dim, 1);
    }

    /// Records `n` `dim` events for `flow`.
    pub fn record_n(&self, flow: u32, dim: HealthDim, n: u64) {
        if n == 0 {
            return;
        }
        let slots = &self.inner.slots;
        let mask = slots.len() - 1;
        let mut idx = ((flow as u64).wrapping_mul(FIB) >> 32) as usize & mask;
        for _ in 0..slots.len() {
            let slot = &slots[idx];
            let occupant = slot.flow.load(Ordering::Acquire);
            if occupant == flow as u64 {
                slot.cells[dim as usize].fetch_add(n, Ordering::Relaxed);
                return;
            }
            if occupant == EMPTY {
                match slot.flow.compare_exchange(
                    EMPTY,
                    flow as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        slot.cells[dim as usize].fetch_add(n, Ordering::Relaxed);
                        return;
                    }
                    Err(actual) if actual == flow as u64 => {
                        // Lost the race to ourselves on another thread.
                        slot.cells[dim as usize].fetch_add(n, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => { /* someone else claimed it; keep probing */ }
                }
            }
            idx = (idx + 1) & mask;
        }
        self.inner.overflow.fetch_add(n, Ordering::Relaxed);
    }

    /// Records untracked because the table was full.
    pub fn overflow(&self) -> u64 {
        self.inner.overflow.load(Ordering::Relaxed)
    }

    /// Clears every slot and the overflow counter. Intended for quiesced
    /// reuse (between bench runs); racing records may be lost.
    pub fn reset(&self) {
        for slot in self.inner.slots.iter() {
            slot.flow.store(EMPTY, Ordering::Release);
            for cell in &slot.cells {
                cell.store(0, Ordering::Relaxed);
            }
        }
        self.inner.overflow.store(0, Ordering::Relaxed);
    }

    /// The top-`k` flows by total score, ties broken by ascending flow id —
    /// a deterministic ranking independent of slot placement.
    pub fn snapshot(&self, k: usize) -> ScoreboardSnapshot {
        let mut rows: Vec<FlowHealthRow> = Vec::new();
        for slot in self.inner.slots.iter() {
            let occupant = slot.flow.load(Ordering::Acquire);
            if occupant == EMPTY {
                continue;
            }
            let cell = |d: HealthDim| slot.cells[d as usize].load(Ordering::Relaxed);
            rows.push(FlowHealthRow {
                flow: occupant as u32,
                retx: cell(HealthDim::ProxyRetx),
                decode_fail: cell(HealthDim::DecodeFail),
                auth_reject: cell(HealthDim::AuthReject),
                evictions: cell(HealthDim::Eviction),
            });
        }
        let tracked = rows.len();
        rows.sort_by(|a, b| b.score().cmp(&a.score()).then(a.flow.cmp(&b.flow)));
        rows.truncate(k);
        ScoreboardSnapshot {
            rows,
            tracked,
            capacity: self.inner.slots.len(),
            overflow: self.overflow(),
        }
    }
}

/// One flow's trouble counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowHealthRow {
    /// Flow id.
    pub flow: u32,
    /// Proxy retransmissions ([`HealthDim::ProxyRetx`]).
    pub retx: u64,
    /// quACK decode failures ([`HealthDim::DecodeFail`]).
    pub decode_fail: u64,
    /// Auth rejections ([`HealthDim::AuthReject`]).
    pub auth_reject: u64,
    /// Flow-table evictions ([`HealthDim::Eviction`]).
    pub evictions: u64,
}

impl FlowHealthRow {
    /// Ranking score: the unweighted event total. Saturating, so a
    /// pathological flow cannot wrap itself back to healthy.
    pub fn score(&self) -> u64 {
        self.retx
            .saturating_add(self.decode_fail)
            .saturating_add(self.auth_reject)
            .saturating_add(self.evictions)
    }
}

/// A deterministic point-in-time ranking (see [`FlowScoreboard::snapshot`]).
///
/// The text encoding is line-based and byte-stable:
///
/// ```text
/// # scoreboard tracked=<n> capacity=<c> overflow=<o>
/// flow=<id> score=<s> retx=<r> decode_fail=<d> auth_reject=<a> evictions=<e>
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScoreboardSnapshot {
    /// Top-K rows, highest score first (ties: ascending flow id).
    pub rows: Vec<FlowHealthRow>,
    /// Distinct flows tracked at snapshot time (before top-K truncation).
    pub tracked: usize,
    /// Table capacity.
    pub capacity: usize,
    /// Records dropped because the table was full.
    pub overflow: u64,
}

impl ScoreboardSnapshot {
    /// Renders the stable text encoding (see the type docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# scoreboard tracked={} capacity={} overflow={}",
            self.tracked, self.capacity, self.overflow
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "flow={} score={} retx={} decode_fail={} auth_reject={} evictions={}",
                r.flow,
                r.score(),
                r.retx,
                r.decode_fail,
                r.auth_reject,
                r.evictions
            );
        }
        out
    }

    /// Parses text produced by [`ScoreboardSnapshot::render`].
    pub fn parse(text: &str) -> Result<ScoreboardSnapshot, String> {
        let mut snap = ScoreboardSnapshot::default();
        let mut saw_header = false;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            if let Some(rest) = line.strip_prefix("# scoreboard ") {
                for field in rest.split_whitespace() {
                    let (key, value) = field
                        .split_once('=')
                        .ok_or_else(|| err("bad header field"))?;
                    match key {
                        "tracked" => {
                            snap.tracked = value.parse().map_err(|_| err("bad tracked"))?
                        }
                        "capacity" => {
                            snap.capacity = value.parse().map_err(|_| err("bad capacity"))?
                        }
                        "overflow" => {
                            snap.overflow = value.parse().map_err(|_| err("bad overflow"))?
                        }
                        _ => return Err(err("unknown header field")),
                    }
                }
                saw_header = true;
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut row = FlowHealthRow::default();
            let mut claimed_score = 0u64;
            for field in line.split_whitespace() {
                let (key, value) = field.split_once('=').ok_or_else(|| err("bad field"))?;
                let parse_u64 = || value.parse::<u64>().map_err(|_| err("bad value"));
                match key {
                    "flow" => row.flow = value.parse().map_err(|_| err("bad flow"))?,
                    "score" => claimed_score = parse_u64()?,
                    "retx" => row.retx = parse_u64()?,
                    "decode_fail" => row.decode_fail = parse_u64()?,
                    "auth_reject" => row.auth_reject = parse_u64()?,
                    "evictions" => row.evictions = parse_u64()?,
                    _ => return Err(err("unknown field")),
                }
            }
            if row.score() != claimed_score {
                return Err(err("score does not match the component sum"));
            }
            snap.rows.push(row);
        }
        if !saw_header {
            return Err("missing `# scoreboard` header".into());
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_flow() {
        let sb = FlowScoreboard::with_capacity(16);
        sb.record(7, HealthDim::ProxyRetx);
        sb.record(7, HealthDim::ProxyRetx);
        sb.record(7, HealthDim::DecodeFail);
        sb.record_n(3, HealthDim::AuthReject, 5);
        let snap = sb.snapshot(10);
        assert_eq!(snap.tracked, 2);
        assert_eq!(snap.rows[0].flow, 3, "auth-rejected flow outranks");
        assert_eq!(snap.rows[0].auth_reject, 5);
        assert_eq!(snap.rows[1].flow, 7);
        assert_eq!(snap.rows[1].retx, 2);
        assert_eq!(snap.rows[1].decode_fail, 1);
        assert_eq!(snap.overflow, 0);
    }

    #[test]
    fn top_k_is_deterministic_under_any_arrival_order() {
        // The same event multiset in two different arrival orders must
        // render identically — ranking is (score desc, flow asc), never
        // slot order.
        let mut events: Vec<(u32, HealthDim, u64)> = Vec::new();
        for flow in 0..32u32 {
            events.push((flow, HealthDim::ProxyRetx, (flow as u64 * 7) % 11));
            events.push((flow, HealthDim::Eviction, (flow as u64) % 3));
        }
        let forward = FlowScoreboard::with_capacity(64);
        for (f, d, n) in &events {
            forward.record_n(*f, *d, *n);
        }
        let backward = FlowScoreboard::with_capacity(64);
        for (f, d, n) in events.iter().rev() {
            backward.record_n(*f, *d, *n);
        }
        assert_eq!(
            forward.snapshot(10).render(),
            backward.snapshot(10).render()
        );
    }

    #[test]
    fn full_table_overflows_instead_of_evicting() {
        let sb = FlowScoreboard::with_capacity(8);
        assert_eq!(sb.capacity(), 8);
        for flow in 0..8 {
            sb.record(flow, HealthDim::ProxyRetx);
        }
        sb.record_n(99, HealthDim::ProxyRetx, 3);
        assert_eq!(sb.overflow(), 3);
        let snap = sb.snapshot(100);
        assert_eq!(snap.tracked, 8);
        assert!(snap.rows.iter().all(|r| r.flow != 99));
        assert_eq!(snap.overflow, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let sb = FlowScoreboard::with_capacity(8);
        for flow in 0..9 {
            sb.record(flow, HealthDim::DecodeFail);
        }
        assert!(sb.overflow() > 0);
        sb.reset();
        assert_eq!(sb.overflow(), 0);
        assert_eq!(sb.snapshot(10).tracked, 0);
        sb.record(1, HealthDim::Eviction);
        assert_eq!(sb.snapshot(10).rows[0].evictions, 1);
    }

    #[test]
    fn clones_share_the_table() {
        let a = FlowScoreboard::with_capacity(8);
        let b = a.clone();
        a.record(5, HealthDim::ProxyRetx);
        assert_eq!(b.snapshot(1).rows[0].flow, 5);
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        let sb = FlowScoreboard::with_capacity(64);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let sb = sb.clone();
                std::thread::spawn(move || {
                    for flow in 0..32u32 {
                        for _ in 0..100 {
                            sb.record(flow, HealthDim::ProxyRetx);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = sb.snapshot(64);
        assert_eq!(snap.tracked, 32);
        assert!(snap.rows.iter().all(|r| r.retx == 400), "{snap:?}");
    }

    #[test]
    fn render_parse_roundtrip() {
        let sb = FlowScoreboard::with_capacity(16);
        sb.record_n(4, HealthDim::ProxyRetx, 9);
        sb.record_n(2, HealthDim::Eviction, 9);
        sb.record(11, HealthDim::AuthReject);
        let snap = sb.snapshot(10);
        let text = snap.render();
        let parsed = ScoreboardSnapshot::parse(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "flow=1 score=0",                                                      // no header
            "# scoreboard tracked=x", // bad header value
            "# scoreboard wat=1",     // unknown header field
            "# scoreboard tracked=0 capacity=8 overflow=0\nflow=1 score=5 retx=1", // score lies
            "# scoreboard tracked=0 capacity=8 overflow=0\nflow=1 wat=1", // unknown field
            "# scoreboard tracked=0 capacity=8 overflow=0\nflow", // not key=value
        ] {
            assert!(ScoreboardSnapshot::parse(bad).is_err(), "{bad:?}");
        }
    }
}
