//! Per-packet lifecycle reconstruction — the flight recorder's read side.
//!
//! The write side stamps every simulated data packet and sidecar control
//! datagram with a [`TraceId`] and records typed hop/protocol events into
//! per-world [`EventTrace`] rings. This module merges those rings back into
//! per-packet [`PacketTimeline`]s, checks the causal invariants the sidecar
//! design promises (a proxy retransmission is always *reacting* to a quACK
//! decode; every accepted hop resolves to delivery xor drop), and answers
//! the paper's diagnostic questions: which packets went missing, on which
//! subpath segment, and how fast the sidecar reacted (§2.3).
//!
//! Reconstruction is honest about truncation: a ring that evicted records
//! ([`EventTrace::dropped`] > 0) can prove nothing about events it forgot,
//! so [`Lifecycle::is_complete`] is false and [`Lifecycle::check_causal`]
//! refuses to certify the run rather than vouching for a partial history.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{DropCause, Event, TraceClass};
use crate::trace::EventTrace;

/// Identity of one traced object as it moves across nodes.
///
/// Data packets are identified by `(flow, packet number)` — both already on
/// the wire, so the stamp costs zero extra bytes. Control datagrams get a
/// world-scoped control sequence in obs builds only (the field is left zero
/// when obs is compiled out, making the stamp zero-cost there too).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceId {
    /// Which `(flow, seq)` namespace this id lives in.
    pub class: TraceClass,
    /// Flow id.
    pub flow: u32,
    /// Packet number (data) or control sequence (ctrl).
    pub seq: u64,
}

impl TraceId {
    /// A data-packet id.
    pub fn data(flow: u32, seq: u64) -> Self {
        TraceId {
            class: TraceClass::Data,
            flow,
            seq,
        }
    }

    /// A control-datagram id.
    pub fn ctrl(flow: u32, seq: u64) -> Self {
        TraceId {
            class: TraceClass::Ctrl,
            flow,
            seq,
        }
    }

    /// Parses the `Display` form: `<flow>:<seq>` for data packets,
    /// `ctrl:<flow>:<seq>` for control datagrams (the same syntax
    /// `exp_reaction --explain` accepts).
    pub fn parse(text: &str) -> Result<TraceId, String> {
        let bad = || format!("bad trace id {text:?} (want <flow>:<seq> or ctrl:<flow>:<seq>)");
        let (class, rest) = match text.strip_prefix("ctrl:") {
            Some(rest) => (TraceClass::Ctrl, rest),
            None => (TraceClass::Data, text),
        };
        let (flow, seq) = rest.split_once(':').ok_or_else(bad)?;
        Ok(TraceId {
            class,
            flow: flow.parse().map_err(|_| bad())?,
            seq: seq.parse().map_err(|_| bad())?,
        })
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            TraceClass::Data => write!(f, "{}:{}", self.flow, self.seq),
            TraceClass::Ctrl => write!(f, "ctrl:{}:{}", self.flow, self.seq),
        }
    }
}

/// One traced object's time-ordered lifecycle events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketTimeline {
    /// The object the steps belong to.
    pub id: TraceId,
    /// `(sim-nanoseconds, event)` records, oldest first.
    pub steps: Vec<(u64, Event)>,
}

impl PacketTimeline {
    /// Timestamp of the first recorded step.
    pub fn first_at(&self) -> u64 {
        self.steps.first().map_or(0, |&(at, _)| at)
    }

    /// Timestamp of the last recorded step.
    pub fn last_at(&self) -> u64 {
        self.steps.last().map_or(0, |&(at, _)| at)
    }

    /// Count of steps matching `pred`.
    fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.steps.iter().filter(|(_, e)| pred(e)).count()
    }

    /// True when at least one hop delivered this object.
    pub fn delivered(&self) -> bool {
        self.count(|e| matches!(e, Event::HopDeliver { .. })) > 0
    }

    /// True when at least one hop dropped this object.
    pub fn dropped(&self) -> bool {
        self.count(|e| matches!(e, Event::HopDrop { .. })) > 0
    }

    /// True when a proxy retransmitted this object (§2.3 in-network
    /// recovery).
    pub fn proxy_retransmitted(&self) -> bool {
        self.count(|e| matches!(e, Event::ProxyRetx { .. })) > 0
    }
}

/// Merged view of a run's lifecycle events, grouped per [`TraceId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Lifecycle {
    timelines: BTreeMap<TraceId, PacketTimeline>,
    /// Records evicted from the source rings before reconstruction saw them.
    dropped_records: u64,
}

impl Lifecycle {
    /// Reconstructs timelines from one ring.
    pub fn from_trace(trace: &EventTrace) -> Self {
        Self::from_rings([trace])
    }

    /// Reconstructs timelines by merging several per-node/per-world rings.
    ///
    /// Each ring is already time-ordered; the merge is a stable sort on the
    /// timestamp, so same-stamp records keep their ring order and the result
    /// is deterministic for deterministic inputs.
    pub fn from_rings<'a, I>(rings: I) -> Self
    where
        I: IntoIterator<Item = &'a EventTrace>,
    {
        let mut merged: Vec<(u64, Event)> = Vec::new();
        let mut dropped_records = 0u64;
        for ring in rings {
            dropped_records += ring.dropped();
            merged.extend(ring.events().copied());
        }
        merged.sort_by_key(|&(at, _)| at);
        let mut timelines: BTreeMap<TraceId, PacketTimeline> = BTreeMap::new();
        for (at, event) in merged {
            if let Some(id) = lifecycle_id(&event) {
                timelines
                    .entry(id)
                    .or_insert_with(|| PacketTimeline {
                        id,
                        steps: Vec::new(),
                    })
                    .steps
                    .push((at, event));
            }
        }
        Lifecycle {
            timelines,
            dropped_records,
        }
    }

    /// True when every source ring retained its full history. A truncated
    /// reconstruction still renders what it has, but never claims
    /// completeness (and [`Lifecycle::check_causal`] refuses to certify it).
    pub fn is_complete(&self) -> bool {
        self.dropped_records == 0
    }

    /// Records the source rings evicted before reconstruction.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Number of distinct traced objects.
    pub fn len(&self) -> usize {
        self.timelines.len()
    }

    /// True when no lifecycle events were found.
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }

    /// The timeline for `id`, if any step mentioned it.
    pub fn get(&self, id: TraceId) -> Option<&PacketTimeline> {
        self.timelines.get(&id)
    }

    /// All timelines in `TraceId` order.
    pub fn timelines(&self) -> impl Iterator<Item = &PacketTimeline> {
        self.timelines.values()
    }

    /// Data-packet timelines only (control datagrams excluded).
    pub fn data_timelines(&self) -> impl Iterator<Item = &PacketTimeline> {
        self.timelines
            .values()
            .filter(|t| t.id.class == TraceClass::Data)
    }

    /// Checks the causal invariants of a *complete* reconstruction:
    ///
    /// 1. steps within each timeline are time-ordered (merge sanity);
    /// 2. every `ProxyRetx` is preceded (same `TraceId`, `≤` timestamp) by a
    ///    `DecodeMissing` — in-network retransmission is always a *reaction*
    ///    to a quACK decode, never spontaneous;
    /// 3. hop accounting: deliveries never outnumber enqueues, and at
    ///    quiescence every accepted hop resolved to delivery xor drop
    ///    (`delivers + node_down drops == enqueues`; loss/queue/blackout/
    ///    injected drops happen at transmit time, before any enqueue).
    ///
    /// Worlds stop at a wall-clock deadline rather than at queue drain, so
    /// a timeline may legitimately end with one unresolved `HopEnqueue` —
    /// the packet was on the wire when the simulation cut off (periodic
    /// quACK emitters guarantee this for the last control datagram). That
    /// exact shape — exactly one missing resolution *and* the final step is
    /// the enqueue — is accepted; an unresolved enqueue followed by later
    /// activity on the same packet is still a violation (packets cannot
    /// silently vanish mid-trace).
    ///
    /// Returns the first violation found, or an error immediately when the
    /// source rings were truncated — a partial history can satisfy or
    /// violate any of these vacuously, so nothing is certified.
    pub fn check_causal(&self) -> Result<(), String> {
        if !self.is_complete() {
            return Err(format!(
                "ring truncated ({} records evicted): causal invariants unverifiable",
                self.dropped_records
            ));
        }
        for tl in self.timelines.values() {
            let mut prev = 0u64;
            let mut decode_seen = false;
            let mut enq = 0usize;
            let mut delivered = 0usize;
            let mut arrival_drops = 0usize;
            for &(at, ref event) in &tl.steps {
                if at < prev {
                    return Err(format!("{}: steps out of order at {at}ns", tl.id));
                }
                prev = at;
                match *event {
                    Event::DecodeMissing { .. } => decode_seen = true,
                    Event::ProxyRetx { .. } if !decode_seen => {
                        return Err(format!(
                            "{}: proxy_retx at {at}ns with no preceding decode_missing",
                            tl.id
                        ));
                    }
                    Event::HopEnqueue { .. } => enq += 1,
                    Event::HopDeliver { .. } => delivered += 1,
                    Event::HopDrop {
                        cause: DropCause::NodeDown,
                        ..
                    } => arrival_drops += 1,
                    _ => {}
                }
                if delivered + arrival_drops > enq {
                    return Err(format!(
                        "{}: {delivered} deliveries + {arrival_drops} arrival drops \
                         outnumber {enq} enqueues at {at}ns",
                        tl.id
                    ));
                }
            }
            let in_flight_at_end = delivered + arrival_drops + 1 == enq
                && matches!(tl.steps.last(), Some(&(_, Event::HopEnqueue { .. })));
            if delivered + arrival_drops != enq && !in_flight_at_end {
                return Err(format!(
                    "{}: {enq} enqueues resolved into {delivered} deliveries + \
                     {arrival_drops} arrival drops (packet vanished mid-trace)",
                    tl.id
                ));
            }
        }
        Ok(())
    }

    /// Timelines whose final step is an unresolved `HopEnqueue`: packets on
    /// the wire when the simulation deadline cut the trace. These pass
    /// [`check_causal`](Self::check_causal) (the cutoff is not a protocol
    /// bug) but callers claiming delivery completeness should surface the
    /// count.
    pub fn in_flight_at_end(&self) -> usize {
        self.timelines
            .values()
            .filter(|tl| {
                let mut unresolved = 0i64;
                for (_, event) in &tl.steps {
                    match *event {
                        Event::HopEnqueue { .. } => unresolved += 1,
                        Event::HopDeliver { .. } => unresolved -= 1,
                        Event::HopDrop {
                            cause: DropCause::NodeDown,
                            ..
                        } => unresolved -= 1,
                        _ => {}
                    }
                }
                unresolved == 1 && matches!(tl.steps.last(), Some(&(_, Event::HopEnqueue { .. })))
            })
            .count()
    }

    /// Human-readable timeline for one object: `+offset` per step relative
    /// to the first record, an e2e-recovery cross-reference when the lost
    /// packet number's data unit reappears under a fresh packet number, and
    /// an explicit truncation warning when the source rings evicted records.
    pub fn explain(&self, id: TraceId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(tl) = self.timelines.get(&id) else {
            let _ = writeln!(out, "{id}: no lifecycle events recorded");
            if !self.is_complete() {
                let _ = writeln!(
                    out,
                    "  (ring truncated: {} records evicted — the packet may have \
                     been traced and forgotten)",
                    self.dropped_records
                );
            }
            return out;
        };
        let t0 = tl.first_at();
        let _ = writeln!(
            out,
            "{} ({} packet, {} events, t0={}ns)",
            id,
            id.class.as_str(),
            tl.steps.len(),
            t0
        );
        if !self.is_complete() {
            let _ = writeln!(
                out,
                "  ! ring truncated ({} records evicted): timeline may be partial",
                self.dropped_records
            );
        }
        for &(at, ref event) in &tl.steps {
            let _ = writeln!(out, "  +{:>10.3}ms  {}", ms_since(t0, at), event);
            // A transport-declared loss is recovered end to end under a
            // fresh packet number; follow the data unit there.
            if let Event::E2eLost { flow, unit, .. } = *event {
                if let Some((rt, rseq)) = self.find_e2e_retx(flow, unit, at) {
                    let _ = writeln!(
                        out,
                        "  +{:>10.3}ms  ... unit {unit} recovered by e2e retx as {}",
                        ms_since(t0, rt),
                        TraceId::data(flow, rseq)
                    );
                }
            }
        }
        out
    }

    /// Earliest `E2eRetx` of `(flow, unit)` at or after `after`.
    fn find_e2e_retx(&self, flow: u32, unit: u64, after: u64) -> Option<(u64, u64)> {
        self.data_timelines()
            .filter(|t| t.id.flow == flow)
            .flat_map(|t| t.steps.iter())
            .filter_map(|&(at, ref e)| match *e {
                Event::E2eRetx {
                    flow: f,
                    seq,
                    unit: u,
                    ..
                } if f == flow && u == unit && at >= after => Some((at, seq)),
                _ => None,
            })
            .min()
    }

    /// QuACK→retx reaction latencies (nanoseconds) for §2.3-style
    /// *in-network* recovery: for every `ProxyRetx`, the gap since the first
    /// `DecodeMissing` on the same `TraceId`. Pairs missing a decode are
    /// skipped (they would violate [`Lifecycle::check_causal`] anyway).
    pub fn proxy_reaction_latencies(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for tl in self.data_timelines() {
            let first_decode = tl
                .steps
                .iter()
                .find_map(|&(at, ref e)| matches!(e, Event::DecodeMissing { .. }).then_some(at));
            let Some(t_decode) = first_decode else {
                continue;
            };
            for &(at, ref e) in &tl.steps {
                if matches!(e, Event::ProxyRetx { .. }) && at >= t_decode {
                    out.push(at - t_decode);
                }
            }
        }
        out
    }

    /// QuACK→retx reaction latencies (nanoseconds) for protocols whose
    /// recovery stays *end to end* (§2.1 CCD, §2.2 ACK reduction): the
    /// transport retransmits a data unit under a fresh packet number, so the
    /// join runs `DecodeMissing(pn)` → `E2eLost(pn, unit)` → `E2eRetx(_,
    /// unit)`. Units whose loss the quACK never reported (e.g. lost on the
    /// un-proxied segment) have no quACK reaction and are skipped.
    pub fn e2e_reaction_latencies(&self) -> Vec<u64> {
        // (flow, unit) -> earliest decode_missing stamp among the unit's
        // lost packet numbers.
        let mut first_decode: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        for tl in self.data_timelines() {
            let decode = tl
                .steps
                .iter()
                .find_map(|&(at, ref e)| matches!(e, Event::DecodeMissing { .. }).then_some(at));
            let Some(t_decode) = decode else { continue };
            for (_, e) in &tl.steps {
                if let Event::E2eLost { flow, unit, .. } = *e {
                    first_decode
                        .entry((flow, unit))
                        .and_modify(|t| *t = (*t).min(t_decode))
                        .or_insert(t_decode);
                }
            }
        }
        let mut out = Vec::new();
        for tl in self.data_timelines() {
            for &(at, ref e) in &tl.steps {
                if let Event::E2eRetx { flow, unit, .. } = *e {
                    if let Some(&t_decode) = first_decode.get(&(flow, unit)) {
                        if at >= t_decode {
                            out.push(at - t_decode);
                        }
                    }
                }
            }
        }
        out
    }

    /// Data-packet drops attributed to `(node, iface)` path segments — the
    /// per-subpath loss breakdown §2.3's frequency tuning keys off.
    pub fn drop_segments(&self) -> BTreeMap<(u32, u32), u64> {
        let mut out: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for tl in self.data_timelines() {
            for (_, e) in &tl.steps {
                if let Event::HopDrop { node, iface, .. } = *e {
                    *out.entry((node, iface)).or_default() += 1;
                }
            }
        }
        out
    }
}

/// Which timeline an event belongs to, if it is a lifecycle event at all.
fn lifecycle_id(event: &Event) -> Option<TraceId> {
    Some(match *event {
        Event::HopEnqueue {
            class, flow, seq, ..
        }
        | Event::HopDeliver {
            class, flow, seq, ..
        }
        | Event::HopDrop {
            class, flow, seq, ..
        } => TraceId { class, flow, seq },
        Event::QuackFold { flow, seq, .. }
        | Event::DecodeMissing { flow, seq, .. }
        | Event::ProxyRetx { flow, seq, .. }
        | Event::E2eLost { flow, seq, .. }
        | Event::E2eRetx { flow, seq, .. } => TraceId::data(flow, seq),
        _ => return None,
    })
}

fn ms_since(t0: u64, at: u64) -> f64 {
    (at - t0) as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(kind: u8, node: u32, seq: u64) -> Event {
        match kind {
            0 => Event::HopEnqueue {
                node,
                iface: 0,
                class: TraceClass::Data,
                flow: 1,
                seq,
            },
            1 => Event::HopDeliver {
                node,
                iface: 0,
                class: TraceClass::Data,
                flow: 1,
                seq,
            },
            _ => Event::HopDrop {
                node,
                iface: 0,
                class: TraceClass::Data,
                flow: 1,
                seq,
                cause: DropCause::Loss,
            },
        }
    }

    #[test]
    fn trace_id_display_parse_roundtrip() {
        for id in [
            TraceId::data(7, 4182),
            TraceId::ctrl(0, 9),
            TraceId::data(0, 0),
        ] {
            assert_eq!(TraceId::parse(&id.to_string()).unwrap(), id);
        }
        assert!(TraceId::parse("7").is_err());
        assert!(TraceId::parse("a:b").is_err());
        assert!(TraceId::parse("ctrl:7").is_err());
    }

    #[test]
    fn reconstruction_groups_and_orders() {
        let mut ring = EventTrace::with_capacity(64);
        ring.record(10, hop(0, 0, 5));
        ring.record(20, hop(0, 0, 6));
        ring.record(30, hop(1, 1, 5));
        ring.record(40, hop(1, 1, 6));
        ring.record(15, Event::Restart { node: 2 }); // not a lifecycle event
        let lc = Lifecycle::from_trace(&ring);
        assert!(lc.is_complete());
        assert_eq!(lc.len(), 2);
        let tl = lc.get(TraceId::data(1, 5)).unwrap();
        assert_eq!(tl.steps.len(), 2);
        assert!(tl.delivered());
        assert!(!tl.dropped());
        lc.check_causal().unwrap();
    }

    #[test]
    fn truncated_ring_refuses_certification() {
        let mut ring = EventTrace::with_capacity(1);
        ring.record(10, hop(0, 0, 5));
        ring.record(20, hop(1, 1, 5));
        let lc = Lifecycle::from_trace(&ring);
        assert!(!lc.is_complete());
        assert!(lc.check_causal().is_err());
        let text = lc.explain(TraceId::data(1, 5));
        assert!(text.contains("truncated"), "{text}");
    }

    #[test]
    fn spontaneous_proxy_retx_is_a_violation() {
        // First send lost at transmit (drop, no enqueue), then a proxy retx
        // with no quACK decode in front of it: violation.
        let mut ring = EventTrace::with_capacity(64);
        ring.record(10, hop(2, 1, 5));
        ring.record(
            30,
            Event::ProxyRetx {
                node: 1,
                flow: 1,
                seq: 5,
            },
        );
        ring.record(40, hop(0, 1, 5));
        ring.record(50, hop(1, 2, 5));
        let lc = Lifecycle::from_trace(&ring);
        assert!(lc.check_causal().is_err());
        // With the decode in front it passes.
        let mut ring2 = EventTrace::with_capacity(64);
        ring2.record(10, hop(2, 1, 5));
        ring2.record(
            25,
            Event::DecodeMissing {
                node: 1,
                flow: 1,
                seq: 5,
            },
        );
        ring2.record(
            30,
            Event::ProxyRetx {
                node: 1,
                flow: 1,
                seq: 5,
            },
        );
        ring2.record(40, hop(0, 1, 5));
        ring2.record(50, hop(1, 2, 5));
        let lc2 = Lifecycle::from_trace(&ring2);
        lc2.check_causal().unwrap();
        assert_eq!(lc2.proxy_reaction_latencies(), vec![5]);
    }

    #[test]
    fn trailing_enqueue_is_in_flight_at_cutoff_not_a_violation() {
        // The deadline cut the trace with the packet on the wire: the lone
        // unresolved enqueue is the final step, so accounting tolerates it
        // but the packet is reported as in flight.
        let mut ring = EventTrace::with_capacity(64);
        ring.record(10, hop(0, 0, 5));
        let lc = Lifecycle::from_trace(&ring);
        lc.check_causal().unwrap();
        assert_eq!(lc.in_flight_at_end(), 1);
    }

    #[test]
    fn vanish_mid_trace_is_a_violation() {
        // Enqueue with no resolution followed by *later* activity on the
        // same packet: the packet silently vanished mid-trace, which the
        // cutoff exemption must not excuse.
        let mut ring = EventTrace::with_capacity(64);
        ring.record(10, hop(0, 0, 5));
        ring.record(20, hop(0, 0, 5));
        ring.record(30, hop(1, 1, 5));
        let lc = Lifecycle::from_trace(&ring);
        assert!(lc.check_causal().unwrap_err().contains("vanished"));
        assert_eq!(lc.in_flight_at_end(), 0);
    }

    #[test]
    fn e2e_reaction_joins_through_lost_unit() {
        let mut ring = EventTrace::with_capacity(64);
        // pn 5 carries unit 4; quACK reports it missing at t=100; transport
        // declares the loss at t=150 and resends unit 4 as pn 9 at t=160.
        ring.record(
            100,
            Event::DecodeMissing {
                node: 0,
                flow: 1,
                seq: 5,
            },
        );
        ring.record(
            150,
            Event::E2eLost {
                node: 0,
                flow: 1,
                seq: 5,
                unit: 4,
            },
        );
        ring.record(
            160,
            Event::E2eRetx {
                node: 0,
                flow: 1,
                seq: 9,
                unit: 4,
            },
        );
        let lc = Lifecycle::from_trace(&ring);
        assert_eq!(lc.e2e_reaction_latencies(), vec![60]);
        let text = lc.explain(TraceId::data(1, 5));
        assert!(text.contains("recovered by e2e retx as 1:9"), "{text}");
    }

    #[test]
    fn drop_segments_attribute_by_node_and_iface() {
        let mut ring = EventTrace::with_capacity(64);
        ring.record(10, hop(2, 1, 5));
        ring.record(20, hop(2, 1, 6));
        let lc = Lifecycle::from_trace(&ring);
        let segs = lc.drop_segments();
        assert_eq!(segs.get(&(1, 0)), Some(&2));
    }
}
