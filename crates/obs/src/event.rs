//! Typed trace events with a stable, parseable text form.

use std::fmt;

/// Why the simulator dropped a packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Random loss from the link's loss model.
    Loss,
    /// The link queue was full.
    Queue,
    /// The destination node was down.
    NodeDown,
    /// A fault-plan blackout covered the link.
    Blackout,
    /// A fault-plan control rule dropped it.
    Injected,
}

impl DropCause {
    fn as_str(self) -> &'static str {
        match self {
            DropCause::Loss => "loss",
            DropCause::Queue => "queue",
            DropCause::NodeDown => "node_down",
            DropCause::Blackout => "blackout",
            DropCause::Injected => "injected",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "loss" => DropCause::Loss,
            "queue" => DropCause::Queue,
            "node_down" => DropCause::NodeDown,
            "blackout" => DropCause::Blackout,
            "injected" => DropCause::Injected,
            _ => return None,
        })
    }
}

/// Which fault-plan control rule fired on a matched packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ControlKind {
    /// Packet duplicated.
    Duplicate,
    /// Packet delayed by an extra latency.
    Delay,
    /// Packet payload corrupted.
    Corrupt,
    /// An adversary injected a forged control datagram.
    Forge,
    /// An adversary re-sent a captured control datagram.
    Replay,
    /// An adversary delivered a bit-flipped copy alongside the original.
    Tamper,
    /// A stateful firewall dropped an idle-expired control flow's packet.
    Firewall,
}

impl ControlKind {
    fn as_str(self) -> &'static str {
        match self {
            ControlKind::Duplicate => "duplicate",
            ControlKind::Delay => "delay",
            ControlKind::Corrupt => "corrupt",
            ControlKind::Forge => "forge",
            ControlKind::Replay => "replay",
            ControlKind::Tamper => "tamper",
            ControlKind::Firewall => "firewall",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "duplicate" => ControlKind::Duplicate,
            "delay" => ControlKind::Delay,
            "corrupt" => ControlKind::Corrupt,
            "forge" => ControlKind::Forge,
            "replay" => ControlKind::Replay,
            "tamper" => ControlKind::Tamper,
            "firewall" => ControlKind::Firewall,
            _ => return None,
        })
    }
}

/// Why an authenticated control channel rejected an inbound datagram
/// (mirrors `sidecar-proto`'s `AuthError` kinds).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AuthRejectKind {
    /// The datagram carried no authentication envelope at all.
    Unauthenticated,
    /// The body was too short for the envelope.
    Truncated,
    /// Unknown pre-shared-key generation.
    UnknownKey,
    /// MAC verification failed (forged or tampered).
    BadMac,
    /// Sequence number already accepted (replay).
    Replayed,
    /// Sequence number behind the sliding replay window.
    Stale,
    /// MAC verified but the inner body failed to decode.
    Malformed,
}

impl AuthRejectKind {
    fn as_str(self) -> &'static str {
        match self {
            AuthRejectKind::Unauthenticated => "unauthenticated",
            AuthRejectKind::Truncated => "truncated",
            AuthRejectKind::UnknownKey => "unknown_key",
            AuthRejectKind::BadMac => "bad_mac",
            AuthRejectKind::Replayed => "replayed",
            AuthRejectKind::Stale => "stale",
            AuthRejectKind::Malformed => "malformed",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "unauthenticated" => AuthRejectKind::Unauthenticated,
            "truncated" => AuthRejectKind::Truncated,
            "unknown_key" => AuthRejectKind::UnknownKey,
            "bad_mac" => AuthRejectKind::BadMac,
            "replayed" => AuthRejectKind::Replayed,
            "stale" => AuthRejectKind::Stale,
            "malformed" => AuthRejectKind::Malformed,
            _ => return None,
        })
    }
}

/// Supervisor session state, mirrored from `sidecar-proto`'s state machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Handshaking, sidecar not yet active.
    Connecting,
    /// Sidecar assistance active.
    Active,
    /// Fallen back to baseline behavior.
    Degraded,
}

impl SessionState {
    fn as_str(self) -> &'static str {
        match self {
            SessionState::Connecting => "connecting",
            SessionState::Active => "active",
            SessionState::Degraded => "degraded",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "connecting" => SessionState::Connecting,
            "active" => SessionState::Active,
            "degraded" => SessionState::Degraded,
            _ => return None,
        })
    }
}

/// Which identifier namespace a lifecycle event's `(flow, seq)` pair lives
/// in.
///
/// Data packets reuse the transport's packet number as `seq` (zero wire
/// cost); sidecar control datagrams are stamped with a world-scoped control
/// sequence (obs builds only — the field stays zero when obs is compiled
/// out). The class keeps the two keyspaces from colliding inside one flow.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceClass {
    /// A transport data packet; `seq` is its packet number.
    Data,
    /// A sidecar control datagram; `seq` is the world's control sequence.
    Ctrl,
}

impl TraceClass {
    /// Stable text tag (`data` / `ctrl`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceClass::Data => "data",
            TraceClass::Ctrl => "ctrl",
        }
    }

    /// Parses [`TraceClass::as_str`] output.
    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "data" => TraceClass::Data,
            "ctrl" => TraceClass::Ctrl,
            _ => return None,
        })
    }
}

/// Why a received quACK failed to process.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QuackErrorKind {
    /// More identifiers missing than the sketch threshold can decode.
    Threshold,
    /// The quACK's epoch does not match the receiver's.
    WrongEpoch,
    /// Cumulative count went backwards (an old quACK arrived late).
    Stale,
    /// The wire bytes failed to parse.
    Malformed,
    /// Decoded missing set inconsistent with the counts.
    CountInconsistent,
}

impl QuackErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            QuackErrorKind::Threshold => "threshold",
            QuackErrorKind::WrongEpoch => "wrong_epoch",
            QuackErrorKind::Stale => "stale",
            QuackErrorKind::Malformed => "malformed",
            QuackErrorKind::CountInconsistent => "count_inconsistent",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "threshold" => QuackErrorKind::Threshold,
            "wrong_epoch" => QuackErrorKind::WrongEpoch,
            "stale" => QuackErrorKind::Stale,
            "malformed" => QuackErrorKind::Malformed,
            "count_inconsistent" => QuackErrorKind::CountInconsistent,
            _ => return None,
        })
    }
}

/// One structured trace event.
///
/// Fields are plain integers/enums (no strings, no references) so events are
/// `Copy` and the ring buffer never allocates per record. The `Display` form
/// is `kind key=value …` with keys in a fixed order; [`Event::parse`] is its
/// exact inverse (round-trip tested in `core`'s wire-fuzz suite).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The simulator dropped a packet a node tried to transmit.
    LinkDrop {
        /// Transmitting node.
        node: u32,
        /// Interface the packet went out on.
        iface: u32,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A fault-plan outage edge: the node went down (`up=false`) or came
    /// back (`up=true`).
    Outage {
        /// Affected node.
        node: u32,
        /// New availability.
        up: bool,
    },
    /// A fault-plan control rule matched a transmitted packet.
    ControlFault {
        /// Transmitting node.
        node: u32,
        /// Which rule fired.
        kind: ControlKind,
    },
    /// A node restarted after an outage (its `on_restart` hook ran).
    Restart {
        /// Restarted node.
        node: u32,
    },
    /// A sidecar negotiation handshake was processed.
    Handshake {
        /// Node that processed the hello.
        node: u32,
        /// Whether the offer was accepted.
        accepted: bool,
    },
    /// A supervisor state transition.
    Transition {
        /// Node whose supervisor moved.
        node: u32,
        /// Previous state.
        from: SessionState,
        /// New state.
        to: SessionState,
    },
    /// A quACK was emitted onto the wire.
    QuackSent {
        /// Sending node.
        node: u32,
        /// Sketch epoch.
        epoch: u32,
        /// Cumulative packet count in the sketch.
        count: u32,
        /// Wire bytes of the sidecar message.
        bytes: u32,
    },
    /// A received quACK decoded successfully.
    QuackDecoded {
        /// Receiving node.
        node: u32,
        /// Identifiers newly confirmed received.
        received: u32,
        /// Identifiers newly detected missing.
        missing: u32,
    },
    /// A received quACK failed to process.
    QuackError {
        /// Receiving node.
        node: u32,
        /// Failure class.
        kind: QuackErrorKind,
    },
    /// Producer batch fill level at flush time (SIMD lane occupancy).
    BatchFill {
        /// Producing node.
        node: u32,
        /// Identifiers in the batch when it flushed.
        fill: u32,
    },
    /// A packet was accepted onto a link's queue (flight-recorder hop).
    HopEnqueue {
        /// Transmitting node.
        node: u32,
        /// Interface the packet went out on.
        iface: u32,
        /// Identifier namespace of `(flow, seq)`.
        class: TraceClass,
        /// Flow id.
        flow: u32,
        /// Packet number (data) or control sequence (ctrl).
        seq: u64,
    },
    /// A packet arrived at the far end of a link and was dispatched.
    HopDeliver {
        /// Receiving node.
        node: u32,
        /// Interface the packet arrived on.
        iface: u32,
        /// Identifier namespace of `(flow, seq)`.
        class: TraceClass,
        /// Flow id.
        flow: u32,
        /// Packet number (data) or control sequence (ctrl).
        seq: u64,
    },
    /// A packet was dropped in flight (flight-recorder twin of
    /// [`Event::LinkDrop`], carrying the packet's identity).
    HopDrop {
        /// Node charged with the drop (transmitter, or receiver for
        /// `node_down`).
        node: u32,
        /// Interface involved.
        iface: u32,
        /// Identifier namespace of `(flow, seq)`.
        class: TraceClass,
        /// Flow id.
        flow: u32,
        /// Packet number (data) or control sequence (ctrl).
        seq: u64,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A proxy folded a data packet into its quACK sketch.
    QuackFold {
        /// Observing proxy node.
        node: u32,
        /// Flow id.
        flow: u32,
        /// Packet number.
        seq: u64,
    },
    /// A quACK decode newly reported this packet missing on the proxied
    /// segment.
    DecodeMissing {
        /// Decoding node (quACK consumer).
        node: u32,
        /// Flow id.
        flow: u32,
        /// Packet number (the consumer's in-transit tag).
        seq: u64,
    },
    /// A sender-side proxy retransmitted a buffered packet (§2.3).
    ProxyRetx {
        /// Retransmitting proxy node.
        node: u32,
        /// Flow id.
        flow: u32,
        /// Packet number (unchanged: the proxy replays the buffered copy).
        seq: u64,
    },
    /// The end-to-end transport declared a packet number lost.
    E2eLost {
        /// Sender node.
        node: u32,
        /// Flow id.
        flow: u32,
        /// The lost packet number.
        seq: u64,
        /// The data unit it carried (retransmissions get a fresh packet
        /// number; the unit is the stable join key).
        unit: u64,
    },
    /// The end-to-end transport retransmitted a data unit.
    E2eRetx {
        /// Sender node.
        node: u32,
        /// Flow id.
        flow: u32,
        /// The fresh packet number carrying the retransmission.
        seq: u64,
        /// The recovered data unit.
        unit: u64,
    },
    /// An authenticated control channel rejected an inbound datagram.
    AuthReject {
        /// Rejecting node.
        node: u32,
        /// Why it was rejected.
        kind: AuthRejectKind,
    },
}

impl Event {
    /// The event's kind tag (the first token of its `Display` form).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::LinkDrop { .. } => "link_drop",
            Event::Outage { .. } => "outage",
            Event::ControlFault { .. } => "control_fault",
            Event::Restart { .. } => "restart",
            Event::Handshake { .. } => "handshake",
            Event::Transition { .. } => "transition",
            Event::QuackSent { .. } => "quack_sent",
            Event::QuackDecoded { .. } => "quack_decoded",
            Event::QuackError { .. } => "quack_error",
            Event::BatchFill { .. } => "batch_fill",
            Event::HopEnqueue { .. } => "hop_enqueue",
            Event::HopDeliver { .. } => "hop_deliver",
            Event::HopDrop { .. } => "hop_drop",
            Event::QuackFold { .. } => "quack_fold",
            Event::DecodeMissing { .. } => "decode_missing",
            Event::ProxyRetx { .. } => "proxy_retx",
            Event::E2eLost { .. } => "e2e_lost",
            Event::E2eRetx { .. } => "e2e_retx",
            Event::AuthReject { .. } => "auth_reject",
        }
    }

    /// Parses the `Display` form back into an event.
    pub fn parse(text: &str) -> Result<Event, String> {
        let mut parts = text.split_whitespace();
        let kind = parts.next().ok_or("empty event")?;
        let mut fields = Vec::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad field {part:?}"))?;
            fields.push((k, v));
        }
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field {key:?} in {text:?}"))
        };
        let num = |key: &str| -> Result<u32, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("bad numeric field {key:?} in {text:?}"))
        };
        let num64 = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("bad numeric field {key:?} in {text:?}"))
        };
        let class = || -> Result<TraceClass, String> {
            TraceClass::from_str(get("class")?).ok_or_else(|| format!("bad class in {text:?}"))
        };
        let flag = |key: &str| -> Result<bool, String> {
            match get(key)? {
                "true" => Ok(true),
                "false" => Ok(false),
                other => Err(format!("bad bool {other:?} in {text:?}")),
            }
        };
        let expected = match kind {
            "hop_drop" => 6,
            "hop_enqueue" | "hop_deliver" => 5,
            "quack_sent" | "e2e_lost" | "e2e_retx" => 4,
            "link_drop" | "quack_decoded" | "transition" => 3,
            "quack_fold" | "decode_missing" | "proxy_retx" => 3,
            "restart" => 1,
            _ => 2,
        };
        if fields.len() != expected {
            return Err(format!("wrong field count for {kind:?} in {text:?}"));
        }
        Ok(match kind {
            "link_drop" => Event::LinkDrop {
                node: num("node")?,
                iface: num("iface")?,
                cause: DropCause::from_str(get("cause")?)
                    .ok_or_else(|| format!("bad cause in {text:?}"))?,
            },
            "outage" => Event::Outage {
                node: num("node")?,
                up: flag("up")?,
            },
            "control_fault" => Event::ControlFault {
                node: num("node")?,
                kind: ControlKind::from_str(get("kind")?)
                    .ok_or_else(|| format!("bad control kind in {text:?}"))?,
            },
            "restart" => Event::Restart { node: num("node")? },
            "handshake" => Event::Handshake {
                node: num("node")?,
                accepted: flag("accepted")?,
            },
            "transition" => Event::Transition {
                node: num("node")?,
                from: SessionState::from_str(get("from")?)
                    .ok_or_else(|| format!("bad state in {text:?}"))?,
                to: SessionState::from_str(get("to")?)
                    .ok_or_else(|| format!("bad state in {text:?}"))?,
            },
            "quack_sent" => Event::QuackSent {
                node: num("node")?,
                epoch: num("epoch")?,
                count: num("count")?,
                bytes: num("bytes")?,
            },
            "quack_decoded" => Event::QuackDecoded {
                node: num("node")?,
                received: num("received")?,
                missing: num("missing")?,
            },
            "quack_error" => Event::QuackError {
                node: num("node")?,
                kind: QuackErrorKind::from_str(get("kind")?)
                    .ok_or_else(|| format!("bad error kind in {text:?}"))?,
            },
            "batch_fill" => Event::BatchFill {
                node: num("node")?,
                fill: num("fill")?,
            },
            "hop_enqueue" => Event::HopEnqueue {
                node: num("node")?,
                iface: num("iface")?,
                class: class()?,
                flow: num("flow")?,
                seq: num64("seq")?,
            },
            "hop_deliver" => Event::HopDeliver {
                node: num("node")?,
                iface: num("iface")?,
                class: class()?,
                flow: num("flow")?,
                seq: num64("seq")?,
            },
            "hop_drop" => Event::HopDrop {
                node: num("node")?,
                iface: num("iface")?,
                class: class()?,
                flow: num("flow")?,
                seq: num64("seq")?,
                cause: DropCause::from_str(get("cause")?)
                    .ok_or_else(|| format!("bad cause in {text:?}"))?,
            },
            "quack_fold" => Event::QuackFold {
                node: num("node")?,
                flow: num("flow")?,
                seq: num64("seq")?,
            },
            "decode_missing" => Event::DecodeMissing {
                node: num("node")?,
                flow: num("flow")?,
                seq: num64("seq")?,
            },
            "proxy_retx" => Event::ProxyRetx {
                node: num("node")?,
                flow: num("flow")?,
                seq: num64("seq")?,
            },
            "e2e_lost" => Event::E2eLost {
                node: num("node")?,
                flow: num("flow")?,
                seq: num64("seq")?,
                unit: num64("unit")?,
            },
            "e2e_retx" => Event::E2eRetx {
                node: num("node")?,
                flow: num("flow")?,
                seq: num64("seq")?,
                unit: num64("unit")?,
            },
            "auth_reject" => Event::AuthReject {
                node: num("node")?,
                kind: AuthRejectKind::from_str(get("kind")?)
                    .ok_or_else(|| format!("bad auth reject kind in {text:?}"))?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::LinkDrop { node, iface, cause } => {
                write!(
                    f,
                    "link_drop node={node} iface={iface} cause={}",
                    cause.as_str()
                )
            }
            Event::Outage { node, up } => write!(f, "outage node={node} up={up}"),
            Event::ControlFault { node, kind } => {
                write!(f, "control_fault node={node} kind={}", kind.as_str())
            }
            Event::Restart { node } => write!(f, "restart node={node}"),
            Event::Handshake { node, accepted } => {
                write!(f, "handshake node={node} accepted={accepted}")
            }
            Event::Transition { node, from, to } => {
                write!(
                    f,
                    "transition node={node} from={} to={}",
                    from.as_str(),
                    to.as_str()
                )
            }
            Event::QuackSent {
                node,
                epoch,
                count,
                bytes,
            } => write!(
                f,
                "quack_sent node={node} epoch={epoch} count={count} bytes={bytes}"
            ),
            Event::QuackDecoded {
                node,
                received,
                missing,
            } => write!(
                f,
                "quack_decoded node={node} received={received} missing={missing}"
            ),
            Event::QuackError { node, kind } => {
                write!(f, "quack_error node={node} kind={}", kind.as_str())
            }
            Event::BatchFill { node, fill } => write!(f, "batch_fill node={node} fill={fill}"),
            Event::HopEnqueue {
                node,
                iface,
                class,
                flow,
                seq,
            } => write!(
                f,
                "hop_enqueue node={node} iface={iface} class={} flow={flow} seq={seq}",
                class.as_str()
            ),
            Event::HopDeliver {
                node,
                iface,
                class,
                flow,
                seq,
            } => write!(
                f,
                "hop_deliver node={node} iface={iface} class={} flow={flow} seq={seq}",
                class.as_str()
            ),
            Event::HopDrop {
                node,
                iface,
                class,
                flow,
                seq,
                cause,
            } => write!(
                f,
                "hop_drop node={node} iface={iface} class={} flow={flow} seq={seq} cause={}",
                class.as_str(),
                cause.as_str()
            ),
            Event::QuackFold { node, flow, seq } => {
                write!(f, "quack_fold node={node} flow={flow} seq={seq}")
            }
            Event::DecodeMissing { node, flow, seq } => {
                write!(f, "decode_missing node={node} flow={flow} seq={seq}")
            }
            Event::ProxyRetx { node, flow, seq } => {
                write!(f, "proxy_retx node={node} flow={flow} seq={seq}")
            }
            Event::E2eLost {
                node,
                flow,
                seq,
                unit,
            } => write!(f, "e2e_lost node={node} flow={flow} seq={seq} unit={unit}"),
            Event::E2eRetx {
                node,
                flow,
                seq,
                unit,
            } => write!(f, "e2e_retx node={node} flow={flow} seq={seq} unit={unit}"),
            Event::AuthReject { node, kind } => {
                write!(f, "auth_reject node={node} kind={}", kind.as_str())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::LinkDrop {
                node: 1,
                iface: 0,
                cause: DropCause::Loss,
            },
            Event::LinkDrop {
                node: 2,
                iface: 1,
                cause: DropCause::Blackout,
            },
            Event::Outage { node: 3, up: false },
            Event::ControlFault {
                node: 3,
                kind: ControlKind::Duplicate,
            },
            Event::Restart { node: 3 },
            Event::Handshake {
                node: 4,
                accepted: true,
            },
            Event::Transition {
                node: 4,
                from: SessionState::Connecting,
                to: SessionState::Active,
            },
            Event::QuackSent {
                node: 1,
                epoch: 2,
                count: 17,
                bytes: 82,
            },
            Event::QuackDecoded {
                node: 0,
                received: 5,
                missing: 2,
            },
            Event::QuackError {
                node: 0,
                kind: QuackErrorKind::Threshold,
            },
            Event::BatchFill { node: 1, fill: 8 },
            Event::HopEnqueue {
                node: 0,
                iface: 0,
                class: TraceClass::Data,
                flow: 7,
                seq: 4182,
            },
            Event::HopDeliver {
                node: 1,
                iface: 0,
                class: TraceClass::Ctrl,
                flow: 7,
                seq: u64::MAX,
            },
            Event::HopDrop {
                node: 1,
                iface: 1,
                class: TraceClass::Data,
                flow: 7,
                seq: 4182,
                cause: DropCause::Loss,
            },
            Event::QuackFold {
                node: 1,
                flow: 7,
                seq: 4182,
            },
            Event::DecodeMissing {
                node: 0,
                flow: 7,
                seq: 4182,
            },
            Event::ProxyRetx {
                node: 1,
                flow: 7,
                seq: 4182,
            },
            Event::E2eLost {
                node: 0,
                flow: 7,
                seq: 4182,
                unit: 4181,
            },
            Event::E2eRetx {
                node: 0,
                flow: 7,
                seq: 4190,
                unit: 4181,
            },
            Event::ControlFault {
                node: 2,
                kind: ControlKind::Forge,
            },
            Event::ControlFault {
                node: 2,
                kind: ControlKind::Replay,
            },
            Event::ControlFault {
                node: 2,
                kind: ControlKind::Tamper,
            },
            Event::ControlFault {
                node: 2,
                kind: ControlKind::Firewall,
            },
            Event::AuthReject {
                node: 4,
                kind: AuthRejectKind::BadMac,
            },
            Event::AuthReject {
                node: 4,
                kind: AuthRejectKind::Replayed,
            },
            Event::AuthReject {
                node: 4,
                kind: AuthRejectKind::Unauthenticated,
            },
        ]
    }

    #[test]
    fn display_parse_roundtrip() {
        for ev in samples() {
            let text = ev.to_string();
            assert_eq!(Event::parse(&text).unwrap(), ev, "{text}");
            assert!(text.starts_with(ev.kind()));
        }
    }

    #[test]
    fn malformed_events_rejected() {
        for bad in [
            "",
            "wat node=1",
            "restart",
            "restart node=x",
            "restart node=1 extra=2",
            "link_drop node=1 iface=0 cause=gremlins",
            "outage node=1 up=maybe",
            "transition node=1 from=active",
            "quack_sent node=1 epoch=0 count=1",
            "hop_enqueue node=1 iface=0 class=warp flow=1 seq=2",
            "hop_drop node=1 iface=0 class=data flow=1 seq=2",
            "quack_fold node=1 flow=1",
            "e2e_lost node=0 flow=1 seq=2",
            "proxy_retx node=1 flow=1 seq=-2",
            "control_fault node=1 kind=gremlins",
            "auth_reject node=1 kind=gremlins",
            "auth_reject node=1",
        ] {
            assert!(Event::parse(bad).is_err(), "{bad:?}");
        }
    }
}
