//! Zero-dependency Prometheus text exposition for [`MetricsSnapshot`]s.
//!
//! [`render_prometheus`] turns a snapshot into the Prometheus text format
//! (version 0.0.4): one `# TYPE` header per family, counters and gauges as
//! single samples, histograms as *cumulative* `_bucket{le="…"}` samples
//! plus `_sum`/`_count` — exactly what a stock Prometheus scraper expects
//! from the live admin endpoint's `/metrics`.
//!
//! Registry names use dots (`netsim.delivered`); Prometheus metric names
//! may not. [`sanitize_metric_name`] maps every illegal character to `_`,
//! so `netsim.delivered` is exposed as `netsim_delivered`. The mapping is
//! lossy in general (distinct registry names *could* collide after
//! sanitizing), which is why [`parse_prometheus`] — the inverse used by
//! tests and scrape validation — works over already-sanitized names:
//! `parse(render(s))` equals `s` exactly when `s`'s names are already in
//! sanitized form, and `render(parse(t))` is byte-identical for any `t`
//! this module rendered.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Maps a registry metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`, and
/// a leading digit gets a `_` prefix. Empty names become `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn is_sanitized(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Renders `snap` in the Prometheus text exposition format (see module
/// docs). Deterministic: snapshot order is name order, and floats use
/// shortest-roundtrip formatting.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value:?}");
    }
    for h in &snap.histograms {
        let name = sanitize_metric_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &count) in h.buckets.iter().enumerate() {
            cum += count;
            match h.bounds.get(i) {
                Some(le) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// Parses text produced by [`render_prometheus`] back into a
/// [`MetricsSnapshot`] (with sanitized names). Used by the exposition
/// roundtrip tests and by scrape-validation tooling; not a general
/// Prometheus parser — it insists on the exact shape this module renders
/// (a `# TYPE` header before each family, cumulative buckets, `_sum` and
/// `_count` trailing each histogram).
pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
    #[derive(PartialEq)]
    enum Kind {
        Counter,
        Gauge,
        Histogram,
    }
    let mut snap = MetricsSnapshot::default();
    let mut family: Option<(String, Kind)> = None;
    // In-progress histogram: (name, cumulative buckets with bounds, sum, count).
    let mut hist: Option<HistogramSnapshot> = None;
    let mut hist_done = (false, false); // saw _sum, saw _count
    let flush_hist = |hist: &mut Option<HistogramSnapshot>,
                      done: &mut (bool, bool),
                      snap: &mut MetricsSnapshot|
     -> Result<(), String> {
        if let Some(mut h) = hist.take() {
            if !done.0 || !done.1 {
                return Err(format!("histogram {} missing _sum or _count", h.name));
            }
            // De-cumulate the buckets.
            let mut prev = 0u64;
            for b in h.buckets.iter_mut() {
                let cum = *b;
                *b = cum
                    .checked_sub(prev)
                    .ok_or_else(|| format!("histogram {}: non-cumulative buckets", h.name))?;
                prev = cum;
            }
            if h.buckets.len() != h.bounds.len() + 1 {
                return Err(format!("histogram {}: missing +Inf bucket", h.name));
            }
            snap.histograms.push(h);
        }
        *done = (false, false);
        Ok(())
    };

    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            flush_hist(&mut hist, &mut hist_done, &mut snap)?;
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| err("missing family name"))?;
            if !is_sanitized(name) {
                return Err(err("illegal metric name"));
            }
            let kind = match parts.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                _ => return Err(err("unknown family type")),
            };
            if parts.next().is_some() {
                return Err(err("trailing garbage"));
            }
            if kind == Kind::Histogram {
                hist = Some(HistogramSnapshot {
                    name: name.to_string(),
                    ..HistogramSnapshot::default()
                });
            }
            family = Some((name.to_string(), kind));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comments
        }
        let (sample, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("missing sample value"))?;
        let (name, kind) = family.as_ref().ok_or_else(|| err("sample before # TYPE"))?;
        match kind {
            Kind::Counter => {
                if sample != name {
                    return Err(err("sample name does not match its family"));
                }
                let v: u64 = value.parse().map_err(|_| err("bad counter value"))?;
                snap.counters.push((name.clone(), v));
            }
            Kind::Gauge => {
                if sample != name {
                    return Err(err("sample name does not match its family"));
                }
                let v: f64 = value.parse().map_err(|_| err("bad gauge value"))?;
                snap.gauges.push((name.clone(), v));
            }
            Kind::Histogram => {
                let h = hist.as_mut().expect("histogram family opens hist state");
                if let Some(rest) = sample.strip_prefix(name.as_str()) {
                    if let Some(le) = rest
                        .strip_prefix("_bucket{le=\"")
                        .and_then(|s| s.strip_suffix("\"}"))
                    {
                        let cum: u64 = value.parse().map_err(|_| err("bad bucket value"))?;
                        if le != "+Inf" {
                            let bound: u64 = le.parse().map_err(|_| err("bad le bound"))?;
                            h.bounds.push(bound);
                        }
                        h.buckets.push(cum);
                        continue;
                    }
                    if rest == "_sum" {
                        h.sum = value.parse().map_err(|_| err("bad sum"))?;
                        hist_done.0 = true;
                        continue;
                    }
                    if rest == "_count" {
                        h.count = value.parse().map_err(|_| err("bad count"))?;
                        hist_done.1 = true;
                        continue;
                    }
                }
                return Err(err("unexpected histogram sample"));
            }
        }
    }
    flush_hist(&mut hist, &mut hist_done, &mut snap)?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("netsim_delivered".into(), 42), ("z_total".into(), 0)],
            gauges: vec![("flowtable_occupancy".into(), 17.5)],
            histograms: vec![HistogramSnapshot {
                name: "quack_batch_fill".into(),
                bounds: vec![1, 4, 16],
                buckets: vec![2, 0, 5, 1],
                count: 8,
                sum: 77,
            }],
        }
    }

    #[test]
    fn renders_prometheus_text_format() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE netsim_delivered counter\nnetsim_delivered 42\n"));
        assert!(text.contains("# TYPE flowtable_occupancy gauge\nflowtable_occupancy 17.5\n"));
        // Buckets are cumulative and close with +Inf.
        assert!(text.contains("quack_batch_fill_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("quack_batch_fill_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("quack_batch_fill_bucket{le=\"16\"} 7\n"));
        assert!(text.contains("quack_batch_fill_bucket{le=\"+Inf\"} 8\n"));
        assert!(text.contains("quack_batch_fill_sum 77\n"));
        assert!(text.contains("quack_batch_fill_count 8\n"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_metric_name("netsim.drop.loss"), "netsim_drop_loss");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        let snap = MetricsSnapshot {
            counters: vec![("netsim.delivered".into(), 1)],
            ..MetricsSnapshot::default()
        };
        assert!(render_prometheus(&snap).contains("netsim_delivered 1"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let s = sample();
        let text = render_prometheus(&s);
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(render_prometheus(&parsed), text);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(render_prometheus(&MetricsSnapshot::default()), "");
        assert_eq!(parse_prometheus("").unwrap(), MetricsSnapshot::default());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "netsim_delivered 42",                         // sample before # TYPE
            "# TYPE x wat\nx 1",                           // unknown family type
            "# TYPE bad.name counter\nbad.name 1",         // unsanitized name
            "# TYPE c counter\nd 1",                       // family mismatch
            "# TYPE c counter\nc x",                       // bad value
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1", // missing _sum/_count
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3", // non-cumulative
        ] {
            assert!(parse_prometheus(bad).is_err(), "{bad:?}");
        }
    }
}
