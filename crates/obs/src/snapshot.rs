//! Plain-data snapshots of a registry, with a stable text encoding.

use std::fmt::Write as _;

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper-inclusive bucket bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Bucket counts; always `bounds.len() + 1` entries (last is overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket containing the target rank.
    ///
    /// Bucket `i` spans `(bounds[i-1], bounds[i]]` (the first spans
    /// `[0, bounds[0]]`); ranks are spread uniformly across the span. Ranks
    /// landing in the overflow bucket clamp to the last bound — the
    /// histogram holds no upper edge to interpolate toward, so the estimate
    /// is a stated lower bound there. Returns `None` for an empty histogram
    /// or a `q` outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            let cum = below + in_bucket;
            if (cum as f64) >= rank && in_bucket > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: clamp to the histogram's last bound
                    // (or 0 for a bound-less histogram).
                    return Some(self.bounds.last().copied().unwrap_or(0) as f64);
                };
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let within = (rank - below as f64) / in_bucket as f64;
                return Some(lower as f64 + within * (upper - lower) as f64);
            }
            below = cum;
        }
        Some(self.bounds.last().copied().unwrap_or(0) as f64)
    }

    /// Median estimate; see [`HistogramSnapshot::percentile`].
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p90(&self) -> Option<f64> {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate; see [`HistogramSnapshot::percentile`].
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }
}

/// A point-in-time copy of a [`crate::MetricsRegistry`].
///
/// All three collections are sorted by name (registry maps are `BTreeMap`s),
/// so snapshots of deterministic runs compare equal with `==` and encode to
/// identical text. The encoding is line-based:
///
/// ```text
/// counter <name> <u64>
/// gauge <name> <f64>
/// hist <name> count=<u64> sum=<u64> bounds=<b0,b1,…> buckets=<c0,c1,…>
/// ```
///
/// Names must contain no whitespace (registry names are code-chosen
/// identifiers like `quack.sent`). Floats use Rust's shortest-roundtrip
/// formatting, so `parse(encode(s)) == s` for finite gauge values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent — counters default to zero).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Sum of every counter whose name starts with `prefix` — convenient for
    /// families like `netsim.drop.*`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Renders the stable text encoding (one metric per line, trailing
    /// newline when non-empty).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value:?}");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "hist {} count={} sum={} bounds={} buckets={}",
                h.name,
                h.count,
                h.sum,
                join(&h.bounds),
                join(&h.buckets),
            );
        }
        out
    }

    /// Parses text produced by [`MetricsSnapshot::encode`]. Blank lines and
    /// `#`-prefixed comments are ignored.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("counter") => {
                    let name = parts.next().ok_or_else(|| err("missing name"))?;
                    let value = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| err("bad counter value"))?;
                    snap.counters.push((name.to_string(), value));
                    if parts.next().is_some() {
                        return Err(err("trailing garbage"));
                    }
                }
                Some("gauge") => {
                    let name = parts.next().ok_or_else(|| err("missing name"))?;
                    let value = parts
                        .next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .ok_or_else(|| err("bad gauge value"))?;
                    snap.gauges.push((name.to_string(), value));
                    if parts.next().is_some() {
                        return Err(err("trailing garbage"));
                    }
                }
                Some("hist") => {
                    let name = parts.next().ok_or_else(|| err("missing name"))?;
                    let mut h = HistogramSnapshot {
                        name: name.to_string(),
                        ..HistogramSnapshot::default()
                    };
                    for field in parts {
                        let (key, value) =
                            field.split_once('=').ok_or_else(|| err("bad hist field"))?;
                        match key {
                            "count" => {
                                h.count = value.parse().map_err(|_| err("bad hist count"))?;
                            }
                            "sum" => {
                                h.sum = value.parse().map_err(|_| err("bad hist sum"))?;
                            }
                            "bounds" => {
                                h.bounds = split_u64s(value).ok_or_else(|| err("bad bounds"))?
                            }
                            "buckets" => {
                                h.buckets = split_u64s(value).ok_or_else(|| err("bad buckets"))?
                            }
                            _ => return Err(err("unknown hist field")),
                        }
                    }
                    if h.buckets.len() != h.bounds.len() + 1 {
                        return Err(err("bucket count must be bounds + 1"));
                    }
                    snap.histograms.push(h);
                }
                Some(_) => return Err(err("unknown record kind")),
                None => unreachable!("blank lines are skipped"),
            }
        }
        Ok(snap)
    }
}

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn split_u64s(text: &str) -> Option<Vec<u64>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(|p| p.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.b".into(), 3), ("z".into(), u64::MAX)],
            gauges: vec![("g".into(), -0.125), ("h".into(), 1e300)],
            histograms: vec![HistogramSnapshot {
                name: "fill".into(),
                bounds: vec![1, 4, 16],
                buckets: vec![2, 0, 5, 1],
                count: 8,
                sum: 77,
            }],
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let s = sample();
        let text = s.encode();
        assert_eq!(MetricsSnapshot::parse(&text).unwrap(), s);
        // Stable: re-encode is byte-identical.
        assert_eq!(MetricsSnapshot::parse(&text).unwrap().encode(), text);
    }

    #[test]
    fn empty_roundtrip_and_lookups() {
        let empty = MetricsSnapshot::default();
        assert!(empty.is_empty());
        assert_eq!(empty.encode(), "");
        assert_eq!(MetricsSnapshot::parse("").unwrap(), empty);
        assert_eq!(empty.counter("x"), 0);
        assert_eq!(empty.gauge("x"), None);
        assert!(empty.histogram("x").is_none());
    }

    #[test]
    fn prefix_sum() {
        let s = MetricsSnapshot {
            counters: vec![
                ("drop.loss".into(), 2),
                ("drop.queue".into(), 3),
                ("sent".into(), 9),
            ],
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.counter_sum("drop."), 5);
        assert_eq!(s.counter_sum(""), 14);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\ncounter a 1\n";
        assert_eq!(MetricsSnapshot::parse(text).unwrap().counter("a"), 1);
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "counter a",
            "counter a x",
            "gauge g",
            "hist h count=1 sum=2 bounds=1 buckets=1", // buckets != bounds+1
            "hist h count=x",
            "hist h what=1",
            "wat a 1",
            "counter a 1 extra",
        ] {
            assert!(MetricsSnapshot::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 10 observations uniform over [0, 100] in bounds {10, 50, 100}:
        // 1 in [0,10], 4 in (10,50], 5 in (50,100].
        let h = HistogramSnapshot {
            name: "lat".into(),
            bounds: vec![10, 50, 100],
            buckets: vec![1, 4, 5, 0],
            count: 10,
            sum: 500,
        };
        // rank 5 → bucket (10,50] holds ranks 2..=5 → upper edge exactly.
        assert_eq!(h.p50(), Some(50.0));
        // rank 9 → bucket (50,100], 4th of 5 ranks → 50 + 0.8*50 = 90.
        assert_eq!(h.p90(), Some(90.0));
        // rank 9.9 → 50 + (9.9-5)/5 * 50 = 99.
        assert!((h.p99().unwrap() - 99.0).abs() < 1e-9);
        assert_eq!(h.percentile(0.0), Some(0.0), "lower edge of first bucket");
        assert_eq!(h.percentile(1.0), Some(100.0));
        assert_eq!(h.percentile(1.5), None);
    }

    #[test]
    fn percentiles_overflow_clamps_to_last_bound() {
        let h = HistogramSnapshot {
            name: "lat".into(),
            bounds: vec![10],
            buckets: vec![1, 9],
            count: 10,
            sum: 0,
        };
        assert_eq!(h.p99(), Some(10.0));
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), None);
    }

    #[test]
    fn empty_bounds_histogram_roundtrips() {
        let s = MetricsSnapshot {
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                bounds: vec![],
                buckets: vec![4],
                count: 4,
                sum: 10,
            }],
            ..MetricsSnapshot::default()
        };
        assert_eq!(MetricsSnapshot::parse(&s.encode()).unwrap(), s);
    }
}
