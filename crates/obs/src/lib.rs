//! Deterministic observability: metrics + event traces for the Sidecar repro.
//!
//! The three sidecar protocols (paper §2.1–§2.3) are judged by *in-network
//! mechanism* — quACK cadence, decode outcomes, proxy retransmissions,
//! degradation events — which end-to-end throughput numbers can hide. This
//! crate provides the measurement substrate that makes mechanism visible and
//! testable:
//!
//! * [`MetricsRegistry`] — a lock-cheap registry of monotonic counters,
//!   gauges, and fixed-bucket histograms, keyed by `&'static str`. Hot loops
//!   hold a [`Counter`] handle (one relaxed atomic add per event, no map
//!   lookup); everything is snapshot-able into a plain-data
//!   [`MetricsSnapshot`] with a stable, line-based text encoding.
//! * [`EventTrace`] — a bounded ring buffer of typed [`Event`]s stamped with
//!   simulated-time nanoseconds. The rendering is byte-stable across runs of
//!   the same `(topology, seed)`, which makes traces golden-testable.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads a wall clock, thread id, or any other
//! environmental entropy. Timestamps are caller-supplied `u64` nanoseconds
//! (the simulator passes `SimTime::as_nanos()`), map iteration is `BTreeMap`
//! order, and floats encode via shortest-roundtrip formatting. Two runs of a
//! deterministic simulation therefore produce identical snapshots and
//! identical trace renderings.
//!
//! The crate is intentionally zero-dependency (std only) and sits *below*
//! `sidecar-netsim` in the dependency graph: the simulator depends on obs,
//! never the reverse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod expo;
pub mod lifecycle;
mod metrics;
mod scoreboard;
mod snapshot;
mod timeseries;
mod trace;

pub use event::{
    AuthRejectKind, ControlKind, DropCause, Event, QuackErrorKind, SessionState, TraceClass,
};
pub use expo::{parse_prometheus, render_prometheus, sanitize_metric_name};
pub use lifecycle::{Lifecycle, PacketTimeline, TraceId};
pub use metrics::{Counter, MetricsRegistry};
pub use scoreboard::{FlowHealthRow, FlowScoreboard, HealthDim, ScoreboardSnapshot};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use timeseries::{
    counter_delta, diff_point, PercentileTrack, SamplePoint, Sampler, TimeSeries, WRAP_GUARD,
};
pub use trace::EventTrace;

use std::sync::{Mutex, OnceLock};

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry.
///
/// Library code with no access to a per-world registry (e.g. the decoder in
/// `sidecar-quack`) records here; scenario runners also fold their per-world
/// snapshots in so bench binaries can dump one cumulative snapshot via
/// `--metrics-out`. Because it is shared across threads (Rust runs `#[test]`
/// functions concurrently), tests asserting on it must use monotone `>=`
/// deltas, or prefer a per-world registry for exact equality.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Ring capacity of the process-global trace: generous enough to hold the
/// merged lifecycle trace of a full bench scenario sweep without evicting.
pub const GLOBAL_TRACE_CAPACITY: usize = 1 << 18;

static GLOBAL_TRACE: OnceLock<Mutex<EventTrace>> = OnceLock::new();

fn global_trace() -> &'static Mutex<EventTrace> {
    GLOBAL_TRACE.get_or_init(|| Mutex::new(EventTrace::with_capacity(GLOBAL_TRACE_CAPACITY)))
}

/// Folds a per-world trace into the process-global trace, the twin of
/// [`global`] for events: scenario runners call this after a run so bench
/// binaries can dump one merged lifecycle trace via `--trace-out`. Eviction
/// debt carries over, so a truncated world ring keeps the merged trace
/// honest about incompleteness.
pub fn global_trace_absorb(trace: &EventTrace) {
    global_trace()
        .lock()
        .expect("global trace poisoned")
        .absorb(trace);
}

/// A copy of the process-global trace (see [`global_trace_absorb`]). Like
/// [`global`], the sink is shared across concurrently-running tests, so
/// assertions on it must be monotone.
pub fn global_trace_snapshot() -> EventTrace {
    global_trace()
        .lock()
        .expect("global trace poisoned")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_shared_and_monotone() {
        let before = global().snapshot().counter("obs.test.global");
        global().inc("obs.test.global");
        global().add("obs.test.global", 2);
        let after = global().snapshot().counter("obs.test.global");
        assert!(after >= before + 3);
    }
}
