//! Harness utilities for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the rows/series of each table and
//! figure in the Sidecar (HotNets '22) evaluation; the Criterion benches in
//! `benches/` provide statistically rigorous versions of the same
//! measurements. This library holds the shared pieces: a trial runner
//! matching the paper's methodology ("average of 100 trials with warmup"),
//! workload generation, and table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::time::{Duration, Instant};

pub use report::{BenchReport, Metric};
pub use sidecar_quack::id::IdentifierGenerator;

/// Measurement defaults from the paper (§4.1: "Average of 100 trials with
/// warmup").
pub const TRIALS: usize = 100;
/// Warmup iterations discarded before measuring.
pub const WARMUP: usize = 10;

/// Runs `f` with warmup and returns the mean wall-clock duration over
/// [`TRIALS`] measured runs.
///
/// `f` receives the trial index (warmup trials get indices too, so inputs
/// can vary per trial if desired) and must return something observable to
/// keep the optimizer honest — the return value is black-boxed.
pub fn measure_mean<T>(mut f: impl FnMut(usize) -> T) -> Duration {
    measure_mean_with(TRIALS, WARMUP, &mut f)
}

/// [`measure_mean`] with explicit trial counts.
pub fn measure_mean_with<T>(
    trials: usize,
    warmup: usize,
    f: &mut impl FnMut(usize) -> T,
) -> Duration {
    for i in 0..warmup {
        std::hint::black_box(f(i));
    }
    let start = Instant::now();
    for i in 0..trials {
        std::hint::black_box(f(warmup + i));
    }
    start.elapsed() / trials as u32
}

/// Runs [`measure_mean_with`] `reps` times and returns the fastest mean.
///
/// Preemption and frequency scaling only ever make a repetition *slower*,
/// so the minimum over independent repetitions is the best available
/// estimate of the uncontended cost. The calibration probe uses this so
/// the perf gate's rescaling doesn't inherit scheduler noise; sweeps with
/// many cells (`exp_hotpath`) go further and interleave the repetitions
/// across cells.
pub fn measure_best_of<T>(
    reps: usize,
    trials: usize,
    warmup: usize,
    f: &mut impl FnMut(usize) -> T,
) -> Duration {
    (0..reps)
        .map(|_| measure_mean_with(trials, warmup, f))
        .min()
        .expect("reps >= 1")
}

/// Mean duration of `f` divided by `per`, in nanoseconds — for per-packet
/// amortized costs.
pub fn per_item_nanos(duration: Duration, per: usize) -> f64 {
    duration.as_nanos() as f64 / per as f64
}

/// Items per second given the mean duration of processing `per` items.
pub fn ops_per_sec(duration: Duration, per: usize) -> f64 {
    per as f64 / duration.as_secs_f64().max(1e-12)
}

/// Measures a fixed scalar integer workload (a serial wrapping multiply-add
/// chain) in ops/s.
///
/// This number tracks single-core integer throughput of the machine running
/// the bench, independent of any quACK code. The `perf_gate` bin divides
/// the current calibration by the baseline's to rescale absolute
/// throughputs before comparing, so a committed baseline from one machine
/// can gate runs on another without tripping on raw CPU-speed differences.
pub fn calibration_ops_per_sec() -> f64 {
    const CHAIN: usize = 1 << 16;
    let d = measure_best_of(5, 30, 5, &mut |i| {
        let mut acc = i as u64 | 1;
        for j in 0..CHAIN as u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(j);
        }
        acc
    });
    ops_per_sec(d, CHAIN)
}

/// Handles the `--metrics-out` flag every bench binary accepts: when the
/// flag is present in the process arguments, dumps the process-global
/// observability registry (accumulated across every simulated world and
/// decode call of the run) as a `BENCH_<name>_metrics.json` report next to
/// the bench's own `BENCH_<name>.json` (both honor `$BENCH_OUT_DIR`).
///
/// Counters land with unit `count`, gauges with `value`, and histograms as
/// one metric per bucket with an `le` param (`inf` for the overflow bucket)
/// plus `<name>.count` / `<name>.sum` totals — all informational; the perf
/// gate never reads them. Call it after the bench report is written; it is
/// a no-op without the flag, and with the obs feature compiled out the
/// global registry is simply empty.
pub fn write_metrics_out(name: &str) {
    if !std::env::args().any(|a| a == "--metrics-out") {
        return;
    }
    let snap = sidecar_obs::global().snapshot();
    let mut report = BenchReport::new(format!("{name}_metrics"));
    for (counter, value) in &snap.counters {
        report.push(counter, &[], *value as f64, "count");
    }
    for (gauge, value) in &snap.gauges {
        if value.is_finite() {
            report.push(gauge, &[], *value, "value");
        }
    }
    for h in &snap.histograms {
        for (i, &bucket) in h.buckets.iter().enumerate() {
            let le = h.bounds.get(i).map_or("inf".into(), u64::to_string);
            report.push(&h.name, &[("le", &le)], bucket as f64, "count");
        }
        report.push(&format!("{}.count", h.name), &[], h.count as f64, "count");
        report.push(&format!("{}.sum", h.name), &[], h.sum as f64, "count");
    }
    report
        .write_default()
        .expect("write metrics-out bench report");
}

/// Handles the `--trace-out [path]` flag every bench binary accepts: when
/// the flag is present, renders the process-global flight-recorder trace
/// (lifecycle events absorbed from every simulated world of the run) to
/// `path`, or to `BENCH_<name>_trace.txt` next to the bench's JSON when the
/// flag carries no path (honoring `$BENCH_OUT_DIR`).
///
/// The rendering is the canonical `EventTrace` text format: one
/// `t=<ns> <event>` line per record, preceded by a `# truncated dropped=N`
/// header when the ring evicted records — consumers must treat a truncated
/// trace as incomplete. No-op without the flag; with the obs feature
/// compiled out the global trace is simply empty.
pub fn write_trace_out(name: &str) {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--trace-out") else {
        return;
    };
    let path = match args.get(pos + 1) {
        Some(p) if !p.starts_with("--") => std::path::PathBuf::from(p),
        _ => {
            let dir = std::env::var_os("BENCH_OUT_DIR").unwrap_or_else(|| ".".into());
            std::path::PathBuf::from(dir).join(format!("BENCH_{name}_trace.txt"))
        }
    };
    let trace = sidecar_obs::global_trace_snapshot();
    std::fs::write(&path, trace.render()).expect("write trace-out file");
    println!("[bench-trace] wrote {}", path.display());
}

/// Handles the `--timeseries-out [path]` flag for benches that run a
/// sampled scenario: when the flag is present, renders `series` in the
/// canonical [`sidecar_obs::TimeSeries`] text format to `path`, or to
/// `BENCH_<name>_timeseries.txt` next to the bench's JSON when the flag
/// carries no path (honoring `$BENCH_OUT_DIR`).
///
/// The rendering is byte-stable for deterministic simulator runs, so CI
/// can archive the artifact and `validate_reports` can schema-check it
/// (parse roundtrip, finite values, monotone timestamps). No-op without
/// the flag.
pub fn write_timeseries_out(name: &str, series: &sidecar_obs::TimeSeries) {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--timeseries-out") else {
        return;
    };
    let path = match args.get(pos + 1) {
        Some(p) if !p.starts_with("--") => std::path::PathBuf::from(p),
        _ => {
            let dir = std::env::var_os("BENCH_OUT_DIR").unwrap_or_else(|| ".".into());
            std::path::PathBuf::from(dir).join(format!("BENCH_{name}_timeseries.txt"))
        }
    };
    std::fs::write(&path, series.render()).expect("write timeseries-out file");
    println!("[bench-timeseries] wrote {}", path.display());
}

/// Formats a duration the way the paper's tables do (ns/us/ms autoscale).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Formats a float duration given in days (Strawman 2's decode estimate).
pub fn fmt_days(days: f64) -> String {
    if days >= 1.0 {
        format!("≈{days:.1e} days")
    } else {
        let secs = days * 86_400.0;
        fmt_duration(Duration::from_secs_f64(secs.max(1e-9)))
    }
}

/// A simple fixed-width table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Standard workload: `n` uniform `bits`-bit identifiers with `missing`
/// of them (chosen deterministically spread out) absent from the received
/// set. Returns `(sent, received)`.
pub fn workload(n: usize, missing: usize, bits: u32, seed: u64) -> (Vec<u64>, Vec<u64>) {
    assert!(missing <= n);
    let mut generator = IdentifierGenerator::new(bits, seed);
    let sent = generator.take_ids(n);
    let received: Vec<u64> = sent
        .iter()
        .enumerate()
        .filter(|(i, _)| missing == 0 || i % n.div_ceil(missing) != 0)
        .map(|(_, &id)| id)
        .collect();
    (sent, received)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_drops_requested_count() {
        let (sent, received) = workload(1000, 20, 32, 42);
        assert_eq!(sent.len(), 1000);
        assert_eq!(sent.len() - received.len(), 20);
        let (s2, r2) = workload(100, 0, 32, 1);
        assert_eq!(s2.len(), r2.len());
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(100, 5, 16, 7), workload(100, 5, 16, 7));
        assert_ne!(workload(100, 5, 16, 7), workload(100, 5, 16, 8));
    }

    #[test]
    fn measure_returns_positive() {
        let d = measure_mean_with(5, 1, &mut |i| {
            let mut acc = 0u64;
            for j in 0..1000u64 {
                acc = acc.wrapping_add(j * i as u64);
            }
            acc
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("longer"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(387)), "387 ns");
        assert_eq!(fmt_duration(Duration::from_micros(106)), "106.0 us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert!(fmt_days(7e6).contains("days"));
        // Half a second expressed in days falls back to duration units.
        assert_eq!(fmt_days(0.5 / 86_400.0), "500.00 ms");
    }
}
