//! Machine-readable benchmark reports: the `sidecar-bench/v1` JSON schema.
//!
//! Every bench binary prints its human-readable table *and* writes a
//! `BENCH_<name>.json` next to it, so the perf trajectory is append-only
//! and diffable and CI can gate on regressions (see the `perf_gate` bin).
//! The schema is deliberately flat:
//!
//! ```json
//! {
//!   "schema": "sidecar-bench/v1",
//!   "name": "quack",
//!   "metrics": [
//!     {
//!       "name": "inserts_per_sec",
//!       "params": { "field": "Fp64", "t": "20", "batch": "32" },
//!       "value": 123456789.0,
//!       "unit": "ops/s"
//!     }
//!   ]
//! }
//! ```
//!
//! * `name` — the bench binary (report file is `BENCH_<name>.json`).
//! * `metrics[].name` + `metrics[].params` — the identity a metric is
//!   matched on across runs (params are string-valued for diff stability).
//! * `metrics[].unit` — `"ops/s"` (throughput, higher is better; gated
//!   with calibration rescaling), `"x"` (machine-independent ratio, gated
//!   directly), `"ns"` (latency, informational), or anything else
//!   (informational).
//!
//! The offline dependency set has no serde, so this module carries its own
//! tiny JSON emitter and recursive-descent parser — both total over the
//! subset of JSON the schema uses (and the parser accepts any valid JSON).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier written into (and required from) every report.
pub const SCHEMA: &str = "sidecar-bench/v1";

/// One measured value plus the parameters identifying it.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// What was measured, e.g. `inserts_per_sec`.
    pub name: String,
    /// Identifying parameters (field width, threshold, batch size, …),
    /// sorted by key on write.
    pub params: Vec<(String, String)>,
    /// The measured value. Must be finite.
    pub value: f64,
    /// Unit: `ops/s`, `x`, `ns`, ….
    pub unit: String,
}

impl Metric {
    /// Stable identity used to match this metric against another run:
    /// name plus sorted params.
    pub fn key(&self) -> String {
        let mut params = self.params.clone();
        params.sort();
        let mut key = self.name.clone();
        for (k, v) in params {
            let _ = write!(key, "|{k}={v}");
        }
        key
    }
}

/// A full report: what one bench binary measured in one run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// The bench name; the report file is `BENCH_<name>.json`.
    pub name: String,
    /// All metrics, in emission order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// Creates an empty report for the bench `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Appends one metric. Params are stored key-sorted so an in-memory
    /// report compares equal to its serialized-and-parsed self (the JSON
    /// object form cannot preserve insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — a NaN throughput means the bench
    /// itself is broken, and it must not poison the committed baseline.
    pub fn push(&mut self, name: &str, params: &[(&str, &str)], value: f64, unit: &str) {
        assert!(value.is_finite(), "non-finite metric {name}: {value}");
        let mut params: Vec<(String, String)> = params
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        params.sort();
        self.metrics.push(Metric {
            name: name.to_string(),
            params,
            value,
            unit: unit.to_string(),
        });
    }

    /// Looks a metric up by its [`Metric::key`].
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.key() == key)
    }

    /// Serializes to the `sidecar-bench/v1` JSON text (two-space indent,
    /// sorted params, trailing newline — stable under re-runs for clean
    /// diffs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(out, "  \"name\": {},", quote(&self.name));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", quote(&m.name));
            let mut params = m.params.clone();
            params.sort();
            if params.is_empty() {
                out.push_str("      \"params\": {},\n");
            } else {
                out.push_str("      \"params\": { ");
                for (j, (k, v)) in params.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", quote(k), quote(v));
                }
                out.push_str(" },\n");
            }
            let _ = writeln!(out, "      \"value\": {},", fmt_f64(m.value));
            let _ = writeln!(out, "      \"unit\": {}", quote(&m.unit));
            out.push_str(if i + 1 == self.metrics.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report back from JSON text, validating the schema tag.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = Json::parse(text)?;
        let obj = value.as_obj().ok_or("top level is not an object")?;
        match find(obj, "schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema {s:?}, want {SCHEMA:?}")),
            None => return Err("missing \"schema\" field".into()),
        }
        let name = find(obj, "name")
            .and_then(Json::as_str)
            .ok_or("missing \"name\" field")?
            .to_string();
        let metrics_json = find(obj, "metrics")
            .and_then(Json::as_arr)
            .ok_or("missing \"metrics\" array")?;
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for m in metrics_json {
            let mo = m.as_obj().ok_or("metric is not an object")?;
            let mut params: Vec<(String, String)> = find(mo, "params")
                .and_then(Json::as_obj)
                .ok_or("metric missing \"params\" object")?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("param {k:?} is not a string"))
                })
                .collect::<Result<_, _>>()?;
            params.sort();
            metrics.push(Metric {
                name: find(mo, "name")
                    .and_then(Json::as_str)
                    .ok_or("metric missing \"name\"")?
                    .to_string(),
                params,
                value: find(mo, "value")
                    .and_then(Json::as_f64)
                    .ok_or("metric missing numeric \"value\"")?,
                unit: find(mo, "unit")
                    .and_then(Json::as_str)
                    .ok_or("metric missing \"unit\"")?
                    .to_string(),
            });
        }
        Ok(BenchReport { name, metrics })
    }

    /// Writes `BENCH_<name>.json` into `dir`, returning the path.
    pub fn write(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<name>.json` into the current directory (or
    /// `$BENCH_OUT_DIR` if set) and prints where it went.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR").unwrap_or_else(|| ".".into());
        let path = self.write(&dir)?;
        println!("[bench-json] wrote {}", path.display());
        Ok(path)
    }

    /// Reads and parses a report file.
    pub fn read(path: impl AsRef<Path>) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Self::parse(&text)
    }
}

/// Formats an f64 so it parses back to the identical value, always with a
/// decimal point or exponent (valid JSON number, recognisably float).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

/// JSON-escapes and quotes a string.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A parsed JSON value (internal to report parsing; key order preserved).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("quack");
        r.push(
            "inserts_per_sec",
            &[("field", "Fp64"), ("t", "20"), ("batch", "32")],
            1.234e8,
            "ops/s",
        );
        r.push("speedup", &[("field", "Fp64"), ("t", "20")], 3.5, "x");
        r.push("empty_params", &[], 42.0, "ns");
        r
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let text = r.to_json();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, r);
        // Serialization is stable (byte-identical re-render).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn keys_are_param_order_independent() {
        let mut a = BenchReport::new("x");
        a.push("m", &[("b", "2"), ("a", "1")], 1.0, "x");
        let mut b = BenchReport::new("x");
        b.push("m", &[("a", "1"), ("b", "2")], 1.0, "x");
        assert_eq!(a.metrics[0].key(), b.metrics[0].key());
        assert_eq!(a.metrics[0].key(), "m|a=1|b=2");
        assert!(a.get("m|a=1|b=2").is_some());
        assert!(a.get("m|a=1").is_none());
    }

    #[test]
    fn schema_validation() {
        assert!(BenchReport::parse("{}").is_err());
        assert!(
            BenchReport::parse("{\"schema\": \"other/v9\", \"name\": \"x\", \"metrics\": []}")
                .unwrap_err()
                .contains("unsupported schema")
        );
        let minimal = format!(
            "{{\"schema\": {quoted}, \"name\": \"x\", \"metrics\": []}}",
            quoted = quote(SCHEMA)
        );
        assert_eq!(BenchReport::parse(&minimal).unwrap().metrics.len(), 0);
    }

    #[test]
    fn parser_handles_general_json() {
        // The parser must accept hand-edited baselines: whitespace, escapes,
        // exponents, nested structures.
        let text = r#"
        { "schema": "sidecar-bench/v1", "name": "tAb",
          "metrics": [ { "name": "a", "params": {}, "value": -1.5e-3, "unit": "x" } ] }
        "#;
        let r = BenchReport::parse(text).unwrap();
        assert_eq!(r.name, "tAb");
        assert_eq!(r.metrics[0].value, -1.5e-3);
        // Rejections.
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_formatting_roundtrips() {
        for v in [0.0, 1.0, -2.5, 1.234e8, 1e-9, f64::MAX, 123456789.123] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert_eq!(fmt_f64(42.0), "42.0");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_metric_rejected() {
        BenchReport::new("x").push("m", &[], f64::NAN, "x");
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("sidecar-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = sample();
        let path = r.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_quack.json"));
        assert_eq!(BenchReport::read(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
