//! **§2.2 experiment**: ACK reduction (paper Fig. 3 as a working system).
//!
//! Three variants over the same server↔proxy↔client path:
//!
//! * **normal** — client ACKs every 2 packets (QUIC default), no sidecar;
//! * **naive** — client ACKs every 32 packets, no sidecar (fewer ACKs but
//!   the window crawls);
//! * **sidecar** — client ACKs every 32 packets *and* the proxy quACKs
//!   every 2 data packets, letting the server move its window at
//!   proxy-RTT pace.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_ackred`

use sidecar_bench::{BenchReport, Table};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;

fn main() {
    println!(
        "§2.2 reproduction: ACK reduction\n\
         topology: server ↔ 50 Mbit/s / 25 ms (long) ↔ proxy ↔ 100 Mbit/s / 2 ms ↔ client\n\
         flow: 2000 × 1500 B, NewReno; proxy quACKs every 2 packets, t = 20, b = 32\n"
    );
    let scenario = AckReductionScenario::default();
    let seeds = [101u64, 102, 103];
    let mut rows: Vec<(&str, f64, f64, f64, f64)> = Vec::new(); // name, time, acks, quacks, ack_bytes_estimate
    let collect = |name: &'static str,
                   runs: Vec<sidecar_proto::protocols::ScenarioReport>|
     -> (&'static str, f64, f64, f64, f64) {
        let k = runs.len() as f64;
        let time = runs.iter().map(|r| r.completion_secs()).sum::<f64>() / k;
        let acks = runs.iter().map(|r| r.client_acks as f64).sum::<f64>() / k;
        let quacks = runs.iter().map(|r| r.sidecar_messages as f64).sum::<f64>() / k;
        (name, time, acks, quacks, acks * 60.0)
    };
    rows.push(collect(
        "normal (ack every 2)",
        seeds
            .iter()
            .map(|&s| scenario.run_baseline_normal(s))
            .collect(),
    ));
    rows.push(collect(
        "naive (ack every 32)",
        seeds
            .iter()
            .map(|&s| scenario.run_baseline_reduced(s))
            .collect(),
    ));
    rows.push(collect(
        "sidecar (ack 32 + quACK)",
        seeds.iter().map(|&s| scenario.run_sidecar(s)).collect(),
    ));

    let normal_time = rows[0].1;
    let mut report = BenchReport::new("exp_ackred");
    let mut table = Table::new(&[
        "variant",
        "completion (s)",
        "client ACKs",
        "client ACK bytes",
        "quACK msgs",
        "vs normal",
    ]);
    let variant_keys = ["normal", "naive", "sidecar"];
    for ((name, time, acks, quacks, ack_bytes), key) in rows.iter().zip(variant_keys) {
        table.row(&[
            name.to_string(),
            format!("{time:.3}"),
            format!("{acks:.0}"),
            format!("{ack_bytes:.0}"),
            format!("{quacks:.0}"),
            format!("{:.2}x", time / normal_time),
        ]);
        let params = [("variant", key)];
        report.push("completion_time", &params, *time, "s");
        report.push("client_acks", &params, *acks, "msgs");
        report.push("quack_msgs", &params, *quacks, "msgs");
        report.push("slowdown_vs_normal", &params, time / normal_time, "x");
    }
    table.print();
    report.write_default().expect("write BENCH_exp_ackred.json");
    sidecar_bench::write_metrics_out("exp_ackred");
    sidecar_bench::write_trace_out("exp_ackred");
    println!(
        "\nexpected shape: the sidecar variant sends ~16x fewer client ACKs \
         than normal while completing close to the normal time; the naive \
         variant pays for its thin ACKs with a slower window."
    );
}
