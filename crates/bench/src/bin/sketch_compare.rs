//! **Extension (§5)**: the power-sum quACK vs. an invertible Bloom lookup
//! table on the same set-difference job.
//!
//! Both constructions come from the straggler-identification work the
//! paper cites; this harness quantifies the trade-off the paper's §5
//! question ("what similar protocol-agnostic digests could we design?")
//! invites: the IBLT decodes in `O(d)` and lists *both* directions of the
//! difference, but costs ~an order of magnitude more bandwidth and fails
//! probabilistically; the power sums are byte-tight and deterministic up to
//! the threshold.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin sketch_compare`

use sidecar_bench::{fmt_duration, measure_mean, workload, BenchReport, Table};
use sidecar_quack::iblt::Iblt;
use sidecar_quack::{Quack32, WireFormat};

const N: usize = 1000;

fn main() {
    println!("power-sum quACK vs IBLT, n = {N} packets, d missing, 100-trial means\n");
    let mut table = Table::new(&[
        "d",
        "quACK bytes",
        "IBLT bytes",
        "quACK construct",
        "IBLT construct",
        "quACK decode",
        "IBLT decode",
    ]);
    let mut report = BenchReport::new("sketch_compare");
    for d in [5usize, 10, 20, 40] {
        let (sent, received) = workload(N, d, 32, 0x1B17 + d as u64);

        // Power sums at threshold t = d.
        let fmt = WireFormat::paper_default(d);
        let ps_construct = measure_mean(|_| {
            let mut q = Quack32::new(d);
            for &id in &received {
                q.insert(id);
            }
            q
        });
        let mut sender = Quack32::new(d);
        for &id in &sent {
            sender.insert(id);
        }
        let mut receiver = Quack32::new(d);
        for &id in &received {
            receiver.insert(id);
        }
        let diff = sender.difference(&receiver);
        let ps_decode = measure_mean(|_| diff.decode_with_log(&sent).unwrap());

        // IBLT at capacity d.
        let iblt_construct = measure_mean(|_| {
            let mut t = Iblt::with_capacity(d, 1);
            for &id in &received {
                t.insert(id);
            }
            t
        });
        let mut is = Iblt::with_capacity(d, 1);
        for &id in &sent {
            is.insert(id);
        }
        let mut ir = Iblt::with_capacity(d, 1);
        for &id in &received {
            ir.insert(id);
        }
        let idiff = is.difference(&ir);
        // Sanity: it decodes to the right answer.
        let decoded = idiff.clone().decode().expect("IBLT peeling failed");
        assert_eq!(decoded.missing.len(), d);
        let iblt_decode = measure_mean(|_| idiff.clone().decode().unwrap());

        let ds = d.to_string();
        for (sketch, bytes, construct, decode) in [
            ("power_sums", fmt.encoded_bytes(), ps_construct, ps_decode),
            ("iblt", is.wire_bytes(), iblt_construct, iblt_decode),
        ] {
            let params = [("d", ds.as_str()), ("sketch", sketch)];
            report.push("wire_size", &params, bytes as f64, "bytes");
            report.push(
                "construction_time",
                &params,
                construct.as_nanos() as f64 / 1e3,
                "us",
            );
            report.push("decode_time", &params, decode.as_nanos() as f64 / 1e3, "us");
        }
        table.row(&[
            d.to_string(),
            fmt.encoded_bytes().to_string(),
            is.wire_bytes().to_string(),
            fmt_duration(ps_construct),
            fmt_duration(iblt_construct),
            fmt_duration(ps_decode),
            fmt_duration(iblt_decode),
        ]);
    }
    table.print();
    report
        .write_default()
        .expect("write BENCH_sketch_compare.json");
    sidecar_bench::write_metrics_out("sketch_compare");
    sidecar_bench::write_trace_out("sketch_compare");
    println!(
        "\nshape: the quACK is ~10x smaller on the wire; the IBLT decodes \
         ~100x faster and also reports receiver-side extras — but can stall \
         probabilistically and its cells dwarf the 82-byte quACK the \
         sidecar protocols were sized around."
    );
}
