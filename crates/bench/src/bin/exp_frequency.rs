//! **Ablation (§4.3)**: how the quACK communication frequency affects the
//! protocols — the trade-off the paper's frequency-selection discussion is
//! about.
//!
//! Two sweeps:
//!
//! 1. **Congestion-control division** — quACK interval vs. completion time
//!    (too slow ⇒ the window stalls between updates; §4.3 recommends once
//!    per RTT).
//! 2. **In-network retransmission** — fixed emission intervals vs. the
//!    adaptive controller that targets `t/2` missing per quACK; the
//!    adaptive variant should sit near the best fixed point without manual
//!    tuning.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_frequency`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::time::SimDuration;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::{QuackFrequency, SidecarConfig};

fn main() {
    println!("§4.3 ablation: quACK frequency vs protocol performance\n");
    let mut report = BenchReport::new("exp_frequency");

    // --- CCD: interval sweep ---------------------------------------------
    println!("— Congestion-control division (segment RTT ≈ 60 ms):");
    let mut table = Table::new(&["quACK interval", "completion (s)", "quACK msgs", "quACK kB"]);
    for interval_ms in [15u64, 30, 60, 120, 240, 480] {
        let scenario = CcdScenario {
            total_packets: 1_500,
            quack_interval: SimDuration::from_millis(interval_ms),
            ..CcdScenario::default()
        };
        let seeds = [1u64, 2, 3];
        let mut time = 0.0;
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        for &s in &seeds {
            let r = scenario.run_sidecar(s);
            time += r.completion_secs();
            msgs += r.sidecar_messages;
            bytes += r.sidecar_bytes;
        }
        let k = seeds.len() as f64;
        let is = interval_ms.to_string();
        report.push(
            "ccd_completion_time",
            &[("interval_ms", &is)],
            time / k,
            "s",
        );
        report.push(
            "ccd_quack_msgs",
            &[("interval_ms", &is)],
            msgs as f64 / k,
            "msgs",
        );
        report.push(
            "ccd_quack_bytes",
            &[("interval_ms", &is)],
            bytes as f64 / k,
            "bytes",
        );
        table.row(&[
            format!("{interval_ms} ms"),
            format!("{:.3}", time / k),
            format!("{}", msgs / seeds.len() as u64),
            format!("{:.1}", bytes as f64 / k / 1e3),
        ]);
    }
    table.print();
    println!(
        "   faster quACKing costs bandwidth but tightens the control loop; \
         past ~1 interval/RTT the returns flatten (the paper's choice: once \
         per RTT).\n"
    );

    // --- Retx: fixed intervals vs adaptive --------------------------------
    println!("— In-network retransmission (2% subpath loss):");
    let mut table = Table::new(&[
        "emission schedule",
        "completion (s)",
        "in-net retx",
        "quACK msgs",
    ]);
    let schedules: Vec<(String, QuackFrequency)> = vec![
        (
            "fixed 2 ms".into(),
            QuackFrequency::Interval(SimDuration::from_millis(2)),
        ),
        (
            "fixed 5 ms".into(),
            QuackFrequency::Interval(SimDuration::from_millis(5)),
        ),
        (
            "fixed 20 ms".into(),
            QuackFrequency::Interval(SimDuration::from_millis(20)),
        ),
        (
            "fixed 80 ms".into(),
            QuackFrequency::Interval(SimDuration::from_millis(80)),
        ),
        (
            "adaptive (target t/2 missing)".into(),
            QuackFrequency::Adaptive(SimDuration::from_millis(5)),
        ),
    ];
    for (name, frequency) in schedules {
        let base = RetxScenario::default();
        let scenario = RetxScenario {
            total_packets: 1_500,
            sidecar: SidecarConfig {
                frequency,
                ..base.sidecar
            },
            ..base
        };
        let seeds = [11u64, 22, 33];
        let mut time = 0.0;
        let mut retx = 0u64;
        let mut msgs = 0u64;
        for &s in &seeds {
            let r = scenario.run_sidecar(s);
            time += r.completion_secs();
            retx += r.proxy_retransmissions;
            msgs += r.sidecar_messages;
        }
        let k = seeds.len() as f64;
        let schedule = name.replace(' ', "_");
        report.push(
            "retx_completion_time",
            &[("schedule", &schedule)],
            time / k,
            "s",
        );
        report.push(
            "retx_in_net_retx",
            &[("schedule", &schedule)],
            retx as f64 / k,
            "msgs",
        );
        report.push(
            "retx_quack_msgs",
            &[("schedule", &schedule)],
            msgs as f64 / k,
            "msgs",
        );
        table.row(&[
            name,
            format!("{:.3}", time / k),
            (retx / seeds.len() as u64).to_string(),
            (msgs / seeds.len() as u64).to_string(),
        ]);
    }
    table.print();
    report
        .write_default()
        .expect("write BENCH_exp_frequency.json");
    sidecar_bench::write_metrics_out("exp_frequency");
    sidecar_bench::write_trace_out("exp_frequency");
    println!(
        "   the adaptive controller lands near the best fixed interval \
         without knowing the loss rate in advance (§2.3: the frequency \
         'should ideally depend on the loss ratio')."
    );
}
