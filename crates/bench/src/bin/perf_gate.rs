//! **Perf gate**: compares fresh `BENCH_*.json` reports against the
//! committed `bench/baseline.json` and fails on regression.
//!
//! Policy (documented in README.md):
//!
//! * `ops/s` metrics are rescaled by the ratio of the runs'
//!   `calibration` metrics (a fixed scalar integer workload) before
//!   comparing, so a baseline recorded on one machine gates runs on
//!   another; each current report rescales by its own calibration cell.
//!   A metric regresses if it falls more than `TOLERANCE` below the
//!   rescaled baseline.
//! * `x` (ratio) metrics are machine-independent and compared directly
//!   with the same tolerance.
//! * Hard floors: the quACK `insert_speedup` metrics for `Fp64, t = 20,
//!   batch ≥ 32` must be at least [`QUACK_FLOOR`], the engine-scaling
//!   `events_speedup|flows=100000` headline at least [`SIMSCALE_FLOOR`],
//!   and the flow-engine `manyflow_insert_speedup|flows=100000` headline
//!   (slab vs legacy table, min across the three protocol session shapes,
//!   inserts under LRU pressure) at least [`MANYFLOW_FLOOR`], and the
//!   telemetry-cost `obs_overhead_headroom` headline (plain / sampled
//!   wall-clock of the same seeded run) at least [`OBS_FLOOR`], regardless
//!   of the baseline — these are the repo's acceptance headlines and may
//!   never erode, tolerance or not.
//! * Metrics present in only the baseline or only a current report are
//!   reported but never fail the gate (so adding benchmarks does not
//!   require a lockstep baseline update).
//! * Setting `PERF_GATE_SOFT=1` (CI sets it when a PR carries the
//!   `perf-regression-ok` label) downgrades failures to warnings for
//!   intentional perf changes; the PR is then expected to commit a new
//!   baseline.
//!
//! Usage: `perf_gate [baseline.json] [current.json ...]`
//! (defaults: `bench/baseline.json`, `BENCH_quack.json`).
//!
//! Exit status: 0 = pass (or soft mode), 1 = regression, 2 = usage/setup
//! error.

use sidecar_bench::{BenchReport, Table};
use std::process::ExitCode;

/// Allowed relative shortfall versus the (rescaled) baseline.
const TOLERANCE: f64 = 0.15;
/// Absolute floor for the quACK acceptance-headline speedups (`Fp64`,
/// `t=20`, `batch >= 32`).
const QUACK_FLOOR: f64 = 2.0;
/// Absolute floor for the engine-scaling headline: modern wheel engine
/// events/s over the legacy heap engine at the 100k-flow point.
const SIMSCALE_FLOOR: f64 = 5.0;
/// Absolute floor for the flow-engine headline: slab-table inserts/s over
/// the legacy Vec-scan table at the 100k-flow churn point (min across the
/// three protocol session shapes; measured ~2.7–3.1x).
const MANYFLOW_FLOOR: f64 = 1.5;
/// Absolute floor for the observability-overhead headline: plain over
/// sampled wall-clock of the same seeded retx run (`exp_obs_overhead`).
/// 0.95 means the telemetry layer may cost at most ~5% of the datapath.
const OBS_FLOOR: f64 = 0.95;

struct Comparison {
    key: String,
    unit: String,
    baseline: f64,
    current: f64,
    /// Baseline after calibration rescaling (== baseline for ratios).
    reference: f64,
    verdict: Verdict,
}

#[derive(PartialEq, Clone, Copy)]
enum Verdict {
    Ok,
    Regressed,
    BelowFloor,
    BaselineOnly,
    CurrentOnly,
    Informational,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::BelowFloor => "BELOW FLOOR",
            Verdict::BaselineOnly => "baseline only",
            Verdict::CurrentOnly => "new",
            Verdict::Informational => "info",
        }
    }
}

/// The absolute floor this metric key must clear, if it is one of the
/// acceptance headlines.
fn headline_floor(key: &str) -> Option<f64> {
    let quack = key.starts_with("insert_speedup|")
        && key.contains("|field=Fp64|")
        && key.ends_with("|t=20")
        && key
            .split('|')
            .find_map(|p| p.strip_prefix("batch="))
            .and_then(|b| b.parse::<u64>().ok())
            .is_some_and(|b| b >= 32);
    if quack {
        return Some(QUACK_FLOOR);
    }
    if key == "events_speedup|flows=100000" {
        return Some(SIMSCALE_FLOOR);
    }
    if key == "manyflow_insert_speedup|flows=100000" {
        return Some(MANYFLOW_FLOOR);
    }
    if key == "obs_overhead_headroom" {
        return Some(OBS_FLOOR);
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("bench/baseline.json");
    let current_paths: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        vec!["BENCH_quack.json"]
    };
    let soft = std::env::var("PERF_GATE_SOFT").is_ok_and(|v| v == "1");

    let baseline = match BenchReport::read(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: cannot read baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let mut currents: Vec<(&str, BenchReport)> = Vec::new();
    for path in &current_paths {
        match BenchReport::read(path) {
            Ok(r) => currents.push((path, r)),
            Err(e) => {
                eprintln!("perf_gate: cannot read current report {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "perf gate: baseline {baseline_path}, current [{}], tolerance {:.0}%{}",
        current_paths.join(", "),
        TOLERANCE * 100.0,
        if soft { ", SOFT (warn-only)" } else { "" }
    );

    let mut comparisons: Vec<Comparison> = Vec::new();
    for (path, current) in &currents {
        // Calibration rescaling for absolute throughputs: each report
        // rescales by its own calibration cell against the baseline's.
        let scale = match (baseline.get("calibration"), current.get("calibration")) {
            (Some(b), Some(c)) if b.value > 0.0 => c.value / b.value,
            _ => {
                eprintln!(
                    "perf_gate: warning: no calibration metric in both baseline \
                     and {path}; comparing its ops/s unscaled"
                );
                1.0
            }
        };
        println!("  {path}: calibration scale {scale:.3}");
        for metric in &current.metrics {
            let key = metric.key();
            if key == "calibration" {
                continue;
            }
            let Some(base) = baseline.get(&key) else {
                comparisons.push(Comparison {
                    key,
                    unit: metric.unit.clone(),
                    baseline: f64::NAN,
                    current: metric.value,
                    reference: f64::NAN,
                    verdict: Verdict::CurrentOnly,
                });
                continue;
            };
            let (reference, verdict) = match metric.unit.as_str() {
                "ops/s" => {
                    let reference = base.value * scale;
                    let ok = metric.value >= reference * (1.0 - TOLERANCE);
                    (reference, if ok { Verdict::Ok } else { Verdict::Regressed })
                }
                "x" => {
                    let floor_ok = headline_floor(&key).is_none_or(|f| metric.value >= f);
                    let tol_ok = metric.value >= base.value * (1.0 - TOLERANCE);
                    let verdict = if !floor_ok {
                        Verdict::BelowFloor
                    } else if !tol_ok {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    };
                    (base.value, verdict)
                }
                _ => (base.value, Verdict::Informational),
            };
            comparisons.push(Comparison {
                key,
                unit: metric.unit.clone(),
                baseline: base.value,
                current: metric.value,
                reference,
                verdict,
            });
        }
    }
    for metric in &baseline.metrics {
        let key = metric.key();
        if key != "calibration" && currents.iter().all(|(_, c)| c.get(&key).is_none()) {
            comparisons.push(Comparison {
                key,
                unit: metric.unit.clone(),
                baseline: metric.value,
                current: f64::NAN,
                reference: f64::NAN,
                verdict: Verdict::BaselineOnly,
            });
        }
    }

    let fmt = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.3e}")
        }
    };
    let mut table = Table::new(&[
        "metric", "unit", "baseline", "expected", "current", "verdict",
    ]);
    for c in &comparisons {
        table.row(&[
            c.key.clone(),
            c.unit.clone(),
            fmt(c.baseline),
            fmt(c.reference),
            fmt(c.current),
            c.verdict.label().to_string(),
        ]);
    }
    table.print();

    let failures: Vec<&Comparison> = comparisons
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::BelowFloor))
        .collect();
    if failures.is_empty() {
        println!("\nperf gate: PASS ({} metrics compared)", comparisons.len());
        return ExitCode::SUCCESS;
    }
    println!("\nperf gate: {} regression(s):", failures.len());
    for c in &failures {
        println!(
            "  {} [{}]: current {:.3e} vs expected >= {:.3e} ({})",
            c.key,
            c.unit,
            c.current,
            match c.verdict {
                Verdict::BelowFloor => headline_floor(&c.key).unwrap_or(f64::NAN),
                _ => c.reference * (1.0 - TOLERANCE),
            },
            c.verdict.label()
        );
    }
    if soft {
        println!(
            "perf gate: SOFT mode — not failing (label `perf-regression-ok`); \
             commit a refreshed bench/baseline.json with this PR"
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "perf gate: FAIL — if intentional, apply the `perf-regression-ok` label \
         (sets PERF_GATE_SOFT=1) and refresh bench/baseline.json"
    );
    ExitCode::FAILURE
}
