//! **Perf gate**: compares a fresh `BENCH_quack.json` against the committed
//! `bench/baseline.json` and fails on regression.
//!
//! Policy (documented in README.md):
//!
//! * `ops/s` metrics are rescaled by the ratio of the two runs'
//!   `calibration` metrics (a fixed scalar integer workload) before
//!   comparing, so a baseline recorded on one machine gates runs on
//!   another. A metric regresses if it falls more than `TOLERANCE` below
//!   the rescaled baseline.
//! * `x` (ratio) metrics are machine-independent and compared directly
//!   with the same tolerance.
//! * Hard floor: the `insert_speedup` metrics for `Fp64, t = 20,
//!   batch ≥ 32` must be at least [`HARD_FLOOR`] regardless of the
//!   baseline — this is the repo's acceptance headline and may never
//!   erode, tolerance or not.
//! * Metrics present in only one of the two reports are reported but never
//!   fail the gate (so adding benchmarks does not require a lockstep
//!   baseline update).
//! * Setting `PERF_GATE_SOFT=1` (CI sets it when a PR carries the
//!   `perf-regression-ok` label) downgrades failures to warnings for
//!   intentional perf changes; the PR is then expected to commit a new
//!   baseline.
//!
//! Usage: `perf_gate [baseline.json] [current.json]`
//! (defaults: `bench/baseline.json`, `BENCH_quack.json`).
//!
//! Exit status: 0 = pass (or soft mode), 1 = regression, 2 = usage/setup
//! error.

use sidecar_bench::{BenchReport, Table};
use std::process::ExitCode;

/// Allowed relative shortfall versus the (rescaled) baseline.
const TOLERANCE: f64 = 0.15;
/// Absolute floor for the acceptance-headline speedups (`Fp64`, `t=20`,
/// `batch >= 32`).
const HARD_FLOOR: f64 = 2.0;

struct Comparison {
    key: String,
    unit: String,
    baseline: f64,
    current: f64,
    /// Baseline after calibration rescaling (== baseline for ratios).
    reference: f64,
    verdict: Verdict,
}

#[derive(PartialEq, Clone, Copy)]
enum Verdict {
    Ok,
    Regressed,
    BelowFloor,
    BaselineOnly,
    CurrentOnly,
    Informational,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::BelowFloor => "BELOW FLOOR",
            Verdict::BaselineOnly => "baseline only",
            Verdict::CurrentOnly => "new",
            Verdict::Informational => "info",
        }
    }
}

/// Whether this metric key is an acceptance-headline speedup subject to the
/// absolute [`HARD_FLOOR`].
fn is_headline(key: &str) -> bool {
    key.starts_with("insert_speedup|")
        && key.contains("|field=Fp64|")
        && key.ends_with("|t=20")
        && key
            .split('|')
            .find_map(|p| p.strip_prefix("batch="))
            .and_then(|b| b.parse::<u64>().ok())
            .is_some_and(|b| b >= 32)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("bench/baseline.json");
    let current_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_quack.json");
    let soft = std::env::var("PERF_GATE_SOFT").is_ok_and(|v| v == "1");

    let baseline = match BenchReport::read(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: cannot read baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match BenchReport::read(current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_gate: cannot read current report: {e}");
            return ExitCode::from(2);
        }
    };

    // Calibration rescaling for absolute throughputs.
    let scale = match (baseline.get("calibration"), current.get("calibration")) {
        (Some(b), Some(c)) if b.value > 0.0 => c.value / b.value,
        _ => {
            eprintln!("perf_gate: warning: no calibration metric in both reports; comparing ops/s unscaled");
            1.0
        }
    };
    println!(
        "perf gate: baseline {baseline_path}, current {current_path}, \
         calibration scale {scale:.3}, tolerance {:.0}%{}",
        TOLERANCE * 100.0,
        if soft { ", SOFT (warn-only)" } else { "" }
    );

    let mut comparisons: Vec<Comparison> = Vec::new();
    for metric in &current.metrics {
        let key = metric.key();
        if key == "calibration" {
            continue;
        }
        let Some(base) = baseline.get(&key) else {
            comparisons.push(Comparison {
                key,
                unit: metric.unit.clone(),
                baseline: f64::NAN,
                current: metric.value,
                reference: f64::NAN,
                verdict: Verdict::CurrentOnly,
            });
            continue;
        };
        let (reference, verdict) = match metric.unit.as_str() {
            "ops/s" => {
                let reference = base.value * scale;
                let ok = metric.value >= reference * (1.0 - TOLERANCE);
                (reference, if ok { Verdict::Ok } else { Verdict::Regressed })
            }
            "x" => {
                let floor_ok = !is_headline(&key) || metric.value >= HARD_FLOOR;
                let tol_ok = metric.value >= base.value * (1.0 - TOLERANCE);
                let verdict = if !floor_ok {
                    Verdict::BelowFloor
                } else if !tol_ok {
                    Verdict::Regressed
                } else {
                    Verdict::Ok
                };
                (base.value, verdict)
            }
            _ => (base.value, Verdict::Informational),
        };
        comparisons.push(Comparison {
            key,
            unit: metric.unit.clone(),
            baseline: base.value,
            current: metric.value,
            reference,
            verdict,
        });
    }
    for metric in &baseline.metrics {
        let key = metric.key();
        if key != "calibration" && current.get(&key).is_none() {
            comparisons.push(Comparison {
                key,
                unit: metric.unit.clone(),
                baseline: metric.value,
                current: f64::NAN,
                reference: f64::NAN,
                verdict: Verdict::BaselineOnly,
            });
        }
    }

    let fmt = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.3e}")
        }
    };
    let mut table = Table::new(&[
        "metric", "unit", "baseline", "expected", "current", "verdict",
    ]);
    for c in &comparisons {
        table.row(&[
            c.key.clone(),
            c.unit.clone(),
            fmt(c.baseline),
            fmt(c.reference),
            fmt(c.current),
            c.verdict.label().to_string(),
        ]);
    }
    table.print();

    let failures: Vec<&Comparison> = comparisons
        .iter()
        .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::BelowFloor))
        .collect();
    if failures.is_empty() {
        println!("\nperf gate: PASS ({} metrics compared)", comparisons.len());
        return ExitCode::SUCCESS;
    }
    println!("\nperf gate: {} regression(s):", failures.len());
    for c in &failures {
        println!(
            "  {} [{}]: current {:.3e} vs expected >= {:.3e} ({})",
            c.key,
            c.unit,
            c.current,
            match c.verdict {
                Verdict::BelowFloor => HARD_FLOOR,
                _ => c.reference * (1.0 - TOLERANCE),
            },
            c.verdict.label()
        );
    }
    if soft {
        println!(
            "perf gate: SOFT mode — not failing (label `perf-regression-ok`); \
             commit a refreshed bench/baseline.json with this PR"
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "perf gate: FAIL — if intentional, apply the `perf-regression-ok` label \
         (sets PERF_GATE_SOFT=1) and refresh bench/baseline.json"
    );
    ExitCode::FAILURE
}
