//! **Nightly seed-sweep soak**: the determinism and robustness claims the
//! per-PR suites spot-check, swept across many seeds.
//!
//! Each PR leg runs the failover/adversary/manyflow experiments at 3
//! seeds; this soak re-runs the same scenario families at ≥32 seeds and
//! *fails* (exit 1) on any violation of the properties the repo treats as
//! invariants rather than measurements:
//!
//! * **Completion** — every faulted or attacked run still finishes inside
//!   its horizon (the opportunism claim: a broken or hostile sidecar
//!   never wedges the transport).
//! * **Transparency bound** — faulted sidecar goodput stays ≥
//!   [`RATIO_FLOOR`] of the same-seed, same-fault no-sidecar twin.
//! * **Mechanism engagement** — under clean runs the enhancement actually
//!   fires (proxy retransmissions for retx, quACK traffic for all), so a
//!   silently-disabled sidecar cannot soak green.
//! * **Blackout degradation** — a control blackout that outlives the
//!   liveness timeout forces ≥ 1 supervisor degradation.
//! * **Causal certification** — the clean retx/ccd flight-recorder rings
//!   are untruncated and [`sidecar_obs::Lifecycle::check_causal`] certifies
//!   every packet history (no effect-before-cause, no double-delivery).
//! * **Flow-table bounds** — many-flow runs complete every flow, residual
//!   occupancy never exceeds `shards * per_shard`, and the overcommitted
//!   point (256 flows into 128 sessions) actually evicts.
//! * **Many-flow certification** — a lossless 1 000-flow ACK-reduction
//!   run per seed completes every flow, evicts nothing from its
//!   `sized_for` table, and causally certifies every packet lifecycle.
//! * **100k-flow vantage point** (full sweeps only; `--quick` skips it) —
//!   the slab flow engine holds 100 000 concurrent flows: every flow
//!   completes and the table finishes with all 100k sessions resident
//!   and **zero** evictions, while the synchronized slow-start burst
//!   overdrives the trunk (see [`provisioned_manyflow`]).
//!
//! CI runs this from the nightly cron job (`soak`, off the PR critical
//! path); `--quick` (4 seeds) keeps a local sanity pass cheap. The
//! summary lands in `BENCH_soak.json` with informational units only — the
//! perf gate never reads it; the exit code is the contract.
//!
//! With `--timeseries-out`, every clean retx run is additionally sampled
//! on the simulator clock (500 ms cadence) and its windowed time-series
//! lands in `BENCH_soak_seed<seed>_timeseries.txt` (honoring
//! `$BENCH_OUT_DIR`) — the nightly job uploads the set as CI artifacts,
//! giving each soak a per-seed behavioral record to diff against.
//!
//! Usage: `soak [--seeds N] [--quick] [--timeseries-out]`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_obs::Lifecycle;
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::manyflow::{ManyFlowProtocol, ManyFlowScenario};
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::protocols::{FaultScript, ScenarioReport};
use sidecar_proto::FlowTableConfig;
use std::process::ExitCode;

/// Minimum faulted-sidecar / faulted-baseline goodput ratio. The paper's
/// transparency bound is ~0.9 on averaged runs; single seeds wobble more,
/// so the per-seed invariant keeps slack — systematic fallback bugs crater
/// far below this, seed noise does not.
const RATIO_FLOOR: f64 = 0.75;
/// Default seed count (ISSUE floor: ≥ 32).
const DEFAULT_SEEDS: u64 = 32;
/// Ring capacity for the certified lifecycle runs — must hold every
/// record of a 2k-packet run or `is_complete()` refuses certification.
const TRACE_CAP: usize = 1 << 20;
/// Ring capacity for the certified 1k-flow many-flow runs (8k data
/// packets plus their ACK/quACK records).
const MANYFLOW_TRACE_CAP: usize = 1 << 21;

/// Provisioned N-flow ACK-reduction run: `sized_for` table, deep
/// queues, 2 Gbit/s links, and an idle timeout that outlives the
/// horizon — any *eviction* is then a flow-engine bug, not weather.
///
/// Losslessness is a separate, N-dependent claim: at 1k flows the 8k
/// packet burst serializes in ~50 ms, well inside the senders' PTO, so
/// the certified leg also asserts zero drops. At 100k flows the
/// synchronized slow-start burst (~800k packets, ~4.8 s of trunk
/// serialization against a ~200 ms PTO) intentionally overdrives the
/// trunk — drops and spurious retransmissions are the realistic weather
/// a vantage-point table must ride out, and the 100k leg asserts the
/// flow-engine invariants (completion, zero evictions, full occupancy)
/// rather than pretending the burst fits the pipe.
fn provisioned_manyflow(flows: u32, seed: u64, queue_packets: usize) -> ManyFlowScenario {
    let mut s = ManyFlowScenario::new(ManyFlowProtocol::AckReduction, flows);
    s.packets_per_flow = 8;
    s.seed = seed;
    s.table = FlowTableConfig::sized_for(flows as usize, SimDuration::from_secs(300));
    s.trunk = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(25),
        queue_packets,
        ..LinkConfig::default()
    };
    s.edge = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(2),
        queue_packets,
        ..s.edge
    };
    s
}

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Per-family accumulator: worst goodput ratio and violation count.
struct Family {
    name: &'static str,
    runs: u64,
    min_ratio: f64,
}

impl Family {
    fn new(name: &'static str) -> Self {
        Family {
            name,
            runs: 0,
            min_ratio: f64::INFINITY,
        }
    }

    fn record_ratio(&mut self, ratio: f64) {
        self.min_ratio = self.min_ratio.min(ratio);
    }
}

/// Checks the invariants shared by every faulted sidecar/baseline pair:
/// both complete, and the sidecar run holds the transparency bound.
/// Returns the goodput ratio when both completed.
fn check_pair(
    violations: &mut Vec<String>,
    family: &mut Family,
    seed: u64,
    side: &ScenarioReport,
    base: &ScenarioReport,
) -> Option<f64> {
    family.runs += 1;
    let tag = format!("{} seed={seed}", family.name);
    if side.completion.is_none() {
        violations.push(format!("{tag}: sidecar run did not complete"));
    }
    if base.completion.is_none() {
        violations.push(format!("{tag}: baseline twin did not complete"));
    }
    let (Some(s), Some(b)) = (side.goodput_bps, base.goodput_bps) else {
        return None;
    };
    let ratio = s / b;
    family.record_ratio(ratio);
    if ratio < RATIO_FLOOR {
        violations.push(format!(
            "{tag}: transparency bound broken — goodput ratio {ratio:.3} < {RATIO_FLOOR}"
        ));
    }
    Some(ratio)
}

/// The blackout script from the failover experiment: control dead from
/// 50 ms to end-of-run, data path intact.
fn blackout() -> FaultScript {
    FaultScript {
        fault_seed: 7,
        drop_control: Some((at(50), at(600_000))),
        ..FaultScript::default()
    }
}

/// Proxy crash at 250 ms, restart at 750 ms (volatile state lost).
fn crash() -> FaultScript {
    FaultScript {
        fault_seed: 3,
        proxy_crash: Some((at(250), at(750))),
        ..FaultScript::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = DEFAULT_SEEDS;
    let quick = args.iter().any(|a| a == "--quick");
    let timeseries_out = args.iter().any(|a| a == "--timeseries-out");
    if quick {
        seeds = 4;
    }
    if let Some(pos) = args.iter().position(|a| a == "--seeds") {
        match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => seeds = n,
            _ => {
                eprintln!("soak: --seeds requires a positive integer");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "seed-sweep soak: {seeds} seeds x (failover, adversary, manyflow, \
         causal certification){}\n",
        if quick {
            ""
        } else {
            " + 100k-flow vantage point"
        }
    );

    let mut violations: Vec<String> = Vec::new();
    let mut fam_clean = Family::new("retx/clean");
    let mut fam_blackout = Family::new("retx/blackout");
    let mut fam_crash = Family::new("ccd/crash");
    let mut fam_replay = Family::new("retx/replay-x4");
    let mut fam_tamper = Family::new("ccd/tamper-16");
    let mut fam_forge = Family::new("ackred/forge");
    let mut certified = 0u64;
    let mut manyflow_certified = 0u64;
    let mut manyflow_runs = 0u64;

    let always = (at(0), at(600_000));
    let replay = FaultScript {
        fault_seed: 18,
        replay_control: Some((4, SimDuration::from_millis(5), always.0, always.1)),
        ..FaultScript::default()
    };
    let tamper = FaultScript {
        fault_seed: 19,
        tamper_control: Some((16, always.0, always.1)),
        ..FaultScript::default()
    };
    let forge = FaultScript {
        fault_seed: 17,
        forge_control: Some(always),
        ..FaultScript::default()
    };

    for i in 0..seeds {
        // Prime stride so the sweep never collides with the fixed seeds
        // the per-PR experiments pin (11/22/33/42).
        let seed = 101 + i * 7919;

        // Clean retx, certified: mechanism engagement + causal history.
        // Under --timeseries-out the clean run also carries the 500 ms
        // simulator-clock sampler; the faulted reruns below reuse the
        // same scenario, so their (discarded) series cost is accepted.
        let retx = RetxScenario {
            trace_capacity: Some(TRACE_CAP),
            sample_interval: timeseries_out.then(|| SimDuration::from_millis(500)),
            ..RetxScenario::default()
        };
        let side = retx.run_sidecar(seed);
        let base = retx.run_baseline(seed);
        if timeseries_out {
            sidecar_bench::write_timeseries_out(&format!("soak_seed{seed}"), &side.timeseries);
        }
        check_pair(&mut violations, &mut fam_clean, seed, &side, &base);
        if side.proxy_retransmissions == 0 {
            violations.push(format!(
                "retx/clean seed={seed}: no in-network retransmissions on a 2% lossy subpath"
            ));
        }
        if side.sidecar_messages == 0 {
            violations.push(format!("retx/clean seed={seed}: no sidecar traffic"));
        }
        let lifecycle = Lifecycle::from_trace(&side.trace);
        if !lifecycle.is_complete() {
            violations.push(format!(
                "retx/clean seed={seed}: flight-recorder ring truncated ({} dropped)",
                lifecycle.dropped_records()
            ));
        } else if let Err(e) = lifecycle.check_causal() {
            violations.push(format!("retx/clean seed={seed}: causal violation: {e}"));
        } else {
            certified += 1;
        }

        // Blackout outlives the liveness timeout: supervisor must degrade.
        let script = blackout();
        let side = retx.run_sidecar_faulted(seed, &script);
        let base = retx.run_baseline_faulted(seed, &script);
        check_pair(&mut violations, &mut fam_blackout, seed, &side, &base);
        if side.degradations == 0 {
            violations.push(format!(
                "retx/blackout seed={seed}: control blackout never degraded the session"
            ));
        }

        // Crash/restart on ccd, plus a certified clean-side trace.
        let ccd = CcdScenario {
            trace_capacity: Some(TRACE_CAP),
            ..CcdScenario::default()
        };
        let script = crash();
        let side = ccd.run_sidecar_faulted(seed, &script);
        let base = ccd.run_baseline_faulted(seed, &script);
        check_pair(&mut violations, &mut fam_crash, seed, &side, &base);
        let clean = ccd.run_sidecar(seed);
        let lifecycle = Lifecycle::from_trace(&clean.trace);
        if !lifecycle.is_complete() {
            violations.push(format!(
                "ccd/clean seed={seed}: flight-recorder ring truncated ({} dropped)",
                lifecycle.dropped_records()
            ));
        } else if let Err(e) = lifecycle.check_causal() {
            violations.push(format!("ccd/clean seed={seed}: causal violation: {e}"));
        } else {
            certified += 1;
        }

        // Adversary rows: the strongest intensity of each attack class.
        let side = retx.run_sidecar_faulted(seed, &replay);
        let base = retx.run_baseline_faulted(seed, &replay);
        check_pair(&mut violations, &mut fam_replay, seed, &side, &base);

        let side = ccd.run_sidecar_faulted(seed, &tamper);
        let base = ccd.run_baseline_faulted(seed, &tamper);
        check_pair(&mut violations, &mut fam_tamper, seed, &side, &base);

        let ackred = AckReductionScenario::default();
        let side = ackred.run_sidecar_faulted(seed, &forge);
        let base = ackred.run_baseline_faulted(seed, ackred.reduced_ack_every, &forge);
        check_pair(&mut violations, &mut fam_forge, seed, &side, &base);

        // Certified 1k-flow vantage point: a lossless sized-for run must
        // complete every flow, evict nothing, and causally certify.
        let mut s = provisioned_manyflow(1_000, seed, 16_384);
        s.trace_capacity = Some(MANYFLOW_TRACE_CAP);
        let report = s.run();
        let tag = format!("manyflow/certified-1k seed={seed}");
        if report.completed != 1_000 {
            violations.push(format!(
                "{tag}: only {}/1000 flows completed",
                report.completed
            ));
        }
        if report.evictions() != 0 {
            violations.push(format!(
                "{tag}: sized-for table evicted {} sessions on a lossless run",
                report.evictions()
            ));
        }
        if report.metrics.counter_sum("netsim.drop.") != 0 {
            violations.push(format!(
                "{tag}: {} drops on a provisioned-lossless run",
                report.metrics.counter_sum("netsim.drop.")
            ));
        }
        let lifecycle = Lifecycle::from_trace(&report.trace);
        if !lifecycle.is_complete() {
            violations.push(format!(
                "{tag}: flight-recorder ring truncated ({} dropped)",
                lifecycle.dropped_records()
            ));
        } else if let Err(e) = lifecycle.check_causal() {
            violations.push(format!("{tag}: causal violation: {e}"));
        } else {
            manyflow_certified += 1;
        }

        // Many-flow bounds: within capacity and 2x overcommitted.
        for flows in [64u32, 256] {
            let mut s = ManyFlowScenario::new(ManyFlowProtocol::Retx, flows);
            s.packets_per_flow = (4_096 / flows as u64).max(16);
            s.seed = seed;
            let capacity = s.table.shards * s.table.per_shard;
            let report = s.run();
            manyflow_runs += 1;
            let tag = format!("manyflow/retx flows={flows} seed={seed}");
            if report.completed != flows {
                violations.push(format!(
                    "{tag}: only {}/{flows} flows completed",
                    report.completed
                ));
            }
            if report.live_flows_at_end > capacity {
                violations.push(format!(
                    "{tag}: {} resident sessions exceed table capacity {capacity}",
                    report.live_flows_at_end
                ));
            }
            if flows as usize > capacity && report.evictions() == 0 {
                violations.push(format!(
                    "{tag}: overcommitted table ({flows} flows, {capacity} sessions) never evicted"
                ));
            }
        }

        if (i + 1) % 8 == 0 {
            println!(
                "  ... {}/{seeds} seeds swept, {} violation(s) so far",
                i + 1,
                violations.len()
            );
        }
    }

    // 100k-flow vantage point: the slab engine's scale claim, nightly.
    // Skipped under --quick (it is the single most expensive leg); two
    // seeds keep it deterministic without doubling the soak's runtime.
    let mut manyflow_100k = 0u64;
    if !quick {
        for seed in [211u64, 211 + 7919] {
            let s = provisioned_manyflow(100_000, seed, 1 << 20);
            let report = s.run();
            manyflow_100k += 1;
            let tag = format!("manyflow/100k seed={seed}");
            if report.completed != 100_000 {
                violations.push(format!(
                    "{tag}: only {}/100000 flows completed",
                    report.completed
                ));
            }
            if report.evictions() != 0 {
                violations.push(format!(
                    "{tag}: sized-for table evicted {} of 100k sessions",
                    report.evictions()
                ));
            }
            if report.live_flows_at_end != 100_000 {
                violations.push(format!(
                    "{tag}: {} of 100000 sessions resident at end",
                    report.live_flows_at_end
                ));
            }
            println!(
                "  manyflow/100k seed={seed}: {}/100000 completed, \
                 {} evictions, {} live at end, {} burst drops ridden out",
                report.completed,
                report.evictions(),
                report.live_flows_at_end,
                report.metrics.counter_sum("netsim.drop.")
            );
        }
    }

    let families = [
        &fam_clean,
        &fam_blackout,
        &fam_crash,
        &fam_replay,
        &fam_tamper,
        &fam_forge,
    ];
    let mut table = Table::new(&["family", "runs", "min goodput ratio"]);
    let mut report = BenchReport::new("soak");
    report.push("seeds", &[], seeds as f64, "count");
    for f in &families {
        table.row(&[
            f.name.into(),
            f.runs.to_string(),
            format!("{:.3}", f.min_ratio),
        ]);
        let fam_key = f.name.replace('/', "_");
        report.push(
            "min_goodput_ratio",
            &[("family", fam_key.as_str())],
            f.min_ratio,
            "ratio",
        );
    }
    table.print();
    println!(
        "\ncertified lifecycles: {certified}/{} clean runs, \
         {manyflow_certified}/{seeds} 1k-flow runs",
        seeds * 2
    );
    println!("manyflow runs: {manyflow_runs} (+{manyflow_100k} at 100k flows)");
    report.push("certified_lifecycles", &[], certified as f64, "count");
    report.push(
        "manyflow_certified_1k",
        &[],
        manyflow_certified as f64,
        "count",
    );
    report.push("manyflow_runs", &[], manyflow_runs as f64, "count");
    report.push("manyflow_100k_runs", &[], manyflow_100k as f64, "count");
    report.push("violations", &[], violations.len() as f64, "count");
    report.write_default().expect("write BENCH_soak.json");
    sidecar_bench::write_metrics_out("soak");

    if violations.is_empty() {
        println!("soak: PASS — {seeds} seeds, no invariant violations");
        ExitCode::SUCCESS
    } else {
        println!("soak: {} invariant violation(s):", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}
