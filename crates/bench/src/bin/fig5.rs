//! **Figure 5**: quACK construction time (µs) vs. threshold `t`.
//!
//! Paper: n = 1000 identifiers folded into `t` power sums for
//! t ∈ [10, 50] and b ∈ {16, 24, 32}; construction time is "directly
//! proportional to t, as it uses one modular multiplication and addition
//! per … power sum", with `b` selecting the arithmetic (16-bit uses the
//! exp/log tables). At t = 20, b = 32 the paper reports 106 µs total and
//! ≈100 ns amortized per packet.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin fig5`

use sidecar_bench::{measure_mean, per_item_nanos, workload, BenchReport, Table};
use sidecar_galois::{Field, Fp16, Fp24, Fp32};
use sidecar_quack::PowerSumQuack;
use std::time::Duration;

const N: usize = 1000;

fn construction_time<F: Field>(ids: &[u64], t: usize) -> Duration {
    measure_mean(|_| {
        let mut q = PowerSumQuack::<F>::new(t);
        for &id in ids {
            q.insert(id);
        }
        q
    })
}

fn main() {
    println!(
        "Figure 5 reproduction: construction time (us) for n = {N} packets \
         vs threshold t, per identifier width b\n"
    );
    let thresholds: Vec<usize> = (10..=50).step_by(5).collect();
    let mut report = BenchReport::new("fig5");
    let mut table = Table::new(&["t", "b=16 (us)", "b=24 (us)", "b=32 (us)", "b=32 ns/pkt"]);
    let mut series32 = Vec::new();
    for &t in &thresholds {
        let (ids16, _) = workload(N, 0, 16, 0xF16);
        let (ids24, _) = workload(N, 0, 24, 0xF24);
        let (ids32, _) = workload(N, 0, 32, 0xF32);
        let d16 = construction_time::<Fp16>(&ids16, t);
        let d24 = construction_time::<Fp24>(&ids24, t);
        let d32 = construction_time::<Fp32>(&ids32, t);
        series32.push((t, d32));
        let ts = t.to_string();
        for (bits, d) in [("16", d16), ("24", d24), ("32", d32)] {
            report.push(
                "construction_time",
                &[("t", &ts), ("b", bits)],
                d.as_nanos() as f64 / 1e3,
                "us",
            );
        }
        report.push(
            "construction_per_packet",
            &[("t", &ts), ("b", "32")],
            per_item_nanos(d32, N),
            "ns",
        );
        table.row(&[
            t.to_string(),
            format!("{:.1}", d16.as_nanos() as f64 / 1e3),
            format!("{:.1}", d24.as_nanos() as f64 / 1e3),
            format!("{:.1}", d32.as_nanos() as f64 / 1e3),
            format!("{:.0}", per_item_nanos(d32, N)),
        ]);
    }
    table.print();

    // Shape check: growth from t=10 to t=50 should be roughly linear in t
    // (paper: "directly proportional to t").
    let first = series32
        .first()
        .expect("fig5 b=32 construction series is empty: no t values were benchmarked")
        .1
        .as_nanos() as f64;
    let last = series32
        .last()
        .expect("fig5 b=32 construction series is empty: no t values were benchmarked")
        .1
        .as_nanos() as f64;
    println!(
        "\nb=32 growth t=10→50: {:.2}x (linear-in-t predicts ≈5x; constant \
         overheads pull it below)",
        last / first
    );
    println!("paper reference point: t = 20, b = 32 → 106 us total, ≈100 ns/packet");
    report.push("growth_t10_to_t50", &[("b", "32")], last / first, "x");
    report.write_default().expect("write BENCH_fig5.json");
    sidecar_bench::write_metrics_out("fig5");
    sidecar_bench::write_trace_out("fig5");
}
