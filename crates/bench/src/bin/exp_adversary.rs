//! **Adversary-resilience experiment**: what does an active attacker cost?
//!
//! The paper's §5 asks "how do we handle adversarial proxies?" — this
//! experiment answers for the whole control channel. An on-path attacker
//! who cannot read the pre-shared key tries the three classic moves
//! against every protocol, at swept intensities: *forgery* (well-formed
//! quACKs with poisoned contents injected next to every honest datagram),
//! *replay* (each captured datagram re-delivered 1/2/4 extra times), and
//! *tampering* (a bit-flipped copy of every datagram, 1/4/16 flips). A
//! stateful-firewall row starves the control flow instead: any idle gap
//! longer than the rule's timeout eats the next datagram.
//!
//! Every sidecar run speaks the authenticated channel; its baseline twin
//! runs the same lowered fault script with no sidecar at all. Expected
//! shape: goodput ratio ≥ ~1.0 at *every* intensity — the MAC/replay
//! window rejects attack datagrams before they touch protocol state, and
//! a starved channel degrades to baseline behavior. The `rejected/run`
//! column counts envelope rejections (the attacks actually landing), and
//! the closing microbench prices the per-quACK MAC.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_adversary`

use sidecar_bench::{measure_best_of, per_item_nanos, BenchReport, Table};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::protocols::{FaultScript, ScenarioReport};
use sidecar_proto::{AuthConfig, ChannelAuth, SidecarMessage};

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn attacks() -> Vec<(&'static str, FaultScript)> {
    let always = (at(0), at(600_000));
    let mut v = vec![
        ("none", FaultScript::default()),
        (
            "forge flood",
            FaultScript {
                fault_seed: 17,
                forge_control: Some(always),
                ..FaultScript::default()
            },
        ),
    ];
    for copies in [1, 2, 4] {
        v.push((
            match copies {
                1 => "replay x1",
                2 => "replay x2",
                _ => "replay x4",
            },
            FaultScript {
                fault_seed: 18,
                replay_control: Some((copies, SimDuration::from_millis(5), always.0, always.1)),
                ..FaultScript::default()
            },
        ));
    }
    for flips in [1, 4, 16] {
        v.push((
            match flips {
                1 => "tamper ≤1 bit",
                4 => "tamper ≤4 bits",
                _ => "tamper ≤16 bits",
            },
            FaultScript {
                fault_seed: 19,
                tamper_control: Some((flips, always.0, always.1)),
                ..FaultScript::default()
            },
        ));
    }
    v.push((
        "firewall 20ms idle",
        FaultScript {
            fault_seed: 20,
            firewall_idle: Some((SimDuration::from_millis(20), always.0, always.1)),
            ..FaultScript::default()
        },
    ));
    v
}

const SEEDS: [u64; 3] = [11, 22, 33];

fn auth() -> AuthConfig {
    AuthConfig::from_secret(0x5EC2_E7A1, 1)
}

/// Per-cell averages over the seeds.
struct Cell {
    side_bps: f64,
    base_bps: f64,
    rejected: f64,
    injected: f64,
    degradations: f64,
}

fn average(runs: impl Fn(u64) -> (ScenarioReport, ScenarioReport)) -> Cell {
    let mut cell = Cell {
        side_bps: 0.0,
        base_bps: 0.0,
        rejected: 0.0,
        injected: 0.0,
        degradations: 0.0,
    };
    for &seed in &SEEDS {
        let (side, base) = runs(seed);
        assert!(
            side.completion.is_some() && base.completion.is_some(),
            "attacked run did not complete (seed {seed}): {side:?} / {base:?}"
        );
        cell.side_bps += side.goodput_bps.unwrap_or(0.0);
        cell.base_bps += base.goodput_bps.unwrap_or(0.0);
        cell.degradations += side.degradations as f64;
        cell.rejected += side.metrics.counter_sum("auth.rejected.") as f64;
        cell.injected += (side.metrics.counter("netsim.fault.forge")
            + side.metrics.counter("netsim.fault.replay")
            + side.metrics.counter("netsim.fault.tamper")
            + side.metrics.counter("netsim.fault.firewall")) as f64;
    }
    let k = SEEDS.len() as f64;
    cell.side_bps /= k;
    cell.base_bps /= k;
    cell.rejected /= k;
    cell.injected /= k;
    cell.degradations /= k;
    cell
}

fn row(table: &mut Table, report: &mut BenchReport, protocol: &str, attack: &str, cell: &Cell) {
    table.row(&[
        protocol.into(),
        attack.into(),
        format!("{:.2}", cell.side_bps / 1e6),
        format!("{:.2}", cell.base_bps / 1e6),
        format!("{:.3}", cell.side_bps / cell.base_bps),
        format!("{:.0}", cell.injected),
        format!("{:.0}", cell.rejected),
        format!("{:.1}", cell.degradations),
    ]);
    let attack_key = attack.replace(' ', "_");
    let params = [("protocol", protocol), ("attack", attack_key.as_str())];
    report.push("sidecar_goodput", &params, cell.side_bps, "bps");
    report.push("baseline_goodput", &params, cell.base_bps, "bps");
    report.push("goodput_ratio", &params, cell.side_bps / cell.base_bps, "x");
    report.push("attack_injected", &params, cell.injected, "count");
    report.push("auth_rejected", &params, cell.rejected, "count");
    report.push("degradations", &params, cell.degradations, "count");
}

/// Prices the authenticated envelope on the hot path: seal + verify of a
/// paper-default 82-byte quACK, against the plain encode + decode twin.
fn mac_microbench(report: &mut BenchReport) {
    let quack = SidecarMessage::Quack {
        epoch: 1,
        bytes: vec![0x5A; 82],
    };
    let cfg = auth();
    let mut tx = ChannelAuth::new(cfg.with_nonce(1));
    let mut rx = ChannelAuth::new(cfg.with_nonce(2));
    let sealed = measure_best_of(5, 2_000, 200, &mut |_| {
        let (tag, body) = tx.seal(&quack, 5);
        rx.open(tag, &body).expect("sealed quACK verifies")
    });
    let plain = measure_best_of(5, 2_000, 200, &mut |_| {
        let (tag, body) = quack.encode_for_flow(5);
        SidecarMessage::decode_flow(tag, &body).expect("plain quACK decodes")
    });
    let sealed_ns = per_item_nanos(sealed, 1);
    let plain_ns = per_item_nanos(plain, 1);
    println!(
        "\nper-quACK control-path cost (82-byte quack, seal+verify vs plain\n\
         encode+decode): authenticated {sealed_ns:.0} ns, plain {plain_ns:.0} ns,\n\
         MAC overhead {:.0} ns/quACK",
        sealed_ns - plain_ns
    );
    report.push("quack_auth_ns", &[], sealed_ns, "ns");
    report.push("quack_plain_ns", &[], plain_ns, "ns");
    report.push("quack_mac_overhead_ns", &[], sealed_ns - plain_ns, "ns");
}

fn main() {
    println!(
        "adversary resilience: authenticated sidecar vs no-sidecar twin under\n\
         active attack (same lowered script on both runs; averaged over seeds\n\
         {SEEDS:?})\n"
    );
    let mut report = BenchReport::new("exp_adversary");
    let mut table = Table::new(&[
        "protocol",
        "attack",
        "sidecar (Mbit/s)",
        "baseline (Mbit/s)",
        "ratio",
        "injected/run",
        "rejected/run",
        "degr/run",
    ]);

    let retx = RetxScenario {
        total_packets: 1_200,
        auth: Some(auth()),
        ..RetxScenario::default()
    };
    for (name, script) in attacks() {
        let cell = average(|seed| {
            (
                retx.run_sidecar_faulted(seed, &script),
                retx.run_baseline_faulted(seed, &script),
            )
        });
        row(&mut table, &mut report, "retx", name, &cell);
    }

    let ackred = AckReductionScenario {
        total_packets: 1_200,
        auth: Some(auth()),
        ..AckReductionScenario::default()
    };
    for (name, script) in attacks() {
        let cell = average(|seed| {
            (
                ackred.run_sidecar_faulted(seed, &script),
                ackred.run_baseline_faulted(seed, ackred.reduced_ack_every, &script),
            )
        });
        row(&mut table, &mut report, "ack-reduction", name, &cell);
    }

    let ccd = CcdScenario {
        total_packets: 10_000,
        auth: Some(auth()),
        ..CcdScenario::default()
    };
    for (name, script) in attacks() {
        let cell = average(|seed| {
            (
                ccd.run_sidecar_faulted(seed, &script),
                ccd.run_baseline_faulted(seed, &script),
            )
        });
        row(&mut table, &mut report, "ccd", name, &cell);
    }

    table.print();
    mac_microbench(&mut report);
    report
        .write_default()
        .expect("write BENCH_exp_adversary.json");
    sidecar_bench::write_metrics_out("exp_adversary");
    sidecar_bench::write_trace_out("exp_adversary");
    println!(
        "\nexpected shape: the ratio stays at or above ~1.0 in every row —\n\
         forged and replayed datagrams die at the envelope (rejected/run\n\
         tracks injected/run), tampered copies fail the MAC, and the\n\
         firewall rows degrade to exact baseline behavior. No attack at any\n\
         intensity pushes an authenticated protocol below its no-sidecar\n\
         twin."
    );
}
