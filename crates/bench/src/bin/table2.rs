//! **Table 2**: strawman quACKs vs. the power-sum quACK.
//!
//! Paper values (2019 MacBook Pro, n = 1000, t = 20, b = 32, c = 16,
//! average of 100 trials with warmup):
//!
//! | scheme     | construction | decoding    | size (bits)      |
//! |------------|--------------|-------------|------------------|
//! | Strawman 1 | 222 us       | 126 us      | b·n   = 32000    |
//! | Strawman 2 | 387 ns       | ≈7e+06 days | 256+c = 272      |
//! | Power sums | 106 us       | 61 us       | t·b+c = 656      |
//!
//! Absolute times differ on other hardware; the *shape* must hold:
//! Strawman 1 pays ~50× the bandwidth, Strawman 2's decode is astronomically
//! infeasible, the power-sum quACK is competitive on every axis.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin table2`

use sidecar_bench::{fmt_days, fmt_duration, measure_mean, workload, BenchReport, Table};
use sidecar_quack::strawman::{estimated_decode_days, hash_sorted, EchoQuack, HashQuack};
use sidecar_quack::{PowerSumQuack, Quack32, WireFormat};
use std::time::Instant;

const N: usize = 1000;
const T: usize = 20;
const B: u32 = 32;
const C: u32 = 16;

fn main() {
    let (sent, received) = workload(N, T, B, 0xB00);
    println!(
        "Table 2 reproduction: n = {N}, t = {T}, b = {B}, c = {C} \
         ({} received, {} missing), 100 trials with warmup\n",
        received.len(),
        N - received.len()
    );

    // --- Strawman 1: echo every identifier -------------------------------
    let s1_construct = measure_mean(|_| {
        let mut q = EchoQuack::new(B);
        for &id in &received {
            q.insert(id);
        }
        q
    });
    let mut echo = EchoQuack::new(B);
    for &id in &received {
        echo.insert(id);
    }
    let s1_decode = measure_mean(|_| echo.decode_missing(&sent));
    let s1_bits = echo.wire_bits();

    // --- Strawman 2: hash of sorted concatenation ------------------------
    let s2_construct = measure_mean(|_| {
        let mut q = HashQuack::new();
        for &id in &received {
            q.insert(id);
        }
        q.digest()
    });
    // Per-candidate cost of the brute-force search: one merge + one hash of
    // the candidate subset.
    let per_hash = measure_mean(|_| hash_sorted(&received));
    let s2_days = estimated_decode_days(N as u64, T as u64, per_hash.as_nanos() as f64);
    let s2_bits = HashQuack::wire_bits(C);

    // --- Power sums -------------------------------------------------------
    let ps_construct = measure_mean(|_| {
        let mut q = Quack32::new(T);
        for &id in &received {
            q.insert(id);
        }
        q
    });
    let fmt = WireFormat {
        id_bits: B,
        threshold: T,
        count_bits: C,
    };
    let mut sender = Quack32::new(T);
    for &id in &sent {
        sender.insert(id);
    }
    let mut receiver = Quack32::new(T);
    for &id in &received {
        receiver.insert(id);
    }
    let wire = fmt.encode(&receiver);
    let ps_bits = fmt.encoded_bits();
    let ps_decode = measure_mean(|_| {
        let rx: PowerSumQuack<sidecar_galois::Fp32> = fmt.decode(&wire, None).unwrap();
        sender.decode_against(&rx, &sent).unwrap()
    });

    // Sanity: the decode really finds the missing 20.
    let rx: Quack32 = fmt.decode(&wire, None).unwrap();
    let decoded = sender.decode_against(&rx, &sent).unwrap();
    assert_eq!(decoded.num_missing(), T);
    assert!(decoded.missing().len() + decoded.indeterminate().len() >= T);

    let mut report = BenchReport::new("table2");
    for (scheme, construct, bits) in [
        ("strawman1", s1_construct, s1_bits as f64),
        ("strawman2", s2_construct, s2_bits as f64),
        ("power_sums", ps_construct, ps_bits as f64),
    ] {
        let params = [("scheme", scheme)];
        report.push(
            "construction_time",
            &params,
            construct.as_nanos() as f64 / 1e3,
            "us",
        );
        report.push("wire_size", &params, bits, "bits");
    }
    report.push(
        "decode_time",
        &[("scheme", "strawman1")],
        s1_decode.as_nanos() as f64 / 1e3,
        "us",
    );
    report.push(
        "decode_time_days",
        &[("scheme", "strawman2")],
        s2_days,
        "days",
    );
    report.push(
        "decode_time",
        &[("scheme", "power_sums")],
        ps_decode.as_nanos() as f64 / 1e3,
        "us",
    );
    report.write_default().expect("write BENCH_table2.json");
    sidecar_bench::write_metrics_out("table2");
    sidecar_bench::write_trace_out("table2");

    let mut table = Table::new(&[
        "scheme",
        "construction",
        "decoding",
        "size (bits)",
        "paper constr.",
        "paper decode",
        "paper size",
    ]);
    table.row(&[
        "Strawman 1".into(),
        fmt_duration(s1_construct),
        fmt_duration(s1_decode),
        format!("b·n = {s1_bits}"),
        "222 us".into(),
        "126 us".into(),
        "32000".into(),
    ]);
    table.row(&[
        "Strawman 2".into(),
        fmt_duration(s2_construct),
        fmt_days(s2_days),
        format!("256+c = {s2_bits}"),
        "387 ns".into(),
        "≈7e+06 days".into(),
        "272".into(),
    ]);
    table.row(&[
        "Power Sums".into(),
        fmt_duration(ps_construct),
        fmt_duration(ps_decode),
        format!("t·b+c = {ps_bits}"),
        "106 us".into(),
        "61 us".into(),
        "656".into(),
    ]);
    table.print();

    println!(
        "\nper-candidate hash for the Strawman-2 search: {}",
        fmt_duration(per_hash)
    );
    println!(
        "power-sum quACK wire size: {} bytes (paper: 82 bytes)",
        fmt.encoded_bytes()
    );

    // Demonstrate that Strawman 2 decode is *possible* but explodes: a tiny
    // instance succeeds, the real instance's budgeted search gives up.
    let (small_sent, small_received) = workload(16, 2, B, 0xB01);
    let mut small = HashQuack::new();
    for &id in &small_received {
        small.insert(id);
    }
    let digest = small.digest();
    let start = Instant::now();
    let found = small
        .decode_missing(&small_sent, &digest, 1_000_000)
        .unwrap();
    println!(
        "\nStrawman-2 search at n=16, m=2: found {:?} in {}",
        found,
        fmt_duration(start.elapsed())
    );
    let mut real = HashQuack::new();
    for &id in &received {
        real.insert(id);
    }
    let digest = real.digest();
    let start = Instant::now();
    let budget = 200_000;
    assert!(real.decode_missing(&sent, &digest, budget).is_none());
    let burned = start.elapsed();
    let rate = budget as f64 / burned.as_secs_f64();
    println!(
        "Strawman-2 search at n={N}, m={T}: gave up after {budget} candidates in {} \
         ({rate:.0} candidates/s → {} total)",
        fmt_duration(burned),
        fmt_days(estimated_decode_days(N as u64, T as u64, 1e9 / rate))
    );
}
