//! **Figure 6**: quACK decoding time (µs) vs. number of missing packets.
//!
//! Paper: n = 1000, t = 20; decoding time "is directly proportional to m,
//! which is at most t", for b ∈ {16, 24, 32}. Zero missing packets decode
//! in "virtually no time". At m = 20, b = 32 the paper reports 61 µs.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin fig6`

use sidecar_bench::{measure_mean, workload, BenchReport, Table};
use sidecar_galois::{Field, Fp16, Fp24, Fp32};
use sidecar_quack::PowerSumQuack;
use std::time::Duration;

const N: usize = 1000;
const T: usize = 20;

fn decode_time<F: Field>(bits: u32, missing: usize, seed: u64) -> Duration {
    let (sent, received) = workload(N, missing, bits, seed);
    let mut sender = PowerSumQuack::<F>::new(T);
    for &id in &sent {
        sender.insert(id);
    }
    let mut receiver = PowerSumQuack::<F>::new(T);
    for &id in &received {
        receiver.insert(id);
    }
    let diff = sender.difference(&receiver);
    // Sanity: decoding finds exactly the dropped packets (identifier
    // collisions may add indeterminates for b=16).
    let check = diff.decode_with_log(&sent).unwrap();
    assert_eq!(check.num_missing(), missing);
    measure_mean(|_| diff.decode_with_log(&sent).unwrap())
}

fn main() {
    println!(
        "Figure 6 reproduction: decoding time (us) for n = {N}, t = {T} \
         vs missing packets m, per identifier width b\n"
    );
    let mut report = BenchReport::new("fig6");
    let mut table = Table::new(&["m", "b=16 (us)", "b=24 (us)", "b=32 (us)"]);
    let mut series32 = Vec::new();
    for m in (0..=T).step_by(2) {
        let d16 = decode_time::<Fp16>(16, m, 0x616);
        let d24 = decode_time::<Fp24>(24, m, 0x624);
        let d32 = decode_time::<Fp32>(32, m, 0x632);
        series32.push((m, d32));
        let ms = m.to_string();
        for (bits, d) in [("16", d16), ("24", d24), ("32", d32)] {
            report.push(
                "decode_time",
                &[("m", &ms), ("b", bits)],
                d.as_nanos() as f64 / 1e3,
                "us",
            );
        }
        table.row(&[
            m.to_string(),
            format!("{:.1}", d16.as_nanos() as f64 / 1e3),
            format!("{:.1}", d24.as_nanos() as f64 / 1e3),
            format!("{:.1}", d32.as_nanos() as f64 / 1e3),
        ]);
    }
    table.print();

    let zero = series32
        .first()
        .expect("fig6 b=32 decode series is empty: no m values were benchmarked")
        .1;
    let full = series32
        .last()
        .expect("fig6 b=32 decode series is empty: no m values were benchmarked")
        .1;
    println!(
        "\nm=0 decodes in {} (paper: 'virtually no time'); m={T} in {} \
         (paper: 61 us on their hardware)",
        sidecar_bench::fmt_duration(zero),
        sidecar_bench::fmt_duration(full),
    );
    report.write_default().expect("write BENCH_fig6.json");
    sidecar_bench::write_metrics_out("fig6");
    sidecar_bench::write_trace_out("fig6");
}
