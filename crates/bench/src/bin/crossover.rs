//! **Ablation (§4.3)**: candidate-plugging vs. polynomial-factoring decode.
//!
//! The paper: "for a small n, such as here, it is more efficient to plug in
//! all candidate roots than to solve the roots directly" (§4.2) and "for
//! large n, we can use the decoding algorithm that depends only on t"
//! (§4.3). This harness sweeps the log size `n` at fixed `t = m = 20` and
//! locates the crossover between the `O(n·m)` plugging decoder and the
//! `O(m² log p)` factoring decoder.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin crossover`

use sidecar_bench::{fmt_duration, measure_mean_with, workload, BenchReport, Table};
use sidecar_quack::Quack32;

const T: usize = 20;

fn main() {
    println!(
        "§4.2/§4.3 ablation: decode by candidate plugging (O(n·m)) vs \
         polynomial factoring (O(m² log p)), t = m = {T}, b = 32\n"
    );
    let mut table = Table::new(&[
        "n (log size)",
        "plugging",
        "factoring (log-indexed)",
        "factoring (ids only)",
        "winner",
    ]);
    let mut report = BenchReport::new("crossover");
    let mut crossover: Option<usize> = None;
    for n in [
        500usize, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    ] {
        let (sent, received) = workload(n, T, 32, 0xC805);
        let mut sender = Quack32::new(T);
        for &id in &sent {
            sender.insert(id);
        }
        let mut receiver = Quack32::new(T);
        for &id in &received {
            receiver.insert(id);
        }
        let diff = sender.difference(&receiver);
        // Verify both agree before timing.
        assert_eq!(
            diff.decode_with_log(&sent).unwrap(),
            diff.decode_with_log_by_factoring(&sent).unwrap()
        );
        let trials = if n >= 50_000 { 20 } else { 60 };
        let plug = measure_mean_with(trials, 5, &mut |_| diff.decode_with_log(&sent).unwrap());
        let fact = measure_mean_with(trials, 5, &mut |_| {
            diff.decode_with_log_by_factoring(&sent).unwrap()
        });
        // The pure §4.3 form: no log at all — O(t² log p) flat in n.
        let ids_only = measure_mean_with(trials, 5, &mut |_| {
            diff.decode_missing_identifiers().unwrap()
        });
        let winner = if plug <= fact.min(ids_only) {
            "plugging"
        } else {
            "factoring"
        };
        if plug > ids_only && crossover.is_none() {
            crossover = Some(n);
        }
        let ns = n.to_string();
        for (mode, d) in [
            ("plugging", plug),
            ("factoring_log", fact),
            ("factoring_ids", ids_only),
        ] {
            report.push(
                "decode_time",
                &[("n", &ns), ("mode", mode)],
                d.as_nanos() as f64 / 1e3,
                "us",
            );
        }
        table.row(&[
            n.to_string(),
            fmt_duration(plug),
            fmt_duration(fact),
            fmt_duration(ids_only),
            winner.into(),
        ]);
    }
    table.print();
    if let Some(n) = crossover {
        report.push("crossover_n", &[], n as f64, "packets");
    }
    report.write_default().expect("write BENCH_crossover.json");
    sidecar_bench::write_metrics_out("crossover");
    sidecar_bench::write_trace_out("crossover");
    match crossover {
        Some(n) => println!(
            "\ncrossover at n ≈ {n}: below it plug candidates (the paper's \
             §4.2 choice at n = 1000), above it factor the locator (§4.3)."
        ),
        None => println!(
            "\nno crossover in range — plugging won throughout on this \
             machine; factoring's advantage appears at larger n."
        ),
    }
}
