//! Causal packet-lifecycle analysis: quACK→retx reaction attribution.
//!
//! Runs a seeded lossy-subpath scenario for each of the three protocols
//! with the flight-recorder ring sized to hold the full run, reconstructs
//! per-packet timelines from the merged event ring, and reports:
//!
//! - **completeness** — every data packet's causal timeline is checked
//!   (`check_causal`), or truncation is reported explicitly;
//! - **loss attribution** — drops bucketed by the (node, iface) segment
//!   that lost them, named per the scenario topology;
//! - **reaction latency** — quACK decode-missing → retransmission, p50/p99
//!   per protocol. The retx proxy reacts in-network (decode → proxy retx on
//!   the same packet); ccd and ack-reduction react end-to-end (decode at
//!   the server → e2e retx of the same data unit under a new packet
//!   number).
//!
//! `exp_reaction --explain <flow>:<seq>` (or `explain <flow>:<seq>`)
//! prints the human-readable timeline of one packet from the seeded run;
//! `--proto retx|ccd|ackred` selects which scenario to reconstruct
//! (default retx). Control datagrams use `ctrl:<flow>:<seq>`.

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::link::LossModel;
use sidecar_obs::{Lifecycle, MetricsRegistry, TraceId};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;

const SEED: u64 = 42;
/// Ring capacity for analysis runs: a full 2 000-packet scenario emits
/// well under 2^20 lifecycle events, so nothing is evicted.
const TRACE_CAP: usize = 1 << 20;

/// 250 µs reaction-latency buckets out to 500 ms, overflow beyond. Fine
/// enough that linear interpolation inside a bucket stays honest for the
/// ms-scale reactions these scenarios produce.
fn latency_bounds() -> Vec<u64> {
    (1..=2_000u64).map(|i| i * 250_000).collect()
}

struct ProtoRun {
    name: &'static str,
    mechanism: &'static str,
    lifecycle: Lifecycle,
    latencies: Vec<u64>,
}

fn run_retx() -> ProtoRun {
    // The §2.3 geometry: clean edges around a 2%-lossy subpath between the
    // proxies. Defaults already model it; only the ring capacity is raised.
    let scenario = RetxScenario {
        trace_capacity: Some(TRACE_CAP),
        ..RetxScenario::default()
    };
    let report = scenario.run_sidecar(SEED);
    let lifecycle = Lifecycle::from_trace(&report.trace);
    let latencies = lifecycle.proxy_reaction_latencies();
    ProtoRun {
        name: "retx",
        mechanism: "in-network (proxy retx)",
        lifecycle,
        latencies,
    }
}

fn run_ccd() -> ProtoRun {
    // The server's quACK consumer mirrors the upstream segment, so the
    // reaction chain (decode-missing → e2e retx) only fires for upstream
    // losses; make that segment lossy on top of the default lossy
    // downstream.
    let mut scenario = CcdScenario {
        trace_capacity: Some(TRACE_CAP),
        ..CcdScenario::default()
    };
    scenario.upstream.loss = LossModel::Bernoulli { p: 0.01 };
    let report = scenario.run_sidecar(SEED);
    let lifecycle = Lifecycle::from_trace(&report.trace);
    let latencies = lifecycle.e2e_reaction_latencies();
    ProtoRun {
        name: "ccd",
        mechanism: "e2e (quACK-informed)",
        lifecycle,
        latencies,
    }
}

fn run_ackred() -> ProtoRun {
    // Same reasoning as ccd: the proxied (quACKed) segment is upstream.
    let mut scenario = AckReductionScenario {
        trace_capacity: Some(TRACE_CAP),
        ..AckReductionScenario::default()
    };
    scenario.upstream.loss = LossModel::Bernoulli { p: 0.01 };
    let report = scenario.run_sidecar(SEED);
    let lifecycle = Lifecycle::from_trace(&report.trace);
    let latencies = lifecycle.e2e_reaction_latencies();
    ProtoRun {
        name: "ackred",
        mechanism: "e2e (quACK-informed)",
        lifecycle,
        latencies,
    }
}

fn run_proto(name: &str) -> ProtoRun {
    match name {
        "retx" => run_retx(),
        "ccd" => run_ccd(),
        "ackred" => run_ackred(),
        other => {
            eprintln!("unknown --proto {other:?} (expected retx, ccd, or ackred)");
            std::process::exit(2);
        }
    }
}

/// Names the directed link behind a (node, iface) drop site for the
/// scenario topologies (linear chains, connected in order).
fn segment_name(proto: &str, node: u32, iface: u32) -> String {
    let chain: &[&str] = match proto {
        "retx" => &["server", "proxy_a", "proxy_b", "client"],
        _ => &["server", "proxy", "client"],
    };
    let n = node as usize;
    // connect(a, b) assigns the next iface on each side, so on interior
    // nodes iface 0 points back toward the server and iface 1 forward
    // toward the client; endpoints only have iface 0.
    let peer = if n == 0 {
        1
    } else if iface == 0 {
        n - 1
    } else {
        n + 1
    };
    match (chain.get(n), chain.get(peer)) {
        (Some(a), Some(b)) => format!("{a}->{b}"),
        _ => format!("node{node}/iface{iface}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let proto = args
        .iter()
        .position(|a| a == "--proto")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "retx".to_string());
    let explain_target = args
        .iter()
        .position(|a| a == "--explain" || a == "explain")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("--explain needs a <flow>:<seq> or ctrl:<flow>:<seq> argument");
                    std::process::exit(2);
                })
                .clone()
        });

    if let Some(target) = explain_target {
        let id = TraceId::parse(&target).unwrap_or_else(|e| {
            eprintln!("bad trace id {target:?}: {e}");
            std::process::exit(2);
        });
        let run = run_proto(&proto);
        println!(
            "# {} scenario, seed {SEED} ({} events across {} timelines)",
            run.name,
            run.lifecycle
                .timelines()
                .map(|t| t.steps.len())
                .sum::<usize>(),
            run.lifecycle.len(),
        );
        print!("{}", run.lifecycle.explain(id));
        return;
    }

    println!("exp_reaction: quACK→retx reaction attribution (seed {SEED})\n");
    let runs = [run_retx(), run_ccd(), run_ackred()];

    let mut report = BenchReport::new("exp_reaction");
    let bounds = latency_bounds();
    let registry = MetricsRegistry::new();
    let names: [&'static str; 3] = ["reaction.retx_ns", "reaction.ccd_ns", "reaction.ackred_ns"];

    // -- completeness -----------------------------------------------------
    println!("## timeline completeness");
    for run in &runs {
        let total = run.lifecycle.data_timelines().count();
        if run.lifecycle.is_complete() {
            match run.lifecycle.check_causal() {
                Ok(()) => {
                    let in_flight = run.lifecycle.in_flight_at_end();
                    let cutoff = if in_flight > 0 {
                        format!(" ({in_flight} on the wire at sim cutoff)")
                    } else {
                        String::new()
                    };
                    println!(
                        "  {:<7} causal timelines complete: {total}/{total} (100%){cutoff}",
                        run.name
                    );
                }
                Err(e) => println!("  {:<7} CAUSAL VIOLATION: {e}", run.name),
            }
        } else {
            println!(
                "  {:<7} ring truncated ({} records evicted): completeness not claimed",
                run.name,
                run.lifecycle.dropped_records()
            );
        }
        report.push(
            "timelines",
            &[("protocol", run.name)],
            total as f64,
            "count",
        );
        report.push(
            "trace_evicted",
            &[("protocol", run.name)],
            run.lifecycle.dropped_records() as f64,
            "count",
        );
        report.push(
            "causal_ok",
            &[("protocol", run.name)],
            (run.lifecycle.is_complete() && run.lifecycle.check_causal().is_ok()) as u64 as f64,
            "bool",
        );
    }

    // -- loss attribution -------------------------------------------------
    println!("\n## drop attribution by subpath segment (data packets)");
    for run in &runs {
        let segments = run.lifecycle.drop_segments();
        if segments.is_empty() {
            println!("  {:<7} no drops recorded", run.name);
        }
        for (&(node, iface), &count) in &segments {
            let segment = segment_name(run.name, node, iface);
            println!("  {:<7} {segment:<18} {count} drops", run.name);
            report.push(
                "drops",
                &[("protocol", run.name), ("segment", &segment)],
                count as f64,
                "count",
            );
        }
    }

    // -- reaction latency -------------------------------------------------
    let mut table = Table::new(&["protocol", "mechanism", "samples", "p50", "p99", "mean"]);
    for (run, name) in runs.iter().zip(names) {
        for &ns in &run.latencies {
            registry.observe(name, &bounds, ns);
        }
    }
    let snap = registry.snapshot();
    for (run, name) in runs.iter().zip(names) {
        let hist = snap.histogram(name);
        let (p50, p99) = hist.map(|h| (h.p50(), h.p99())).unwrap_or((None, None));
        let mean = (!run.latencies.is_empty())
            .then(|| run.latencies.iter().sum::<u64>() as f64 / run.latencies.len() as f64);
        let fmt_ms =
            |v: Option<f64>| v.map_or_else(|| "-".to_string(), |ns| format!("{:.2} ms", ns / 1e6));
        table.row(&[
            run.name.to_string(),
            run.mechanism.to_string(),
            run.latencies.len().to_string(),
            fmt_ms(p50),
            fmt_ms(p99),
            fmt_ms(mean),
        ]);
        report.push(
            "reaction_samples",
            &[("protocol", run.name)],
            run.latencies.len() as f64,
            "count",
        );
        for (stat, value) in [("p50", p50), ("p99", p99), ("mean", mean)] {
            if let Some(ns) = value {
                report.push(
                    "reaction_latency",
                    &[("protocol", run.name), ("stat", stat)],
                    ns,
                    "ns",
                );
            }
        }
    }
    println!("\n## quACK decode-missing → retransmission reaction latency");
    table.print();
    println!(
        "\nhint: `exp_reaction --explain <flow>:<seq> [--proto retx|ccd|ackred]` \
         prints one packet's timeline"
    );

    report.write_default().expect("write bench report");
    sidecar_bench::write_metrics_out("exp_reaction");
    sidecar_bench::write_trace_out("exp_reaction");
}
