//! **Engine scaling**: netsim event throughput, modern timer-wheel engine
//! versus the legacy heap engine, at 1k → 1M concurrent flows.
//!
//! The sidecar story is "one vantage point, many paranoid flows" (§3.3,
//! §4.2): every emulated experiment in this repo stands on the discrete-
//! event engine, so the engine's events/sec at high pending-event counts is
//! the scaling ceiling for the whole evaluation. The workload mirrors that
//! shape: F periodic flows, sharded over sender banks, all funneled through
//! one mid-path forwarding vantage and on across a paper-reference WAN
//! segment (30 ms one way, §4.3). Every flow keeps a timer pending and
//! every packet crosses two hops, so at F flows the queue holds ≈ 5F
//! events — the regime real 10k–1M-flow experiments put the scheduler in.
//!
//! **What the two cells are.** `wheel` is the modern engine in its perf
//! configuration: O(1) calendar-queue scheduling, pooled zero-alloc
//! dispatch, pre-interned hot counters, flight-recorder ring off (a switch
//! this engine added). `heap` is the legacy engine as it shipped, preserved
//! whole behind [`SchedulerKind::Heap`]: O(log n) binary-heap scheduling
//! that moves full event payloads per sift, a fresh action buffer allocated
//! per dispatch, string-keyed (mutex + hash) counter lookups per event, and
//! the always-on ring it had no switch for. Both produce bit-identical
//! event orderings, traces, and metric values — the scheduler-equivalence
//! suite pins that — so the headline isolates cost, not behavior:
//!
//! * **events/sec** — wall-clock dispatch throughput of the steady-state
//!   loop (timer fires + two arrival hops per packet), after a warmup that
//!   reaches the zero-alloc plateau and a full in-flight population.
//! * **wall sec / sim sec** — how much real time one simulated second costs
//!   at each scale (the number an experiment author budgets with).
//! * **events_speedup** — modern over legacy at equal flow count; the CI
//!   perf gate enforces the `flows = 100k ⇒ ≥ 5x` floor on this cell.
//!
//! Flow timers are staggered uniformly across the 10 ms period, so wheel
//! slots fill evenly and the heap sees a steady interleave of near-future
//! inserts — neither backend gets a degenerate best case. Each cell is
//! measured best-of-3 (fresh world per rep) to shed scheduler-independent
//! machine noise.
//!
//! Results go to stdout (table) and `BENCH_exp_simscale.json`
//! (`sidecar-bench/v1`; gated against `bench/baseline.json` by `perf_gate`).
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_simscale`
//! (`--quick` caps the sweep at 10k flows with smaller windows — the CI
//! smoke leg; `--metrics-out` dumps the obs registry as usual).

use sidecar_bench::{calibration_ops_per_sec, BenchReport, Table};
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::node::{Context, IfaceId, Node};
use sidecar_netsim::packet::{FlowId, Packet};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::world::World;
use sidecar_netsim::SchedulerKind;
use std::any::Any;
use std::time::Instant;

/// Pulse-node count: flows are sharded over this many sender nodes so the
/// per-node timer maps stay realistic (one bank serves many flows, not one
/// node per flow).
const BANKS: u32 = 8;
/// Per-flow send period — every flow keeps exactly one timer pending.
const PERIOD: SimDuration = SimDuration::from_millis(10);
/// Bank → vantage access-segment delay.
const ACCESS_DELAY: SimDuration = SimDuration::from_millis(10);
/// Vantage → sink WAN delay: the paper's §4.3 reference segment (60 ms
/// RTT), one way. In-flight packets are pending arrival events, so this is
/// what fills the queue to experiment-realistic depth.
const WAN_DELAY: SimDuration = SimDuration::from_millis(30);
/// Fresh-world reps per cell; the cell reports the fastest.
const REPS: usize = 3;

/// One sender node owning `flows` flows: each flow is an independent
/// periodic timer (token = local flow index) that emits one heap-free
/// 1200-byte packet per fire and re-arms itself.
struct PulseBank {
    first_flow: u64,
    flows: u64,
    total_flows: u64,
    seq: u64,
}

impl Node for PulseBank {
    fn on_start(&mut self, ctx: &mut Context) {
        // Stagger first fires uniformly across one period so the pending
        // set spreads over wheel slots (and heap levels) evenly.
        for i in 0..self.flows {
            let offset = PERIOD.as_nanos() * (self.first_flow + i) / self.total_flows;
            ctx.set_timer_at(SimTime::ZERO + SimDuration::from_nanos(offset + 1), i);
        }
    }

    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        let flow = FlowId((self.first_flow + token) as u32);
        let pkt = Packet::data(flow, self.seq, self.seq * 31 + 7, 1200, ctx.now());
        debug_assert!(pkt.is_heap_free());
        ctx.send(IfaceId(0), pkt);
        self.seq += 1;
        ctx.set_timer_after(PERIOD, token);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The mid-path vantage: forwards every arrival out its WAN interface —
/// the structural seat a sidecar occupies, reduced to pure engine work.
struct Vantage;

impl Node for Vantage {
    fn on_packet(&mut self, _iface: IfaceId, packet: Packet, ctx: &mut Context) {
        ctx.send(IfaceId(0), packet);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Swallows every arrival (the measurement is the engine, not a protocol).
struct Drain;

impl Node for Drain {
    fn on_packet(&mut self, _iface: IfaceId, _packet: Packet, _ctx: &mut Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One measured cell.
struct Cell {
    flows: u64,
    scheduler: SchedulerKind,
    pending: usize,
    events_per_sec: f64,
    wall_per_sim: f64,
}

/// Builds the F-flow two-hop world on the given backend, warms it past the
/// capacity plateau and a full in-flight population, then measures
/// `measure_events` dispatches. Returns (events/sec, wall-per-sim, pending).
fn run_once(flows: u64, scheduler: SchedulerKind, measure_events: u64) -> (f64, f64, usize) {
    let mut w = World::new_with_scheduler(0x51D3_CA1E ^ flows, scheduler);
    if scheduler == SchedulerKind::Wheel {
        // Modern perf configuration: the diagnostics ring off (the legacy
        // engine predates the switch and always paid ring maintenance).
        // Hot counters stay on for both — they are part of the engine.
        w.obs_mut().trace.set_enabled(false);
    }
    let sink = w.add_node(Box::new(Drain));
    let mid = w.add_node(Box::new(Vantage));
    // Link rates are set so serialization never queues: the workload
    // exercises the scheduler, not the drop-tail model.
    let access = LinkConfig {
        rate_bps: 1_000_000_000_000,
        delay: ACCESS_DELAY,
        queue_packets: 1 << 20,
        ..LinkConfig::default()
    };
    let wan = LinkConfig {
        rate_bps: 1_000_000_000_000,
        delay: WAN_DELAY,
        queue_packets: 1 << 20,
        ..LinkConfig::default()
    };
    // Vantage iface 0 = WAN toward the sink (connected first).
    w.connect(mid, sink, wan.clone(), wan);
    let per_bank = flows / BANKS as u64;
    for b in 0..BANKS as u64 {
        let extra = if b == BANKS as u64 - 1 {
            flows - per_bank * BANKS as u64
        } else {
            0
        };
        let bank = w.add_node(Box::new(PulseBank {
            first_flow: b * per_bank,
            flows: per_bank + extra,
            total_flows: flows,
            seq: 0,
        }));
        w.connect(bank, mid, access.clone(), access.clone());
    }

    // Warmup: two full periods (every timer has fired and re-armed, slab /
    // slot / pool capacities at steady state) plus both hop delays (the
    // in-flight arrival population has reached its standing depth).
    w.run_until(SimTime::ZERO + PERIOD + PERIOD + ACCESS_DELAY + WAN_DELAY + PERIOD);
    let warm_events = w.events_processed();
    let warm_now = w.now();
    let pending = w.events_pending();

    let start = Instant::now();
    while w.events_processed() - warm_events < measure_events && w.step() {}
    let wall = start.elapsed().as_secs_f64();
    let events = w.events_processed() - warm_events;
    let sim = (w.now() - warm_now).as_nanos() as f64 / 1e9;
    assert!(events >= measure_events, "workload ran dry");
    (
        events as f64 / wall.max(1e-12),
        wall / sim.max(1e-12),
        pending,
    )
}

/// Best-of-[`REPS`] wrapper around [`run_once`].
fn run_cell(flows: u64, scheduler: SchedulerKind, measure_events: u64) -> Cell {
    let mut best: Option<(f64, f64, usize)> = None;
    for _ in 0..REPS {
        let r = run_once(flows, scheduler, measure_events);
        if best.is_none_or(|b| r.0 > b.0) {
            best = Some(r);
        }
    }
    let (events_per_sec, wall_per_sim, pending) = best.expect("at least one rep");
    Cell {
        flows,
        scheduler,
        pending,
        events_per_sec,
        wall_per_sim,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--flows a,b,c` overrides the sweep (ad-hoc profiling / CI shaping).
    let flow_counts: Vec<u64> = match args.iter().position(|a| a == "--flows") {
        Some(pos) => args
            .get(pos + 1)
            .expect("--flows needs a comma-separated list")
            .split(',')
            .map(|s| s.parse().expect("--flows values must be integers"))
            .collect(),
        None if quick => vec![1_000, 10_000],
        None => vec![1_000, 10_000, 100_000, 1_000_000],
    };
    println!(
        "Engine scaling: events/sec, modern wheel engine vs legacy heap engine{}\n",
        if quick { " (quick)" } else { "" }
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &flows in &flow_counts {
        // At least one full re-fire of every flow (3 events per fire:
        // timer + two arrival hops), with a floor so small sweeps stay
        // measurable.
        let floor = if quick { 200_000 } else { 1_000_000 };
        let measure_events = (6 * flows).max(floor);
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            cells.push(run_cell(flows, scheduler, measure_events));
        }
    }

    let mut report = BenchReport::new("exp_simscale");
    report.push("calibration", &[], calibration_ops_per_sec(), "ops/s");

    let mut table = Table::new(&[
        "flows",
        "engine",
        "pending",
        "events/sec",
        "wall s / sim s",
        "vs legacy",
    ]);
    for cell in &cells {
        let heap = cells
            .iter()
            .find(|c| c.flows == cell.flows && c.scheduler == SchedulerKind::Heap)
            .expect("legacy cell exists");
        let speedup = cell.events_per_sec / heap.events_per_sec;
        let sched = match cell.scheduler {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        };
        table.row(&[
            cell.flows.to_string(),
            sched.to_string(),
            cell.pending.to_string(),
            format!("{:.2e}", cell.events_per_sec),
            format!("{:.4}", cell.wall_per_sim),
            format!("{speedup:.2}x"),
        ]);
        let flows = cell.flows.to_string();
        report.push(
            "events_per_sec",
            &[("flows", &flows), ("scheduler", sched)],
            cell.events_per_sec,
            "ops/s",
        );
        report.push(
            "wall_sec_per_sim_sec",
            &[("flows", &flows), ("scheduler", sched)],
            cell.wall_per_sim,
            "s/s",
        );
        if cell.scheduler == SchedulerKind::Wheel {
            report.push("events_speedup", &[("flows", &flows)], speedup, "x");
        }
    }
    table.print();

    if !quick {
        let headline = report
            .get("events_speedup|flows=100000")
            .expect("headline metric present")
            .value;
        println!(
            "\nheadline: 100k-flow events/sec speedup {headline:.2}x over the \
             legacy heap engine (acceptance floor: 5.00x)"
        );
    }

    report
        .write_default()
        .expect("write BENCH_exp_simscale.json");
    sidecar_bench::write_metrics_out("exp_simscale");
    sidecar_bench::write_trace_out("exp_simscale");
}
