//! **Extension (§5)**: sharing and the congestion-masking hazard.
//!
//! Two identical NewReno flows share a lossy 20 Mbit/s bottleneck, with and
//! without an in-network-retransmission pair bracketing it. The sidecar
//! proxies quACK and recover *every* drop on the subpath — including
//! **congestive queue drops**, which NewReno relies on as its only
//! congestion signal. Expected outcome, and a deployment caveat the PEP
//! literature knows well:
//!
//! * when random loss dominates (higher loss, slower flows, empty queue),
//!   in-network recovery helps both flows and fairness is preserved;
//! * when the bottleneck queue is the binding constraint (low random
//!   loss, fast flows), recovering queue drops *hides congestion*, the
//!   senders overrun the queue, and completion times and fairness degrade.
//!
//! A production sidecar should avoid retransmitting drops from its own
//! egress queue (it can observe local backpressure even though it cannot
//! parse packets); quantifying the hazard is this experiment's point.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_fairness`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::IfaceId;
use sidecar_netsim::router::FlowRouter;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{ReceiverConfig, ReceiverNode, SenderConfig, SenderNode};
use sidecar_netsim::{FlowId, World};
use sidecar_proto::protocols::retx::{ReceiverSideProxy, SenderSideProxy};
use sidecar_proto::{QuackFrequency, SidecarConfig, SupervisionConfig};

const TOTAL: u64 = 1_200;

/// Builds the shared-bottleneck world; `assist` brackets the bottleneck
/// with the in-network-retransmission proxy pair.
fn run(seed: u64, assist: bool, loss: f64) -> (f64, f64) {
    let f1 = FlowId(1);
    let f2 = FlowId(2);
    let mut w = World::new(seed);

    let client_cfg = |flow| ReceiverConfig {
        flow,
        ack_every: 32,
        max_ack_delay: SimDuration::from_millis(50),
        immediate_on_gap: false,
        ..ReceiverConfig::default()
    };
    let sender_cfg = |flow, id_seed| SenderConfig {
        flow,
        total_packets: Some(TOTAL),
        id_seed,
        peer_max_ack_delay: SimDuration::from_millis(100),
        ..SenderConfig::default()
    };
    let s1 = w.add_node(SenderNode::boxed(sender_cfg(f1, seed ^ 1)));
    let s2 = w.add_node(SenderNode::boxed(sender_cfg(f2, seed ^ 2)));

    let mut mux = FlowRouter::new();
    mux.add_duplex_route(f1, IfaceId(0), IfaceId(2));
    mux.add_duplex_route(f2, IfaceId(1), IfaceId(2));
    let mux = w.add_node(mux.boxed());
    let mut demux = FlowRouter::new();
    demux.add_duplex_route(f1, IfaceId(0), IfaceId(1));
    demux.add_duplex_route(f2, IfaceId(0), IfaceId(2));
    let demux = w.add_node(demux.boxed());

    let r1 = w.add_node(ReceiverNode::boxed(client_cfg(f1)));
    let r2 = w.add_node(ReceiverNode::boxed(client_cfg(f2)));

    let edge = LinkConfig {
        rate_bps: 1_000_000_000,
        delay: SimDuration::from_millis(20),
        ..LinkConfig::default()
    };
    let bottleneck = LinkConfig {
        rate_bps: 20_000_000,
        delay: SimDuration::from_millis(5),
        loss: LossModel::Bernoulli { p: loss },
        queue_packets: 256,
        ..LinkConfig::default()
    };

    w.connect(s1, mux, edge.clone(), edge.clone());
    w.connect(s2, mux, edge.clone(), edge.clone());
    if assist {
        // The proxies bracket the bottleneck and quACK *all* data packets
        // crossing it — recovery is a subpath service, applied to both
        // flows (and, hazardously, to congestive queue drops).
        let cfg = SidecarConfig {
            frequency: QuackFrequency::Adaptive(SimDuration::from_millis(5)),
            reorder_grace: SimDuration::from_millis(3),
            ..SidecarConfig::paper_default()
        };
        let subpath_rtt = SimDuration::from_millis(12);
        let a = w.add_node(Box::new(SenderSideProxy::new(
            cfg,
            subpath_rtt,
            4_096,
            SupervisionConfig::default(),
        )));
        let b = w.add_node(Box::new(ReceiverSideProxy::new(cfg)));
        w.connect(mux, a, edge.clone(), edge.clone());
        w.connect(a, b, bottleneck.clone(), bottleneck);
        w.connect(b, demux, edge.clone(), edge.clone());
    } else {
        w.connect(mux, demux, bottleneck.clone(), bottleneck);
    }
    w.connect(demux, r1, edge.clone(), edge.clone());
    w.connect(demux, r2, edge.clone(), edge);

    w.run_until(SimTime::ZERO + SimDuration::from_secs(180));
    let t = |n| {
        w.node_as::<SenderNode>(n)
            .stats()
            .completed_at
            .map_or(f64::INFINITY, |t| t.as_secs_f64())
    };
    (t(s1), t(s2))
}

fn main() {
    println!(
        "sharing extension: two NewReno flows share a 20 Mbit/s lossy \
         bottleneck; the sidecar pair (when present) recovers ALL subpath \
         drops — including congestive queue drops\n"
    );
    let mut report = BenchReport::new("exp_fairness");
    let mut table = Table::new(&[
        "loss",
        "variant",
        "flow1 FCT (s)",
        "flow2 FCT (s)",
        "max/min ratio",
    ]);
    for loss in [0.01f64, 0.03] {
        for (label, assist) in [("plain", false), ("sidecar on bottleneck", true)] {
            let seeds = [4u64, 5, 6];
            let mut t1 = 0.0;
            let mut t2 = 0.0;
            for &s in &seeds {
                let (a, b) = run(s, assist, loss);
                t1 += a;
                t2 += b;
            }
            let k = seeds.len() as f64;
            let (t1, t2) = (t1 / k, t2 / k);
            let ls = format!("{loss}");
            let variant = if assist { "sidecar" } else { "plain" };
            let params = [("loss", ls.as_str()), ("variant", variant)];
            report.push("flow1_fct", &params, t1, "s");
            report.push("flow2_fct", &params, t2, "s");
            report.push(
                "fairness_ratio",
                &params,
                t1.max(t2) / t1.min(t2).max(1e-9),
                "x",
            );
            table.row(&[
                format!("{:.0}%", loss * 100.0),
                label.into(),
                format!("{t1:.2}"),
                format!("{t2:.2}"),
                format!("{:.2}", t1.max(t2) / t1.min(t2).max(1e-9)),
            ]);
        }
    }
    table.print();
    report
        .write_default()
        .expect("write BENCH_exp_fairness.json");
    sidecar_bench::write_metrics_out("exp_fairness");
    sidecar_bench::write_trace_out("exp_fairness");
    println!(
        "\nreading: at 3% random loss the sidecar helps both flows and \
         preserves fairness; at 1% the queue is the real constraint and \
         recovering its drops hides congestion from NewReno — completion \
         times and fairness degrade. Moral (a §5 research-agenda answer): \
         in-network retransmission must exempt its own egress-queue drops."
    );
}
