//! **Report validator**: checks every `BENCH_*.json` in the given paths
//! against the `sidecar-bench/v1` schema and exits non-zero on the first
//! malformed report.
//!
//! CI runs this after the bench legs so a bench binary that starts
//! emitting broken JSON (wrong schema tag, non-finite values, duplicate
//! metric keys, name/filename mismatch) fails the build *before* the
//! artifact is uploaded or a baseline refresh copies the corruption in.
//!
//! Known reports additionally carry **required cells**: `exp_manyflow`
//! must contain its e2e, certified-1k, and flow-engine-sweep metrics (the
//! cells both `--quick` and full runs emit), and — whenever any 100k-flow
//! sweep cell is present (a full run) — the
//! `manyflow_insert_speedup|flows=100000` perf-gate headline. A refactor
//! that silently stops emitting the gated cell fails here, not as a
//! quietly-absent "baseline only" row in the perf gate.
//!
//! Time-series artifacts (`BENCH_*_timeseries.txt`, emitted by benches
//! accepting `--timeseries-out`) are validated alongside the JSON: the
//! file must parse as the canonical [`sidecar_obs::TimeSeries`] text
//! format and pass [`TimeSeries::validate`] — strictly increasing
//! timestamps, finite values, no duplicate series keys within a point.
//!
//! Usage: `validate_reports [path ...]`
//!
//! Each path may be a report file or a directory (scanned non-recursively
//! for `BENCH_*.json` and `BENCH_*_timeseries.txt`). With no arguments,
//! scans the current directory. It is an error for a directory scan to
//! find nothing — a CI leg that validates zero reports is misconfigured,
//! not passing.
//!
//! [`TimeSeries::validate`]: sidecar_obs::TimeSeries::validate
//!
//! Exit status: 0 = all reports valid, 1 = at least one invalid (or none
//! found), 2 = usage/IO error.

use sidecar_bench::BenchReport;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Schema checks beyond what [`BenchReport::parse`] enforces: the parser
/// guarantees structure; this guarantees the report is *usable* by the
/// perf gate and baseline tooling.
fn validate(path: &Path, report: &BenchReport) -> Vec<String> {
    let mut errors = Vec::new();
    if report.name.is_empty() {
        errors.push("empty report name".into());
    }
    // The report file must be named after the report, or `perf_gate` /
    // baseline refreshes will silently read the wrong bench's numbers.
    let expected = format!("BENCH_{}.json", report.name);
    if path.file_name().and_then(|f| f.to_str()) != Some(expected.as_str()) {
        errors.push(format!(
            "file name does not match report name {:?} (expected {expected})",
            report.name
        ));
    }
    let mut seen = BTreeSet::new();
    for metric in &report.metrics {
        let key = metric.key();
        if metric.name.is_empty() {
            errors.push("metric with empty name".into());
        }
        if metric.unit.is_empty() {
            errors.push(format!("{key}: empty unit"));
        }
        if !metric.value.is_finite() {
            errors.push(format!("{key}: non-finite value {}", metric.value));
        }
        if !seen.insert(key.clone()) {
            errors.push(format!("{key}: duplicate metric key"));
        }
    }
    for cell in required_cells(&report.name, &seen) {
        if !seen.contains(cell.as_str()) {
            errors.push(format!("{cell}: required cell missing"));
        }
    }
    errors
}

/// Cells a known report must always carry (keyed as [`Metric::key`],
/// name + sorted params). Unknown report names require nothing.
///
/// [`Metric::key`]: sidecar_bench::Metric::key
fn required_cells(report: &str, present: &BTreeSet<String>) -> Vec<String> {
    let mut cells = Vec::new();
    if report == "exp_manyflow" {
        for proto in ["retx", "ackred", "ccd"] {
            // One e2e leg per protocol…
            cells.push(format!("completed|flows=1|protocol={proto}"));
            // …and the 1k flow-engine sweep cells (quick and full runs).
            for name in [
                "manyflow_inserts_per_sec",
                "manyflow_insert_speedup",
                "manyflow_bytes_per_flow",
                "manyflow_overcommit_evictions",
            ] {
                cells.push(format!("{name}|flows=1000|proto={proto}"));
            }
        }
        // The causally certified 1k leg.
        cells.push("certified_completed|flows=1000".into());
        cells.push("certified_lifecycles|flows=1000".into());
        // `ops/s` cells are gated against the calibration-rescaled
        // baseline, so the report must carry its own calibration cell.
        cells.push("calibration".into());
        // Full runs (any 100k sweep cell present) must emit the perf-gate
        // headline; `--quick` runs stop at 10k and owe nothing here.
        if present
            .iter()
            .any(|k| k.starts_with("manyflow_inserts_per_sec|flows=100000"))
        {
            cells.push("manyflow_insert_speedup|flows=100000".into());
        }
    }
    if report == "exp_obs_overhead" {
        // The telemetry-cost report must always carry the gated headroom
        // headline and its calibration cell — a refactor that stops
        // emitting the gate's input fails here, not as a silent
        // "baseline only" row.
        for name in [
            "calibration",
            "obs_overhead_headroom",
            "obs_overhead_per_packet",
            "scoreboard_record",
            "sampler_tick",
        ] {
            cells.push(name.into());
        }
    }
    if report == "exp_live" {
        // The live-vs-netsim overhead comparison plus the certification
        // bit: a run that cannot certify its flight recorder (or never
        // measured one of the two hosts) is not a valid report.
        for name in [
            "calibration",
            "live_ns_per_packet",
            "netsim_ns_per_packet",
            "live_overhead_ratio",
            "certified",
        ] {
            cells.push(name.into());
        }
    }
    cells
}

/// Whether a file name is a time-series artifact rather than a JSON
/// report.
fn is_timeseries(path: &Path) -> bool {
    path.file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| f.starts_with("BENCH_") && f.ends_with("_timeseries.txt"))
}

/// Validates one `BENCH_*_timeseries.txt` artifact: parse roundtrip plus
/// the schema checks (`TimeSeries::validate`). An *empty* series is legal
/// — a sampled run shorter than one interval has no windows — but an
/// unreadable or malformed file is not.
fn validate_timeseries(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let series = sidecar_obs::TimeSeries::parse(&text)?;
    series.validate()?;
    Ok(series.len())
}

/// Expands a CLI path into report files: files pass through, directories
/// are scanned (one level) for `BENCH_*.json` and
/// `BENCH_*_timeseries.txt`.
fn expand(path: &Path) -> std::io::Result<Vec<PathBuf>> {
    if !path.is_dir() {
        return Ok(vec![path.to_path_buf()]);
    }
    let mut found: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with("BENCH_") && f.ends_with(".json"))
                || is_timeseries(p)
        })
        .collect();
    found.sort();
    Ok(found)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        match expand(root) {
            Ok(mut f) => files.append(&mut f),
            Err(e) => {
                eprintln!("validate_reports: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if files.is_empty() {
        eprintln!("validate_reports: no BENCH_*.json found under the given paths");
        return ExitCode::FAILURE;
    }

    let mut bad = 0usize;
    let mut metrics_total = 0usize;
    for path in &files {
        if is_timeseries(path) {
            match validate_timeseries(path) {
                Ok(points) => {
                    println!("  ok   {} ({points} sample points)", path.display());
                }
                Err(e) => {
                    bad += 1;
                    println!("  FAIL {}", path.display());
                    println!("         {e}");
                }
            }
            continue;
        }
        match BenchReport::read(path) {
            Ok(report) => {
                let errors = validate(path, &report);
                if errors.is_empty() {
                    println!(
                        "  ok   {} ({} metrics)",
                        path.display(),
                        report.metrics.len()
                    );
                    metrics_total += report.metrics.len();
                } else {
                    bad += 1;
                    println!("  FAIL {}", path.display());
                    for e in &errors {
                        println!("         {e}");
                    }
                }
            }
            Err(e) => {
                bad += 1;
                println!("  FAIL {}", path.display());
                println!("         {e}");
            }
        }
    }

    if bad > 0 {
        println!("validate_reports: {bad}/{} report(s) invalid", files.len());
        return ExitCode::FAILURE;
    }
    println!(
        "validate_reports: {} report(s) valid, {metrics_total} metrics total",
        files.len()
    );
    ExitCode::SUCCESS
}
