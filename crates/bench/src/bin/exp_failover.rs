//! **Failure-transparency experiment**: what does a broken sidecar cost?
//!
//! The paper's deployability argument (§1) is that sidecar protocols are
//! strictly opportunistic: "hosts can take advantage of them when they are
//! available, while remaining completely functional when they are not."
//! This experiment breaks the sidecar path mid-transfer in three ways —
//! a control blackout (session dead, data path intact), a proxy
//! crash/restart (volatile sidecar state lost), and a corrupted control
//! channel (every sidecar datagram takes random bit flips) — and compares
//! each protocol's goodput against a no-sidecar baseline twin running under
//! the *same* lowered fault script.
//!
//! Expected shape: goodput ratio ≈ 1.0 everywhere (within the 10%
//! transparency bound), ≥ 1 degradation whenever the fault outlives the
//! liveness timeout, and recoveries after crash/restart faults heal.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_failover`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::protocols::{FaultScript, ScenarioReport};

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn faults() -> Vec<(&'static str, FaultScript)> {
    vec![
        ("none", FaultScript::default()),
        (
            "blackout",
            FaultScript {
                fault_seed: 7,
                drop_control: Some((at(50), at(600_000))),
                ..FaultScript::default()
            },
        ),
        (
            "crash 250-750ms",
            FaultScript {
                fault_seed: 3,
                proxy_crash: Some((at(250), at(750))),
                ..FaultScript::default()
            },
        ),
        (
            "corrupt ≤6 bits",
            FaultScript {
                fault_seed: 21,
                corrupt_control: Some((6, at(0), at(600_000))),
                ..FaultScript::default()
            },
        ),
    ]
}

const SEEDS: [u64; 3] = [11, 22, 33];

/// Averages (sidecar goodput, baseline goodput, degradations, recoveries)
/// over the seeds.
fn average(runs: impl Fn(u64) -> (ScenarioReport, ScenarioReport)) -> (f64, f64, f64, f64) {
    let mut side_bps = 0.0;
    let mut base_bps = 0.0;
    let mut degr = 0u64;
    let mut recov = 0u64;
    for &seed in &SEEDS {
        let (side, base) = runs(seed);
        assert!(
            side.completion.is_some() && base.completion.is_some(),
            "faulted run did not complete (seed {seed}): {side:?} / {base:?}"
        );
        side_bps += side.goodput_bps.unwrap_or(0.0);
        base_bps += base.goodput_bps.unwrap_or(0.0);
        degr += side.degradations;
        recov += side.recoveries;
    }
    let k = SEEDS.len() as f64;
    (
        side_bps / k,
        base_bps / k,
        degr as f64 / k,
        recov as f64 / k,
    )
}

fn row(
    table: &mut Table,
    report: &mut BenchReport,
    protocol: &str,
    fault: &str,
    avg: (f64, f64, f64, f64),
) {
    let (side, base, degr, recov) = avg;
    table.row(&[
        protocol.into(),
        fault.into(),
        format!("{:.2}", side / 1e6),
        format!("{:.2}", base / 1e6),
        format!("{:.3}", side / base),
        format!("{degr:.1}"),
        format!("{recov:.1}"),
    ]);
    let fault_key = fault.replace(' ', "_");
    let params = [("protocol", protocol), ("fault", fault_key.as_str())];
    report.push("sidecar_goodput", &params, side, "bps");
    report.push("baseline_goodput", &params, base, "bps");
    report.push("goodput_ratio", &params, side / base, "x");
    report.push("degradations", &params, degr, "count");
    report.push("recoveries", &params, recov, "count");
}

fn main() {
    println!(
        "failure transparency: faulted sidecar vs faulted no-sidecar twin\n\
         (same deterministic fault script lowered onto both runs; goodput\n\
         averaged over seeds {SEEDS:?})\n"
    );
    let mut report = BenchReport::new("exp_failover");
    let mut table = Table::new(&[
        "protocol",
        "fault",
        "sidecar (Mbit/s)",
        "baseline (Mbit/s)",
        "ratio",
        "degr/run",
        "recov/run",
    ]);

    let retx = RetxScenario {
        total_packets: 1_200,
        ..RetxScenario::default()
    };
    for (name, script) in faults() {
        let avg = average(|seed| {
            (
                retx.run_sidecar_faulted(seed, &script),
                retx.run_baseline_faulted(seed, &script),
            )
        });
        row(&mut table, &mut report, "retx", name, avg);
    }

    let ackred = AckReductionScenario {
        total_packets: 1_200,
        ..AckReductionScenario::default()
    };
    for (name, script) in faults() {
        // Degradation swaps the server back to e2e control but cannot
        // reconfigure the remote client's ACK cadence, so the honest twin
        // keeps the reduced cadence.
        let avg = average(|seed| {
            (
                ackred.run_sidecar_faulted(seed, &script),
                ackred.run_baseline_faulted(seed, ackred.reduced_ack_every, &script),
            )
        });
        row(&mut table, &mut report, "ack-reduction", name, avg);
    }

    let ccd = CcdScenario {
        total_packets: 10_000,
        ..CcdScenario::default()
    };
    for (name, script) in faults() {
        let avg = average(|seed| {
            (
                ccd.run_sidecar_faulted(seed, &script),
                ccd.run_baseline_faulted(seed, &script),
            )
        });
        row(&mut table, &mut report, "ccd", name, avg);
    }

    table.print();
    report
        .write_default()
        .expect("write BENCH_exp_failover.json");
    sidecar_bench::write_metrics_out("exp_failover");
    sidecar_bench::write_trace_out("exp_failover");
    // `--timeseries-out [path]`: re-run the clean retx scenario at the
    // first seed with a 500 ms simulator-clock sampler attached and
    // archive the windowed series (deterministic, so the artifact is
    // byte-stable across machines; `validate_reports` schema-checks it).
    if std::env::args().any(|a| a == "--timeseries-out") {
        let sampled = RetxScenario {
            total_packets: 1_200,
            sample_interval: Some(SimDuration::from_millis(500)),
            ..RetxScenario::default()
        };
        let run = sampled.run_sidecar(SEEDS[0]);
        sidecar_bench::write_timeseries_out("exp_failover", &run.timeseries);
    }
    println!(
        "\nexpected shape: under 'none' the sidecar ratio reflects each\n\
         protocol's ordinary win; under every fault the ratio stays near or\n\
         above 0.9 — the supervisor detects the dead/garbled session and\n\
         falls back to end-to-end behavior, so a broken sidecar is never\n\
         materially worse than no sidecar. Crash rows also show recoveries:\n\
         the restarted proxy re-handshakes and re-enables enhancement."
    );
}
