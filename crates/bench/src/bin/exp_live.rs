//! **Live datapath**: per-packet host overhead of the real-socket driver
//! versus the simulator's hot path, for the *same* §2.3 in-network
//! retransmission chain.
//!
//! The tentpole claim behind `crates/live` is that the protocol state
//! machines are host-agnostic: `SenderNode → SenderSideProxy → lossy
//! segment → ReceiverSideProxy → ReceiverNode` runs unmodified over
//! loopback UDP sockets or the deterministic simulator. This harness
//! quantifies what the live host costs per packet on top of that shared
//! logic:
//!
//! * **live_ns_per_packet** — wall nanoseconds spent inside node callbacks
//!   and action application on the [`LiveDriver`] (its `DriverStats`
//!   separates compute from socket waits), divided by datagrams delivered
//!   into nodes. Socket blocking, kernel copies, and reader-thread time
//!   are deliberately excluded: this is the dispatch-loop overhead a
//!   deployment pays per packet, not the link's latency.
//! * **netsim_ns_per_packet** — wall time of the equivalent `World` run
//!   (virtual time never sleeps, so the whole run is compute) divided by
//!   `hop_deliver` events, the same "packet handed to a node" denominator.
//! * **live_overhead_ratio** — the former over the latter.
//! * **certified** — 1.0 iff every live run's flight recorder passed the
//!   causal lifecycle check (`Lifecycle::check_causal`), the same
//!   certification the loopback integration suite gates on.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_live`
//! (`--quick` shrinks the transfer and skips repetitions for CI smoke).

use sidecar_bench::{calibration_ops_per_sec, BenchReport, Table};
use sidecar_live::{loopback_pair, LiveDriver};
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::node::{IfaceId, NodeId};
use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_netsim::transport::{
    CcAlgorithm, ReceiverConfig, ReceiverNode, SenderConfig, SenderNode,
};
use sidecar_netsim::{Driver, World};
use sidecar_obs::Lifecycle;
use sidecar_proto::config::{QuackFrequency, SidecarConfig, SupervisionConfig};
use sidecar_proto::protocols::retx::{ReceiverSideProxy, SenderSideProxy};
use std::time::Instant;

/// Every 8th data packet on the subpath is dropped (live: deterministic
/// egress policy; netsim: Bernoulli at the same rate), so both hosts do
/// real recovery work — quACK emission, decode, proxy retransmission.
const DROP_EVERY: u64 = 8;

fn sidecar_cfg() -> SidecarConfig {
    SidecarConfig {
        threshold: 64,
        frequency: QuackFrequency::Adaptive(SimDuration::from_millis(3)),
        reorder_grace: SimDuration::from_millis(2),
        ..SidecarConfig::paper_default()
    }
}

fn sender_cfg(seed: u64, total: u64) -> SenderConfig {
    SenderConfig {
        flow: FlowId(1),
        total_packets: Some(total),
        cc: CcAlgorithm::NewReno,
        id_seed: seed ^ 0xA5A5,
        peer_max_ack_delay: SimDuration::from_millis(60),
        ..SenderConfig::default()
    }
}

fn receiver_cfg() -> ReceiverConfig {
    ReceiverConfig {
        ack_every: 8,
        max_ack_delay: SimDuration::from_millis(20),
        immediate_on_gap: false,
        ..ReceiverConfig::default()
    }
}

struct LiveRun {
    ns_per_packet: f64,
    packets_in: u64,
    certified: bool,
    certify_err: Option<String>,
    delivered: u64,
    proxy_retx: u64,
}

/// The loopback chain from `crates/live/tests/loopback.rs`, instrumented
/// for per-packet dispatch cost instead of pass/fail.
fn run_live(seed: u64, total: u64) -> LiveRun {
    let mut driver = LiveDriver::new(seed);
    driver.set_trace_capacity(1 << 18);

    let server = driver.install(Box::new(SenderNode::new(sender_cfg(seed, total))));
    let proxy_a = driver.install(Box::new(SenderSideProxy::new(
        sidecar_cfg(),
        SimDuration::from_millis(4),
        4_096,
        SupervisionConfig::default(),
    )));
    let proxy_b = driver.install(Box::new(ReceiverSideProxy::new(sidecar_cfg())));
    let client = driver.install(Box::new(ReceiverNode::new(receiver_cfg())));

    attach_link(&mut driver, server, IfaceId(0), proxy_a, IfaceId(0));
    attach_link(&mut driver, proxy_a, IfaceId(1), proxy_b, IfaceId(0));
    attach_link(&mut driver, proxy_b, IfaceId(1), client, IfaceId(0));
    driver.set_egress_loss(proxy_a, IfaceId(1), DROP_EVERY);

    let slice = SimDuration::from_millis(50);
    let mut deadline = SimTime::ZERO;
    for _ in 0..400 {
        deadline = driver.now().max(deadline) + slice;
        driver.run_until(deadline);
        let sender: &SenderNode = (&driver as &dyn Driver).node_as(server);
        if sender.core().is_complete() {
            break;
        }
    }

    let d = &driver as &dyn Driver;
    let receiver: &ReceiverNode = d.node_as(client);
    let proxy: &SenderSideProxy = d.node_as(proxy_a);
    let delivered = receiver.stats().unique_units;
    let proxy_retx = proxy.retransmitted;
    let certify = Lifecycle::from_trace(&driver.obs().trace).check_causal();
    let stats = driver.stats();
    LiveRun {
        ns_per_packet: stats.dispatch_ns as f64 / stats.packets_in.max(1) as f64,
        packets_in: stats.packets_in,
        certified: certify.is_ok(),
        certify_err: certify.err(),
        delivered,
        proxy_retx,
    }
}

/// Binds a loopback socket pair and attaches one end to each node.
fn attach_link(driver: &mut LiveDriver, a: NodeId, a_iface: IfaceId, b: NodeId, b_iface: IfaceId) {
    let (sock_a, sock_b) = loopback_pair().expect("bind loopback pair");
    let a_peer = sock_b.local_addr().expect("local addr");
    let b_peer = sock_a.local_addr().expect("local addr");
    driver
        .attach_socket(a, a_iface, sock_a, a_peer)
        .expect("attach");
    driver
        .attach_socket(b, b_iface, sock_b, b_peer)
        .expect("attach");
}

struct SimRun {
    ns_per_packet: f64,
    delivers: usize,
    delivered: u64,
}

/// The same four-node chain on the simulator: fast edges, a lossy subpath
/// at the live run's drop rate, and wall-clock timing of `run_until`.
fn run_netsim(seed: u64, total: u64) -> SimRun {
    let mut w = World::new(seed);
    w.obs_mut().trace = sidecar_obs::EventTrace::with_capacity(1 << 21);

    let server = w.add_node(SenderNode::boxed(sender_cfg(seed, total)));
    let proxy_a = w.add_node(Box::new(SenderSideProxy::new(
        sidecar_cfg(),
        SimDuration::from_millis(4),
        4_096,
        SupervisionConfig::default(),
    )));
    let proxy_b = w.add_node(Box::new(ReceiverSideProxy::new(sidecar_cfg())));
    let client = w.add_node(ReceiverNode::boxed(receiver_cfg()));

    let edge = LinkConfig {
        rate_bps: 1_000_000_000,
        delay: SimDuration::from_micros(200),
        ..LinkConfig::default()
    };
    let subpath = LinkConfig {
        rate_bps: 1_000_000_000,
        delay: SimDuration::from_millis(2),
        loss: LossModel::Bernoulli {
            p: 1.0 / DROP_EVERY as f64,
        },
        ..LinkConfig::default()
    };
    w.connect(server, proxy_a, edge.clone(), edge.clone());
    w.connect(proxy_a, proxy_b, subpath.clone(), subpath);
    w.connect(proxy_b, client, edge.clone(), edge);

    let mut elapsed_ns = 0u128;
    let mut deadline = SimTime::ZERO;
    for _ in 0..120 {
        deadline += SimDuration::from_millis(500);
        let t0 = Instant::now();
        w.run_until(deadline);
        elapsed_ns += t0.elapsed().as_nanos();
        if w.node_as::<SenderNode>(server).core().is_complete() {
            break;
        }
    }

    let delivers = w.obs().trace.count_kind("hop_deliver");
    SimRun {
        ns_per_packet: elapsed_ns as f64 / delivers.max(1) as f64,
        delivers,
        delivered: w.node_as::<ReceiverNode>(client).stats().unique_units,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let total: u64 = if quick { 200 } else { 600 };
    let reps = if quick { 1 } else { 3 };

    println!(
        "live datapath overhead: the retx chain on real loopback sockets \
         vs the simulator ({total} packets, 1-in-{DROP_EVERY} subpath loss, \
         {reps} rep(s))\n"
    );

    let mut table = Table::new(&[
        "host",
        "rep",
        "packets",
        "delivered",
        "ns/packet",
        "certified",
    ]);
    let mut live_best = f64::INFINITY;
    let mut all_certified = true;
    for rep in 0..reps {
        let run = run_live(11 + rep, total);
        assert_eq!(
            run.delivered, total,
            "live rep {rep} lost data units (certify: {:?})",
            run.certify_err
        );
        assert!(run.proxy_retx > 0, "live rep {rep}: sidecar never repaired");
        all_certified &= run.certified;
        live_best = live_best.min(run.ns_per_packet);
        table.row(&[
            "live".into(),
            rep.to_string(),
            run.packets_in.to_string(),
            run.delivered.to_string(),
            format!("{:.0}", run.ns_per_packet),
            run.certified.to_string(),
        ]);
    }

    let mut sim_best = f64::INFINITY;
    for rep in 0..reps {
        let run = run_netsim(11 + rep, total);
        assert_eq!(run.delivered, total, "netsim rep {rep} lost data units");
        sim_best = sim_best.min(run.ns_per_packet);
        table.row(&[
            "netsim".into(),
            rep.to_string(),
            run.delivers.to_string(),
            run.delivered.to_string(),
            format!("{:.0}", run.ns_per_packet),
            "-".into(),
        ]);
    }
    table.print();

    let ratio = live_best / sim_best;
    println!(
        "\nheadline: live dispatch {live_best:.0} ns/packet vs netsim \
         {sim_best:.0} ns/packet ({ratio:.2}x); certified: {all_certified}"
    );

    let mut report = BenchReport::new("exp_live");
    report.push("calibration", &[], calibration_ops_per_sec(), "ops/s");
    report.push("live_ns_per_packet", &[], live_best, "ns");
    report.push("netsim_ns_per_packet", &[], sim_best, "ns");
    report.push("live_overhead_ratio", &[], ratio, "ratio");
    report.push(
        "certified",
        &[],
        if all_certified { 1.0 } else { 0.0 },
        "bool",
    );
    report.write_default().expect("write BENCH_exp_live.json");
    sidecar_bench::write_metrics_out("exp_live");
    sidecar_bench::write_trace_out("exp_live");
}
