//! **§4.3**: selecting the communication frequency for each sidecar
//! protocol.
//!
//! Reproduces the paper's worked derivations:
//!
//! * **Congestion-control division** — quACK once per RTT. "Assuming a
//!   60ms RTT on a 200 Mbps link and a maximum handled 2% loss rate, at
//!   1500 bytes/packet … this is ≈1000 sent packets with 20 missing packets
//!   per RTT" → exactly the (n = 1000, t = 20) benchmark point, with
//!   ≈100 ns amortized construction per packet.
//! * **ACK reduction** — quACK every n = 32 packets; omitting the count
//!   (`c = 0`, count is always n) shrinks the quACK; any `t < n` beats
//!   Strawman 1's `b·n` bits.
//! * **In-network retransmission** — pick the interval targeting a constant
//!   t = 20 missing per quACK given the measured loss ratio.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin freq_selection`

use sidecar_bench::{measure_mean, per_item_nanos, workload, BenchReport, Table};
use sidecar_quack::{Quack32, WireFormat};

fn main() {
    println!("§4.3 reproduction: communication-frequency selection\n");
    let mut report = BenchReport::new("freq_selection");

    // --- Congestion-control division -------------------------------------
    let rtt_s = 0.060;
    let rate_bps = 200_000_000.0;
    let mtu_bits = 1500.0 * 8.0;
    let loss = 0.02;
    let packets_per_rtt = rate_bps * rtt_s / mtu_bits;
    let missing_per_rtt = packets_per_rtt * loss;
    println!("— Congestion-control division (quACK once per RTT):");
    println!(
        "   60 ms RTT × 200 Mbps ÷ 1500 B/packet = {packets_per_rtt:.0} packets/RTT \
         (paper: ≈1000)"
    );
    println!(
        "   2% worst-case loss → {missing_per_rtt:.0} missing/RTT → threshold t = 20 \
         (paper: 20)"
    );
    let (_, received) = workload(1000, 20, 32, 0x43D);
    let construct = measure_mean(|_| {
        let mut q = Quack32::new(20);
        for &id in &received {
            q.insert(id);
        }
        q
    });
    println!(
        "   added latency = amortized construction: {:.0} ns/packet (paper: ≈100 ns)\n",
        per_item_nanos(construct, received.len())
    );
    report.push("ccd_packets_per_rtt", &[], packets_per_rtt, "packets");
    report.push("ccd_missing_per_rtt", &[], missing_per_rtt, "packets");
    report.push(
        "ccd_construction_per_packet",
        &[],
        per_item_nanos(construct, received.len()),
        "ns",
    );

    // --- ACK reduction ----------------------------------------------------
    println!("— ACK reduction (quACK every n = 32 packets):");
    let mut table = Table::new(&["scheme", "bits per 32 packets", "bits/packet"]);
    let strawman1_bits = 32 * 32; // b·n
    table.row(&[
        "Strawman 1 (echo ids)".into(),
        strawman1_bits.to_string(),
        (strawman1_bits / 32).to_string(),
    ]);
    report.push(
        "ackred_bits_per_window",
        &[("scheme", "strawman1")],
        strawman1_bits as f64,
        "bits",
    );
    for t in [4usize, 8, 16] {
        let fmt = WireFormat {
            id_bits: 32,
            threshold: t,
            count_bits: 0, // §4.3: "we can omit c, which is always n"
        };
        let ts = t.to_string();
        report.push(
            "ackred_bits_per_window",
            &[("scheme", "power_sums"), ("t", &ts)],
            fmt.encoded_bits() as f64,
            "bits",
        );
        table.row(&[
            format!("power sums, t = {t}, c omitted"),
            fmt.encoded_bits().to_string(),
            (fmt.encoded_bits() / 32).to_string(),
        ]);
    }
    table.print();
    println!("   any t < n = 32 beats Strawman 1's b·n bits (paper's point)\n");

    // --- In-network retransmission ----------------------------------------
    println!("— In-network retransmission (interval from the loss ratio):");
    println!("   target: t = 20 missing per quACK at 1 Gbps, 1500 B packets");
    let mut table = Table::new(&["loss ratio", "packets per quACK", "quACK interval"]);
    let pkt_rate = 1_000_000_000.0 / mtu_bits; // packets/s at 1 Gbps
    for loss in [0.001f64, 0.005, 0.01, 0.02, 0.05] {
        let per_quack = 20.0 / loss;
        let interval_ms = per_quack / pkt_rate * 1e3;
        let ls = format!("{loss}");
        report.push("retx_quack_interval", &[("loss", &ls)], interval_ms, "ms");
        table.row(&[
            format!("{:.1}%", loss * 100.0),
            format!("{per_quack:.0}"),
            format!("{interval_ms:.2} ms"),
        ]);
    }
    table.print();
    report
        .write_default()
        .expect("write BENCH_freq_selection.json");
    sidecar_bench::write_metrics_out("freq_selection");
    sidecar_bench::write_trace_out("freq_selection");
    println!(
        "   stable link → lower frequency (longer interval), configured via the \
         sidecar Configure message (§2.3); only n changes per quACK, and the \
         decode cost depends only on t (Fig. 6)."
    );
}
