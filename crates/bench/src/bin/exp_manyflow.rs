//! **Extension (§4.2)**: many-flow scaling of one sidecar vantage point.
//!
//! The paper argues the quACK keeps *per-connection* state tiny; this
//! experiment checks the claim at three altitudes:
//!
//! 1. **End to end** — for each Table-1 protocol and N ∈ {1, 8, 64, 256}
//!    one proxy serves N concurrent flows through a bounded, sharded flow
//!    table; reported: completions, aggregate goodput, residual occupancy,
//!    evictions. The 256-flow point deliberately exceeds the table's
//!    128-session capacity so LRU/idle eviction is exercised, not just
//!    configured. A 1 000-flow ACK-reduction leg additionally runs with the
//!    flight recorder on and **causally certifies** every packet lifecycle
//!    (the quick variant of the nightly soak's 100k leg).
//! 2. **Flow-engine sweep** — for each protocol's session shape and
//!    N ∈ {1k, 10k, 100k} the slab table (DESIGN §14) is raced against the
//!    legacy Vec-scan table on pure insert load: inserts/s both ways, the
//!    `manyflow_insert_speedup` ratio, measured bytes/flow, and eviction
//!    volume when the same population is forced through a quarter-sized
//!    table. The `manyflow_insert_speedup|flows=100000` headline (the
//!    minimum across protocols) carries a hard perf-gate floor.
//! 3. **Decode hot path** — ns per quACK when K flows' consumer state
//!    lives behind a flow-table lookup.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_manyflow`
//! (`--quick` trims the sweep to 1k/10k for the CI smoke leg — the 100k
//! headline cell is produced by the full run in the perf job; add
//! `--metrics-out` to also dump the flowtable.* counters).

use sidecar_bench::{calibration_ops_per_sec, per_item_nanos, BenchReport, Table};
use sidecar_galois::Fp32;
use sidecar_netsim::link::LinkConfig;
use sidecar_netsim::packet::FlowId;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_obs::Lifecycle;
use sidecar_proto::flows::legacy;
use sidecar_proto::protocols::manyflow::{ManyFlowProtocol, ManyFlowScenario};
use sidecar_proto::{FlowTable, FlowTableConfig, QuackConsumer, QuackProducer, SidecarConfig};
use std::process::ExitCode;
use std::time::Instant;

const FLOW_COUNTS: [u32; 4] = [1, 8, 64, 256];
/// 8 shards × 16 sessions: the 256-flow point overcommits the table 2×.
const TABLE: FlowTableConfig = FlowTableConfig {
    shards: 8,
    per_shard: 16,
    idle_timeout: SimDuration::from_secs(2),
};
/// Flow-engine sweep sizes (full run; `--quick` drops the 100k point).
const SWEEP_FULL: [usize; 3] = [1_000, 10_000, 100_000];
const SWEEP_QUICK: [usize; 2] = [1_000, 10_000];
/// Flight-recorder ring for the certified 1k leg (must hold every record).
const TRACE_CAP: usize = 1 << 21;

fn scenario(protocol: ManyFlowProtocol, flows: u32) -> ManyFlowScenario {
    let mut s = ManyFlowScenario::new(protocol, flows);
    s.packets_per_flow = (4_096 / flows as u64).max(16);
    s.table = TABLE;
    s
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// One flow's producer/consumer pair (the CCD proxy's session shape, also
/// used by the decode microbench).
struct BenchSession {
    producer: QuackProducer<Fp32>,
    consumer: QuackConsumer<Fp32>,
}

/// One flow-engine sweep point: the slab table vs the legacy Vec-scan
/// table on identical load, plus slab memory and eviction behavior.
struct SweepPoint {
    /// ns per insert, fresh `sized_for` table (slab / legacy).
    fill_ns: (f64, f64),
    /// ns per warmed lookup (slab / legacy).
    lookup_ns: (f64, f64),
    /// ns per insert under LRU pressure — the population cycled through a
    /// quarter-sized table, so most inserts also evict (slab / legacy).
    churn_ns: (f64, f64),
    /// Measured slab arena bytes per resident flow.
    bytes_per_flow: usize,
    /// Capacity evictions the slab's churn phase performed (overcommit
    /// must shed, not stall).
    overcommit_evictions: u64,
}

/// Races slab vs legacy on inserting, re-looking-up, and churning `flows`
/// distinct sessions. Timestamps increase monotonically (as sim time
/// does), so both tables exercise their real LRU bookkeeping.
fn sweep_point<S>(flows: usize, mk: impl Fn() -> S) -> SweepPoint {
    let idle = SimDuration::from_secs(3_600);
    let cfg = FlowTableConfig::sized_for(flows, idle);

    let mut slab: FlowTable<S> = FlowTable::new(cfg);
    let start = Instant::now();
    for f in 1..=flows as u32 {
        slab.ensure_slot(FlowId(f), t(f as u64), &mk);
    }
    let slab_fill = per_item_nanos(start.elapsed(), flows);
    assert_eq!(slab.len(), flows, "sized_for must hold the population");
    let bytes_per_flow = slab.bytes_per_flow();
    let start = Instant::now();
    for f in 1..=flows as u32 {
        let hit = slab
            .get_mut(FlowId(f), t(flows as u64 + f as u64))
            .is_some();
        assert!(hit);
    }
    let slab_lookup = per_item_nanos(start.elapsed(), flows);
    drop(slab);

    let mut leg: legacy::FlowTable<S> = legacy::FlowTable::new(cfg);
    let start = Instant::now();
    for f in 1..=flows as u32 {
        leg.get_or_insert_with(FlowId(f), t(f as u64), &mk);
    }
    let legacy_fill = per_item_nanos(start.elapsed(), flows);
    assert_eq!(leg.len(), flows);
    let start = Instant::now();
    for f in 1..=flows as u32 {
        let hit = leg.get_mut(FlowId(f), t(flows as u64 + f as u64)).is_some();
        assert!(hit);
    }
    let legacy_lookup = per_item_nanos(start.elapsed(), flows);
    drop(leg);

    // Churn: the same population through a table sized for a quarter of
    // it — once the table fills, every insert is also an LRU eviction.
    // This is the steady state of an overcommitted vantage point, and the
    // phase where the legacy table pays O(shard) scans per packet.
    let over_cfg = FlowTableConfig::sized_for((flows / 4).max(64), idle);
    let mut over: FlowTable<S> = FlowTable::new(over_cfg);
    let start = Instant::now();
    for f in 1..=flows as u32 {
        over.ensure_slot(FlowId(f), t(f as u64), &mk);
    }
    let slab_churn = per_item_nanos(start.elapsed(), flows);
    let overcommit_evictions = over.take_stats().map(|s| s.evicted_capacity).unwrap_or(0);
    drop(over);
    let mut leg_over: legacy::FlowTable<S> = legacy::FlowTable::new(over_cfg);
    let start = Instant::now();
    for f in 1..=flows as u32 {
        leg_over.get_or_insert_with(FlowId(f), t(f as u64), &mk);
    }
    let legacy_churn = per_item_nanos(start.elapsed(), flows);
    drop(leg_over);

    SweepPoint {
        fill_ns: (slab_fill, legacy_fill),
        lookup_ns: (slab_lookup, legacy_lookup),
        churn_ns: (slab_churn, legacy_churn),
        bytes_per_flow,
        overcommit_evictions,
    }
}

/// The quick variant of the soak's 100k leg: a 1 000-flow lossless
/// ACK-reduction run with the flight recorder on. Every flow must
/// complete, the table must shed nothing, and the whole packet population
/// must causally certify. Returns false (and prints why) on violation.
fn certified_1k_leg(report: &mut BenchReport) -> bool {
    const FLOWS: u32 = 1_000;
    let mut s = ManyFlowScenario::new(ManyFlowProtocol::AckReduction, FLOWS);
    s.packets_per_flow = 8;
    s.table = FlowTableConfig::sized_for(FLOWS as usize, SimDuration::from_secs(300));
    // Provisioned lossless: the N-flow slow-start burst (8k packets) must
    // fit the queues, and nothing may idle out inside the horizon.
    s.trunk = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(25),
        queue_packets: 16_384,
        ..LinkConfig::default()
    };
    s.edge = LinkConfig {
        rate_bps: 2_000_000_000,
        delay: SimDuration::from_millis(2),
        queue_packets: 16_384,
        ..s.edge
    };
    s.trace_capacity = Some(TRACE_CAP);
    let r = s.run();
    let lifecycle = Lifecycle::from_trace(&r.trace);
    let mut ok = true;
    if r.completed != FLOWS {
        println!("certified-1k: only {}/{FLOWS} flows completed", r.completed);
        ok = false;
    }
    if r.evictions() != 0 {
        println!(
            "certified-1k: sized-for table evicted {} sessions on a lossless run",
            r.evictions()
        );
        ok = false;
    }
    if !lifecycle.is_complete() {
        println!(
            "certified-1k: ring truncated ({} records dropped)",
            lifecycle.dropped_records()
        );
        ok = false;
    } else if let Err(e) = lifecycle.check_causal() {
        println!("certified-1k: CAUSAL VIOLATION: {e}");
        ok = false;
    }
    let params = [("flows", "1000")];
    report.push(
        "certified_completed",
        &params,
        f64::from(r.completed),
        "flows",
    );
    report.push(
        "certified_lifecycles",
        &params,
        if ok { 1.0 } else { 0.0 },
        "count",
    );
    println!(
        "certified-1k: {}/{FLOWS} flows completed, lifecycle certification {}",
        r.completed,
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Mean decode cost (ns/quACK) with K flows' consumer state muxed behind
/// the flow table, quacks processed in round-robin interleaving so every
/// lookup crosses flows the way a real vantage point would.
fn decode_cost(flows: u32, rounds: usize) -> f64 {
    let cfg = SidecarConfig::paper_default();
    let mut table: FlowTable<BenchSession> = FlowTable::new(FlowTableConfig {
        shards: 8,
        per_shard: ((flows as usize) / 8 + 1).max(16),
        idle_timeout: SimDuration::from_secs(3_600),
    });
    let now = SimTime::ZERO;
    for f in 1..=flows {
        table.get_or_insert_with(FlowId(f), now, || BenchSession {
            producer: QuackProducer::new(cfg),
            consumer: QuackConsumer::new(cfg, SimDuration::from_millis(10)),
        });
    }
    // Interleaved traffic: 16 packets per flow per round, one id stream
    // per flow (simple deterministic LCG), then one quACK per flow.
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut id = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 16
    };
    let mut quacks = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        for pkt in 0..16u64 {
            for f in 1..=flows {
                let session = table.get_mut(FlowId(f), now).expect("inserted above");
                let pid = id();
                let tag = round as u64 * 16 + pkt;
                session.consumer.record_sent(pid, tag, now);
                session.producer.observe(pid);
            }
        }
        for f in 1..=flows {
            let session = table.get_mut(FlowId(f), now).expect("inserted above");
            let msg = session.producer.emit();
            if let sidecar_proto::SidecarMessage::Quack { epoch, bytes } = msg {
                let _ = session.consumer.process_quack(now, epoch, &bytes);
                quacks += 1;
            }
        }
    }
    per_item_nanos(start.elapsed(), quacks.max(1))
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "many-flow extension: one sidecar proxy serves N concurrent flows \
         through an {}x{} flow table (idle timeout {:?}); 256 flows \
         overcommit it 2x so eviction is load-bearing{}\n",
        TABLE.shards,
        TABLE.per_shard,
        TABLE.idle_timeout,
        if quick { " [--quick]" } else { "" }
    );
    let mut report = BenchReport::new("exp_manyflow");
    let mut table = Table::new(&[
        "protocol",
        "flows",
        "completed",
        "agg goodput (Mbit/s)",
        "slowest FCT (s)",
        "sidecar msgs",
        "live at end",
        "evictions",
    ]);
    for protocol in [
        ManyFlowProtocol::Retx,
        ManyFlowProtocol::AckReduction,
        ManyFlowProtocol::CongestionDivision,
    ] {
        for flows in FLOW_COUNTS {
            let r = scenario(protocol, flows).run();
            let evictions = r.evictions();
            let fs = flows.to_string();
            let params = [("protocol", protocol.label()), ("flows", fs.as_str())];
            report.push("completed", &params, f64::from(r.completed), "flows");
            report.push("aggregate_goodput", &params, r.aggregate_goodput_bps, "bps");
            report.push("slowest_fct", &params, r.slowest_completion_secs, "s");
            report.push(
                "sidecar_messages",
                &params,
                r.sidecar_messages as f64,
                "count",
            );
            report.push(
                "live_flows_at_end",
                &params,
                r.live_flows_at_end as f64,
                "count",
            );
            report.push("evictions", &params, evictions as f64, "count");
            table.row(&[
                protocol.label().into(),
                fs,
                format!("{}/{}", r.completed, r.flows),
                format!("{:.1}", r.aggregate_goodput_bps / 1e6),
                if r.slowest_completion_secs.is_finite() {
                    format!("{:.2}", r.slowest_completion_secs)
                } else {
                    "∞".into()
                },
                r.sidecar_messages.to_string(),
                r.live_flows_at_end.to_string(),
                evictions.to_string(),
            ]);
        }
    }
    table.print();

    println!("\ncertified 1k-flow leg (quick variant of the nightly 100k soak):");
    let certified = certified_1k_leg(&mut report);

    println!(
        "\nflow-engine sweep: slab vs legacy Vec-scan table, per-protocol \
         session shapes, sized_for(N) tables:"
    );
    let cfg = SidecarConfig::paper_default();
    let sweep: &[usize] = if quick { &SWEEP_QUICK } else { &SWEEP_FULL };
    let mut stable = Table::new(&[
        "protocol",
        "flows",
        "fill speedup",
        "lookup speedup",
        "churn speedup",
        "slab churn Mins/s",
        "bytes/flow",
        "overcommit evictions",
    ]);
    // The perf-gate headline is the *minimum* churn-insert speedup across
    // the three session shapes at the 100k point: every protocol must win,
    // not just the lightest one.
    let mut headline = f64::INFINITY;
    for protocol in [
        ManyFlowProtocol::Retx,
        ManyFlowProtocol::AckReduction,
        ManyFlowProtocol::CongestionDivision,
    ] {
        for &flows in sweep {
            let point = match protocol {
                ManyFlowProtocol::CongestionDivision => sweep_point(flows, || BenchSession {
                    producer: QuackProducer::new(cfg),
                    consumer: QuackConsumer::new(cfg, SimDuration::from_millis(10)),
                }),
                _ => sweep_point(flows, || QuackProducer::<Fp32>::new(cfg)),
            };
            let fs = flows.to_string();
            let params = [("proto", protocol.label()), ("flows", fs.as_str())];
            let fill_speedup = point.fill_ns.1 / point.fill_ns.0;
            let lookup_speedup = point.lookup_ns.1 / point.lookup_ns.0;
            let churn_speedup = point.churn_ns.1 / point.churn_ns.0;
            report.push(
                "manyflow_inserts_per_sec",
                &params,
                1e9 / point.churn_ns.0,
                "ops/s",
            );
            report.push(
                "manyflow_legacy_inserts_per_sec",
                &params,
                1e9 / point.churn_ns.1,
                "ops/s",
            );
            // Per-protocol speedups are informational (`ratio`): the 1k
            // point's timed loops are microseconds long and too noisy to
            // gate. The gated `x` cell is the 100k headline below.
            report.push("manyflow_insert_speedup", &params, churn_speedup, "ratio");
            report.push("manyflow_fill_speedup", &params, fill_speedup, "ratio");
            report.push("manyflow_lookup_speedup", &params, lookup_speedup, "ratio");
            report.push(
                "manyflow_bytes_per_flow",
                &params,
                point.bytes_per_flow as f64,
                "B/flow",
            );
            report.push(
                "manyflow_overcommit_evictions",
                &params,
                point.overcommit_evictions as f64,
                "count",
            );
            if flows == 100_000 {
                headline = headline.min(churn_speedup);
            }
            stable.row(&[
                protocol.label().into(),
                fs,
                format!("{fill_speedup:.2}x"),
                format!("{lookup_speedup:.2}x"),
                format!("{churn_speedup:.2}x"),
                format!("{:.2}", 1e3 / point.churn_ns.0),
                point.bytes_per_flow.to_string(),
                point.overcommit_evictions.to_string(),
            ]);
        }
    }
    stable.print();
    if headline.is_finite() {
        report.push(
            "manyflow_insert_speedup",
            &[("flows", "100000")],
            headline,
            "x",
        );
        println!("\nheadline: min insert speedup at 100k flows = {headline:.2}x");
    }

    println!("\ndecode hot path, K flows muxed behind the flow table:");
    let mut dtable = Table::new(&["flows", "ns/quACK"]);
    for flows in FLOW_COUNTS {
        // Same total quACK count per point so timings are comparable
        // (quick mode quarters it).
        let budget = if quick { 128 } else { 512 };
        let rounds = (budget / flows as usize).max(2);
        let ns = decode_cost(flows, rounds);
        let fs = flows.to_string();
        report.push("decode_ns_per_quack", &[("flows", fs.as_str())], ns, "ns");
        dtable.row(&[fs, format!("{ns:.0}")]);
    }
    dtable.print();

    report.push("calibration", &[], calibration_ops_per_sec(), "ops/s");
    report
        .write_default()
        .expect("write BENCH_exp_manyflow.json");
    sidecar_bench::write_metrics_out("exp_manyflow");
    sidecar_bench::write_trace_out("exp_manyflow");
    println!(
        "\nreading: goodput should scale with N until the trunk saturates \
         while the proxy's resident sessions stay capped at the table \
         capacity; at 256 flows evictions are nonzero by design and flows \
         still complete via end-to-end recovery plus re-handshake. The \
         flow-engine sweep's speedup column is the slab payoff the perf \
         gate floors at the 100k point."
    );
    if certified {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
