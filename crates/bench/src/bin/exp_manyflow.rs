//! **Extension (§4.2)**: many-flow scaling of one sidecar vantage point.
//!
//! The paper argues the quACK keeps *per-connection* state tiny; this
//! experiment checks the claim end to end when one proxy serves N
//! concurrent flows through a bounded, sharded flow table. For each
//! Table-1 protocol and N ∈ {1, 8, 64, 256} it reports completions,
//! aggregate goodput, residual flow-table occupancy, and evictions — the
//! 256-flow point deliberately exceeds the table's 128-session capacity so
//! LRU/idle eviction is exercised, not just configured. A second section
//! microbenchmarks the muxed decode hot path: ns per quACK when the
//! consumer state for K flows lives behind a flow-table lookup.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_manyflow`
//! (add `--metrics-out` to also dump the flowtable.* counters).

use sidecar_bench::{per_item_nanos, BenchReport, Table};
use sidecar_galois::Fp32;
use sidecar_netsim::time::{SimDuration, SimTime};
use sidecar_proto::protocols::manyflow::{ManyFlowProtocol, ManyFlowScenario};
use sidecar_proto::{FlowTable, FlowTableConfig, QuackConsumer, QuackProducer, SidecarConfig};
use std::time::Instant;

const FLOW_COUNTS: [u32; 4] = [1, 8, 64, 256];
/// 8 shards × 16 sessions: the 256-flow point overcommits the table 2×.
const TABLE: FlowTableConfig = FlowTableConfig {
    shards: 8,
    per_shard: 16,
    idle_timeout: SimDuration::from_secs(2),
};

fn scenario(protocol: ManyFlowProtocol, flows: u32) -> ManyFlowScenario {
    let mut s = ManyFlowScenario::new(protocol, flows);
    s.packets_per_flow = (4_096 / flows as u64).max(16);
    s.table = TABLE;
    s
}

/// One flow's producer/consumer pair for the decode microbench.
struct BenchSession {
    producer: QuackProducer<Fp32>,
    consumer: QuackConsumer<Fp32>,
}

/// Mean decode cost (ns/quACK) with K flows' consumer state muxed behind
/// the flow table, quacks processed in round-robin interleaving so every
/// lookup crosses flows the way a real vantage point would.
fn decode_cost(flows: u32, rounds: usize) -> f64 {
    use sidecar_netsim::packet::FlowId;
    let cfg = SidecarConfig::paper_default();
    let mut table: FlowTable<BenchSession> = FlowTable::new(FlowTableConfig {
        shards: 8,
        per_shard: ((flows as usize) / 8 + 1).max(16),
        idle_timeout: SimDuration::from_secs(3_600),
    });
    let now = SimTime::ZERO;
    for f in 1..=flows {
        table.get_or_insert_with(FlowId(f), now, || BenchSession {
            producer: QuackProducer::new(cfg),
            consumer: QuackConsumer::new(cfg, SimDuration::from_millis(10)),
        });
    }
    // Interleaved traffic: 16 packets per flow per round, one id stream
    // per flow (simple deterministic LCG), then one quACK per flow.
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut id = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 16
    };
    let mut quacks = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        for pkt in 0..16u64 {
            for f in 1..=flows {
                let session = table.get_mut(FlowId(f), now).expect("inserted above");
                let pid = id();
                let tag = round as u64 * 16 + pkt;
                session.consumer.record_sent(pid, tag, now);
                session.producer.observe(pid);
            }
        }
        for f in 1..=flows {
            let session = table.get_mut(FlowId(f), now).expect("inserted above");
            let msg = session.producer.emit();
            if let sidecar_proto::SidecarMessage::Quack { epoch, bytes } = msg {
                let _ = session.consumer.process_quack(now, epoch, &bytes);
                quacks += 1;
            }
        }
    }
    per_item_nanos(start.elapsed(), quacks.max(1))
}

fn main() {
    println!(
        "many-flow extension: one sidecar proxy serves N concurrent flows \
         through an {}x{} flow table (idle timeout {:?}); 256 flows \
         overcommit it 2x so eviction is load-bearing\n",
        TABLE.shards, TABLE.per_shard, TABLE.idle_timeout
    );
    let mut report = BenchReport::new("exp_manyflow");
    let mut table = Table::new(&[
        "protocol",
        "flows",
        "completed",
        "agg goodput (Mbit/s)",
        "slowest FCT (s)",
        "sidecar msgs",
        "live at end",
        "evictions",
    ]);
    for protocol in [
        ManyFlowProtocol::Retx,
        ManyFlowProtocol::AckReduction,
        ManyFlowProtocol::CongestionDivision,
    ] {
        for flows in FLOW_COUNTS {
            let r = scenario(protocol, flows).run();
            let evictions = r.evictions();
            let fs = flows.to_string();
            let params = [("protocol", protocol.label()), ("flows", fs.as_str())];
            report.push("completed", &params, f64::from(r.completed), "flows");
            report.push("aggregate_goodput", &params, r.aggregate_goodput_bps, "bps");
            report.push("slowest_fct", &params, r.slowest_completion_secs, "s");
            report.push(
                "sidecar_messages",
                &params,
                r.sidecar_messages as f64,
                "count",
            );
            report.push(
                "live_flows_at_end",
                &params,
                r.live_flows_at_end as f64,
                "count",
            );
            report.push("evictions", &params, evictions as f64, "count");
            table.row(&[
                protocol.label().into(),
                fs,
                format!("{}/{}", r.completed, r.flows),
                format!("{:.1}", r.aggregate_goodput_bps / 1e6),
                if r.slowest_completion_secs.is_finite() {
                    format!("{:.2}", r.slowest_completion_secs)
                } else {
                    "∞".into()
                },
                r.sidecar_messages.to_string(),
                r.live_flows_at_end.to_string(),
                evictions.to_string(),
            ]);
        }
    }
    table.print();

    println!("\ndecode hot path, K flows muxed behind the flow table:");
    let mut dtable = Table::new(&["flows", "ns/quACK"]);
    for flows in FLOW_COUNTS {
        // Same total quACK count per point so timings are comparable.
        let rounds = (512 / flows as usize).max(2);
        let ns = decode_cost(flows, rounds);
        let fs = flows.to_string();
        report.push("decode_ns_per_quack", &[("flows", fs.as_str())], ns, "ns");
        dtable.row(&[fs, format!("{ns:.0}")]);
    }
    dtable.print();

    report
        .write_default()
        .expect("write BENCH_exp_manyflow.json");
    sidecar_bench::write_metrics_out("exp_manyflow");
    sidecar_bench::write_trace_out("exp_manyflow");
    println!(
        "\nreading: goodput should scale with N until the trunk saturates \
         while the proxy's resident sessions stay capped at the table \
         capacity; at 256 flows evictions are nonzero by design and flows \
         still complete via end-to-end recovery plus re-handshake."
    );
}
