//! **§2.1 experiment**: congestion-control division vs. end-to-end NewReno
//! (paper Fig. 1b as a working system).
//!
//! The proxy splits the path into a fast clean upstream segment and a
//! slower lossy downstream segment. With division, the server's window is
//! steered by proxy quACKs (segment-1 feedback only) and the proxy paces
//! its buffer from client quACKs — so random downstream loss no longer
//! collapses the server's window.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_ccd`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::time::SimDuration;
use sidecar_proto::protocols::ccd::CcdScenario;

fn main() {
    println!(
        "§2.1 reproduction: congestion-control division\n\
         topology: server ↔ 200 Mbps/10 ms ↔ proxy ↔ 50 Mbps/20 ms lossy ↔ client\n\
         flow: 2000 × 1500 B; quACKs once per segment RTT (30 ms), t = 50, b = 32\n"
    );
    let mut table = Table::new(&[
        "downstream loss",
        "variant",
        "completion (s)",
        "goodput (Mbit/s)",
        "e2e retx",
        "quACK msgs",
        "speedup",
    ]);
    let mut report = BenchReport::new("exp_ccd");
    for loss in [0.0f64, 0.005, 0.01, 0.02] {
        let scenario = CcdScenario {
            total_packets: 2_000,
            downstream: LinkConfig {
                rate_bps: 50_000_000,
                delay: SimDuration::from_millis(20),
                loss: if loss == 0.0 {
                    LossModel::None
                } else {
                    LossModel::Bernoulli { p: loss }
                },
                queue_packets: 256,
                ..LinkConfig::default()
            },
            ..CcdScenario::default()
        };
        let bbr_scenario = CcdScenario {
            baseline_cc: sidecar_netsim::transport::CcAlgorithm::Bbr,
            ..scenario.clone()
        };
        let seeds = [5u64, 6, 7];
        let mut side_t = 0.0;
        let mut base_t = 0.0;
        let mut bbr_t = 0.0;
        let mut side_g = 0.0;
        let mut base_g = 0.0;
        let mut bbr_g = 0.0;
        let mut side_retx = 0;
        let mut base_retx = 0;
        let mut bbr_retx = 0;
        let mut side_msgs = 0;
        for &s in &seeds {
            let side = scenario.run_sidecar(s);
            let base = scenario.run_baseline(s);
            let bbr = bbr_scenario.run_baseline(s);
            side_t += side.completion_secs();
            base_t += base.completion_secs();
            bbr_t += bbr.completion_secs();
            side_g += side.goodput_bps.unwrap_or(0.0);
            base_g += base.goodput_bps.unwrap_or(0.0);
            bbr_g += bbr.goodput_bps.unwrap_or(0.0);
            side_retx += side.server_retransmissions;
            base_retx += base.server_retransmissions;
            bbr_retx += bbr.server_retransmissions;
            side_msgs += side.sidecar_messages;
        }
        let k = seeds.len() as f64;
        let ku = seeds.len() as u64;
        let ls = format!("{loss}");
        for (variant, time, goodput, retx) in [
            ("newreno", base_t, base_g, base_retx),
            ("bbr", bbr_t, bbr_g, bbr_retx),
            ("sidecar", side_t, side_g, side_retx),
        ] {
            let params = [("loss", ls.as_str()), ("variant", variant)];
            report.push("completion_time", &params, time / k, "s");
            report.push("goodput", &params, goodput / k, "bps");
            report.push("e2e_retx", &params, retx as f64 / k, "msgs");
        }
        report.push("quack_msgs", &[("loss", &ls)], side_msgs as f64 / k, "msgs");
        report.push("speedup", &[("loss", &ls)], base_t / side_t, "x");
        table.row(&[
            format!("{:.1}%", loss * 100.0),
            "baseline (e2e NewReno)".into(),
            format!("{:.3}", base_t / k),
            format!("{:.1}", base_g / k / 1e6),
            (base_retx / ku).to_string(),
            "-".into(),
            "1.00x".into(),
        ]);
        table.row(&[
            String::new(),
            "baseline (e2e BBR-like)".into(),
            format!("{:.3}", bbr_t / k),
            format!("{:.1}", bbr_g / k / 1e6),
            (bbr_retx / ku).to_string(),
            "-".into(),
            format!("{:.2}x", base_t / bbr_t),
        ]);
        table.row(&[
            String::new(),
            "sidecar (division)".into(),
            format!("{:.3}", side_t / k),
            format!("{:.1}", side_g / k / 1e6),
            (side_retx / ku).to_string(),
            (side_msgs / ku).to_string(),
            format!("{:.2}x", base_t / side_t),
        ]);
    }
    table.print();
    report.write_default().expect("write BENCH_exp_ccd.json");
    sidecar_bench::write_metrics_out("exp_ccd");
    sidecar_bench::write_trace_out("exp_ccd");
    println!(
        "\nexpected shape: roughly even when the downstream is clean; the \
         division wins increasingly as random downstream loss grows (e2e \
         NewReno keeps halving its window for noncongestive loss). A \
         model-based e2e sender (BBR-like) closes much of the gap without \
         any middlebox — the honest caveat to PEP-style splitting."
    );
}
