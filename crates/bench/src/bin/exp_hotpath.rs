//! **Hot path**: quACK insert and decode throughput across field widths,
//! thresholds, and batch sizes.
//!
//! The paper's viability argument puts the quACK in the per-packet data
//! path ("the receiver updates the sums when receiving each packet", §3.2),
//! so inserts/sec and decodes/sec are the system's scaling ceiling. This
//! harness measures:
//!
//! * **inserts/sec** — scalar `insert` (batch = 1) versus `insert_batch`
//!   at several batch sizes, for every field width and threshold. The
//!   batched path converts identifiers once (64-bit identifiers stay in
//!   the Montgomery domain for the whole batch) and advances the `t`
//!   running powers with a lane-parallel strength-reduced ladder.
//! * **decodes/sec** — the serial decoder versus the pooled
//!   (allocation-free) and parallel (threaded candidate evaluation)
//!   decoders.
//! * **speedup ratios** — batched over scalar, machine-independent; the
//!   CI perf gate enforces the headline `Fp64, t = 20, batch ≥ 32 ⇒ ≥ 2x`
//!   floor on these.
//!
//! Results go to stdout (table) and `BENCH_quack.json`
//! (`sidecar-bench/v1` schema, compared against `bench/baseline.json` by
//! the `perf_gate` bin — see README).
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_hotpath`

use sidecar_bench::{
    calibration_ops_per_sec, measure_mean_with, ops_per_sec, BenchReport, IdentifierGenerator,
    Table,
};
use sidecar_galois::{Field, Fp16, Fp24, Fp32, Fp64, Monty64, WorkspacePool};
use sidecar_quack::PowerSumQuack;
use std::time::Duration;

/// Identifiers folded per insert trial.
const N_IDS: usize = 4096;
/// Every cell reports the fastest of [`REPS`] independent means of
/// [`TRIALS`] runs. These metrics gate CI, so the estimator must shrug
/// off scheduler preemption — a single mean does not (observed >15%
/// run-to-run swings on busy single-core runners). The repetitions are
/// *interleaved* across the entire sweep (rep loop outside, cell loop
/// inside): one cell's reps are spread over several seconds, so a
/// contention burst can depress at most one of them, and the minimum
/// discards it.
const REPS: usize = 7;
const TRIALS: usize = 10;
const WARMUP: usize = 3;

const THRESHOLDS: &[usize] = &[10, 20, 40];
const BATCHES: &[usize] = &[1, 8, 32, 256];

/// One measured sweep cell: a reusable workload closure (owning its quACK
/// or decoder state) plus the best mean observed so far.
struct Cell {
    field: &'static str,
    t: usize,
    /// Insert cells: batch size. Decode cells: number of sent packets.
    n: usize,
    /// Empty for insert cells; decoder mode for decode cells.
    mode: &'static str,
    run: Box<dyn FnMut() -> Duration>,
    best: Option<Duration>,
}

impl Cell {
    fn rep(&mut self) {
        let d = (self.run)();
        if self.best.is_none_or(|b| d < b) {
            self.best = Some(d);
        }
    }

    fn ops(&self, per: usize) -> f64 {
        ops_per_sec(self.best.expect("REPS >= 1"), per)
    }
}

fn insert_cells<F: Field>(field: &'static str, cells: &mut Vec<Cell>) {
    let mut generator = IdentifierGenerator::new(F::BITS, 0x401_7A7 + F::BITS as u64);
    let ids = generator.take_ids(N_IDS);
    for &t in THRESHOLDS {
        for &batch in BATCHES {
            let ids = ids.clone();
            let mut quack = PowerSumQuack::<F>::new(t);
            cells.push(Cell {
                field,
                t,
                n: batch,
                mode: "",
                run: Box::new(move || {
                    measure_mean_with(TRIALS, WARMUP, &mut |_| {
                        if batch == 1 {
                            for &id in &ids {
                                quack.insert(id);
                            }
                        } else {
                            for chunk in ids.chunks(batch) {
                                quack.insert_batch(chunk);
                            }
                        }
                        quack.count()
                    })
                }),
                best: None,
            });
        }
    }
}

fn decode_cells<F: Field>(field: &'static str, cells: &mut Vec<Cell>) {
    const T: usize = 20;
    for &n in &[1000usize, 5000] {
        let mut generator = IdentifierGenerator::new(F::BITS, 0xDEC0DE + n as u64);
        let sent = generator.take_ids(n);
        let mut sender = PowerSumQuack::<F>::new(T);
        let mut receiver = PowerSumQuack::<F>::new(T);
        sender.insert_batch(&sent);
        for (i, &id) in sent.iter().enumerate() {
            if i % (n / T) != 0 {
                receiver.insert(id);
            }
        }
        let diff = sender.difference(&receiver);
        assert_eq!(diff.count() as usize, T, "workload must miss exactly t");
        let pool = WorkspacePool::<F>::new(T);
        type DecodeFn = Box<dyn FnMut() -> usize>;
        let modes: [(&'static str, DecodeFn); 3] = [
            ("serial", {
                let diff = diff.clone();
                let sent = sent.clone();
                Box::new(move || diff.decode_with_log(&sent).unwrap().missing().len())
            }),
            ("pooled", {
                let diff = diff.clone();
                let sent = sent.clone();
                Box::new(move || {
                    diff.decode_with_log_pooled(&sent, &pool)
                        .unwrap()
                        .missing()
                        .len()
                })
            }),
            ("parallel", {
                let diff = diff.clone();
                let sent = sent.clone();
                Box::new(move || {
                    diff.decode_with_log_parallel(&sent)
                        .unwrap()
                        .missing()
                        .len()
                })
            }),
        ];
        for (mode, mut run) in modes {
            cells.push(Cell {
                field,
                t: T,
                n,
                mode,
                run: Box::new(move || measure_mean_with(TRIALS, WARMUP, &mut |_| run())),
                best: None,
            });
        }
    }
}

fn main() {
    println!("Hot-path throughput: inserts/sec and decodes/sec\n");

    // Build every cell first, then interleave the repetitions across all
    // of them — see the comment on `REPS`.
    let mut cells = Vec::new();
    insert_cells::<Fp16>("Fp16", &mut cells);
    insert_cells::<Fp24>("Fp24", &mut cells);
    insert_cells::<Fp32>("Fp32", &mut cells);
    insert_cells::<Fp64>("Fp64", &mut cells);
    insert_cells::<Monty64>("Monty64", &mut cells);
    let insert_count = cells.len();
    decode_cells::<Fp32>("Fp32", &mut cells);
    decode_cells::<Fp64>("Fp64", &mut cells);
    for _rep in 0..REPS {
        for cell in cells.iter_mut() {
            cell.rep();
        }
    }
    let (inserts, decodes) = cells.split_at(insert_count);

    let mut report = BenchReport::new("quack");
    report.push("calibration", &[], calibration_ops_per_sec(), "ops/s");

    let mut insert_table = Table::new(&["field", "t", "batch", "inserts/sec", "vs scalar"]);
    for cell in inserts {
        let scalar = inserts
            .iter()
            .find(|c| c.field == cell.field && c.t == cell.t && c.n == 1)
            .expect("batch=1 cell exists");
        let ops = cell.ops(N_IDS);
        let speedup = ops / scalar.ops(N_IDS);
        insert_table.row(&[
            cell.field.to_string(),
            cell.t.to_string(),
            cell.n.to_string(),
            format!("{ops:.2e}"),
            format!("{speedup:.2}x"),
        ]);
        let t = cell.t.to_string();
        let batch = cell.n.to_string();
        report.push(
            "inserts_per_sec",
            &[("field", cell.field), ("t", &t), ("batch", &batch)],
            ops,
            "ops/s",
        );
        if cell.n > 1 {
            report.push(
                "insert_speedup",
                &[("field", cell.field), ("t", &t), ("batch", &batch)],
                speedup,
                "x",
            );
        }
    }
    insert_table.print();

    println!();
    let mut decode_table = Table::new(&["field", "t", "n", "mode", "decodes/sec", "vs serial"]);
    for cell in decodes {
        let serial = decodes
            .iter()
            .find(|c| c.field == cell.field && c.n == cell.n && c.mode == "serial")
            .expect("serial cell exists");
        let ops = cell.ops(1);
        let speedup = ops / serial.ops(1);
        decode_table.row(&[
            cell.field.to_string(),
            cell.t.to_string(),
            cell.n.to_string(),
            cell.mode.to_string(),
            format!("{ops:.2e}"),
            format!("{speedup:.2}x"),
        ]);
        let t = cell.t.to_string();
        let n = cell.n.to_string();
        report.push(
            "decodes_per_sec",
            &[
                ("field", cell.field),
                ("t", &t),
                ("n", &n),
                ("mode", cell.mode),
            ],
            ops,
            "ops/s",
        );
    }
    decode_table.print();

    // The acceptance headline: batched 64-bit inserts at t = 20.
    let headline = report
        .get("insert_speedup|batch=32|field=Fp64|t=20")
        .expect("headline metric present")
        .value;
    println!(
        "\nheadline: Fp64 t=20 batch=32 insert speedup {headline:.2}x over scalar \
         (acceptance floor: 2.00x)"
    );

    report.write_default().expect("write BENCH_quack.json");
    sidecar_bench::write_metrics_out("quack");
    sidecar_bench::write_trace_out("quack");
}
