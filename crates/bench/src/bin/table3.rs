//! **Table 3**: collision probabilities for n = 1000.
//!
//! Paper values:
//!
//! | identifier bits | 8    | 16    | 24      | 32      |
//! |-----------------|------|-------|---------|---------|
//! | collision prob. | 0.98 | 0.015 | 6.0e-05 | 2.3e-07 |
//!
//! The closed form is `1 − (1 − 2^{−b})^{n−1}` (§4.2); this harness prints
//! it alongside a Monte-Carlo estimate (feasible for the smaller widths) as
//! a cross-check.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin table3`

use sidecar_bench::{BenchReport, Table};
use sidecar_quack::collision::{
    collision_probability, collision_probability_monte_carlo, expected_colliding_packets,
};

const N: u64 = 1000;

fn main() {
    println!("Table 3 reproduction: collision probabilities for n = {N}\n");
    let paper = [
        (8u32, "0.98"),
        (16, "0.015"),
        (24, "6.0e-05"),
        (32, "2.3e-07"),
    ];
    let mut table = Table::new(&[
        "bits",
        "analytic",
        "paper",
        "monte carlo",
        "expected colliding pkts",
    ]);
    let mut report = BenchReport::new("table3");
    for (bits, paper_val) in paper {
        let analytic = collision_probability(bits, N);
        let bs = bits.to_string();
        report.push("collision_probability", &[("b", &bs)], analytic, "p");
        report.push(
            "expected_colliding_packets",
            &[("b", &bs)],
            expected_colliding_packets(bits, N),
            "packets",
        );
        // Monte Carlo needs ~100/p trials for a stable estimate; only the
        // narrow widths are feasible.
        let mc = if bits <= 16 {
            let trials = if bits == 8 { 20_000 } else { 2_000_000 };
            let estimate =
                collision_probability_monte_carlo(bits, N, trials, 0x7AB1E3 + bits as u64);
            report.push("collision_probability_mc", &[("b", &bs)], estimate, "p");
            format!("{estimate:.2e}")
        } else {
            "(too rare to sample)".to_string()
        };
        table.row(&[
            bits.to_string(),
            format!("{analytic:.2e}"),
            paper_val.to_string(),
            mc,
            format!("{:.3}", expected_colliding_packets(bits, N)),
        ]);
    }
    table.print();

    // The §1 headline: percentage form at b = 32.
    println!(
        "\nheadline (§1): {:.6}% chance a candidate packet is indeterminate \
         at b = 32, n = {N} (paper: 0.000023%)",
        collision_probability(32, N) * 100.0
    );
    report.write_default().expect("write BENCH_table3.json");
    sidecar_bench::write_metrics_out("table3");
    sidecar_bench::write_trace_out("table3");
}
