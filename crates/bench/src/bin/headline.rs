//! **§1 headline metrics**: the four numbers the paper leads with for
//! n = 1000 sent packets and up to t = 20 missing packets (b = 32):
//!
//! 1. 82 bytes transmitted from the receiver to the sender,
//! 2. ≈100 ns additional processing time per packet,
//! 3. <100 µs decoding time,
//! 4. 0.000023% chance that a candidate packet is indeterminate.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin headline`

use sidecar_bench::{fmt_duration, measure_mean, per_item_nanos, workload, BenchReport};
use sidecar_quack::collision::collision_percentage;
use sidecar_quack::{Quack32, WireFormat};

const N: usize = 1000;
const T: usize = 20;

fn main() {
    println!("§1 headline metrics (n = {N}, t = {T}, b = 32, c = 16)\n");
    let mut report = BenchReport::new("headline");

    // 1. Wire size.
    let fmt = WireFormat::paper_default(T);
    println!(
        "1. quACK size: {} bytes (paper: 82 bytes)",
        fmt.encoded_bytes()
    );
    report.push("quack_size", &[], fmt.encoded_bytes() as f64, "bytes");

    // 2. Amortized per-packet construction cost.
    let (sent, received) = workload(N, T, 32, 0x4EAD);
    let construct = measure_mean(|_| {
        let mut q = Quack32::new(T);
        for &id in &received {
            q.insert(id);
        }
        q
    });
    println!(
        "2. per-packet processing: {:.0} ns (paper: ≈100 ns)",
        per_item_nanos(construct, received.len())
    );
    report.push(
        "per_packet_processing",
        &[],
        per_item_nanos(construct, received.len()),
        "ns",
    );

    // 3. Decode time.
    let mut sender = Quack32::new(T);
    for &id in &sent {
        sender.insert(id);
    }
    let mut receiver = Quack32::new(T);
    for &id in &received {
        receiver.insert(id);
    }
    let diff = sender.difference(&receiver);
    let decode = measure_mean(|_| diff.decode_with_log(&sent).unwrap());
    println!(
        "3. decode time: {} (paper: <100 us; their machine: 61 us)",
        fmt_duration(decode)
    );
    assert!(
        decode.as_micros() < 1000,
        "decode should be well under a millisecond"
    );
    report.push("decode_time", &[], decode.as_nanos() as f64 / 1e3, "us");

    // 4. Indeterminacy probability.
    println!(
        "4. indeterminate chance: {:.6}% (paper: 0.000023%)",
        collision_percentage(32, N as u64)
    );
    report.push(
        "indeterminate_chance",
        &[],
        collision_percentage(32, N as u64),
        "%",
    );
    report.write_default().expect("write BENCH_headline.json");
    sidecar_bench::write_metrics_out("headline");
    sidecar_bench::write_trace_out("headline");
}
