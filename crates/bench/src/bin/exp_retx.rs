//! **§2.3 experiment**: in-network retransmission vs. plain forwarding
//! (paper Fig. 4 as a working system).
//!
//! Sweeps the subpath loss rate and reports flow completion time, the
//! server's end-to-end retransmissions, and the proxies' in-network
//! retransmissions, for the sidecar protocol and the baseline. The paper's
//! qualitative claim: "in-network retransmission can be beneficial when the
//! RTT between the two routers is significantly smaller than the end-to-end
//! RTT" — so the sidecar should win, and win more as loss grows.
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_retx`

use sidecar_bench::{BenchReport, Table};
use sidecar_netsim::link::{LinkConfig, LossModel};
use sidecar_netsim::time::SimDuration;
use sidecar_proto::protocols::retx::RetxScenario;

fn main() {
    println!(
        "§2.3 reproduction: in-network retransmission across a lossy subpath\n\
         topology: server ↔ 25ms edge ↔ proxyA ↔ 5ms lossy subpath ↔ proxyB ↔ 2ms edge ↔ client\n\
         flow: 2000 × 1500 B, NewReno, adaptive quACK frequency, t = 20, b = 32\n"
    );
    let mut report = BenchReport::new("exp_retx");
    let mut table = Table::new(&[
        "subpath loss",
        "variant",
        "completion (s)",
        "e2e retx",
        "in-net retx",
        "quACK msgs",
        "speedup",
    ]);
    for loss in [0.005f64, 0.01, 0.02, 0.05] {
        let scenario = RetxScenario {
            total_packets: 2_000,
            subpath: LinkConfig {
                rate_bps: 100_000_000,
                delay: SimDuration::from_millis(5),
                loss: LossModel::Bernoulli { p: loss },
                ..LinkConfig::default()
            },
            ..RetxScenario::default()
        };
        // Average over a few seeds to steady the comparison.
        let seeds = [11u64, 22, 33];
        let mut side_t = 0.0;
        let mut base_t = 0.0;
        let mut side_e2e = 0;
        let mut base_e2e = 0;
        let mut side_inn = 0;
        let mut side_msgs = 0;
        for &s in &seeds {
            let side = scenario.run_sidecar(s);
            let base = scenario.run_baseline(s);
            side_t += side.completion_secs();
            base_t += base.completion_secs();
            side_e2e += side.server_retransmissions;
            base_e2e += base.server_retransmissions;
            side_inn += side.proxy_retransmissions;
            side_msgs += side.sidecar_messages;
        }
        let k = seeds.len() as f64;
        let ku = seeds.len() as u64;
        let ls = format!("{loss}");
        report.push(
            "completion_time",
            &[("loss", &ls), ("variant", "baseline")],
            base_t / k,
            "s",
        );
        report.push(
            "completion_time",
            &[("loss", &ls), ("variant", "sidecar")],
            side_t / k,
            "s",
        );
        report.push(
            "e2e_retx",
            &[("loss", &ls), ("variant", "baseline")],
            base_e2e as f64 / k,
            "msgs",
        );
        report.push(
            "e2e_retx",
            &[("loss", &ls), ("variant", "sidecar")],
            side_e2e as f64 / k,
            "msgs",
        );
        report.push("in_net_retx", &[("loss", &ls)], side_inn as f64 / k, "msgs");
        report.push("quack_msgs", &[("loss", &ls)], side_msgs as f64 / k, "msgs");
        report.push("speedup", &[("loss", &ls)], base_t / side_t, "x");
        table.row(&[
            format!("{:.1}%", loss * 100.0),
            "baseline".into(),
            format!("{:.3}", base_t / k),
            (base_e2e / ku).to_string(),
            "-".into(),
            "-".into(),
            "1.00x".into(),
        ]);
        table.row(&[
            String::new(),
            "sidecar".into(),
            format!("{:.3}", side_t / k),
            (side_e2e / ku).to_string(),
            (side_inn / ku).to_string(),
            (side_msgs / ku).to_string(),
            format!("{:.2}x", base_t / side_t),
        ]);
    }
    table.print();
    report.write_default().expect("write BENCH_exp_retx.json");
    sidecar_bench::write_metrics_out("exp_retx");
    sidecar_bench::write_trace_out("exp_retx");
    println!(
        "\nexpected shape: the sidecar completes faster at every loss rate, \
         recovering most subpath losses in-network; e2e retransmissions drop \
         for the losses whose in-network recovery beats the client's sparse \
         ACK cadence."
    );
}
