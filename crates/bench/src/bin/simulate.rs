//! `simulate` — run any sidecar protocol scenario from the command line.
//!
//! ```text
//! simulate <ccd|ackred|retx> [options]
//!
//!   --packets N        data units to deliver          (default 2000)
//!   --loss PCT         loss rate on the lossy segment (default 1.0)
//!   --seed S           determinism seed               (default 1)
//!   --seeds K          average over K seeds           (default 1)
//!   --interval MS      quACK interval, CCD only       (default 30)
//!   --ack-every N      client ACK thinning, ackred    (default 32)
//!   --baseline         also run the no-sidecar baseline
//!   --metrics-out      dump the observability registry as a bench report
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run -p sidecar-bench --release --bin simulate -- retx --loss 2 --baseline
//! cargo run -p sidecar-bench --release --bin simulate -- ccd --packets 5000 --seeds 5
//! ```

use sidecar_bench::BenchReport;
use sidecar_netsim::link::LossModel;
use sidecar_netsim::time::SimDuration;
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;
use sidecar_proto::protocols::ScenarioReport;
use std::process::exit;

#[derive(Debug)]
struct Options {
    protocol: String,
    packets: u64,
    loss: f64,
    seed: u64,
    seeds: u64,
    interval_ms: u64,
    ack_every: u32,
    baseline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate <ccd|ackred|retx> [--packets N] [--loss PCT] \
         [--seed S] [--seeds K] [--interval MS] [--ack-every N] [--baseline]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let protocol = match args.next() {
        Some(p) if ["ccd", "ackred", "retx"].contains(&p.as_str()) => p,
        _ => usage(),
    };
    let mut opts = Options {
        protocol,
        packets: 2_000,
        loss: 1.0,
        seed: 1,
        seeds: 1,
        interval_ms: 30,
        ack_every: 32,
        baseline: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--packets" => opts.packets = value("--packets").parse().unwrap_or_else(|_| usage()),
            "--loss" => opts.loss = value("--loss").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--seeds" => opts.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--interval" => {
                opts.interval_ms = value("--interval").parse().unwrap_or_else(|_| usage())
            }
            "--ack-every" => {
                opts.ack_every = value("--ack-every").parse().unwrap_or_else(|_| usage())
            }
            "--baseline" => opts.baseline = true,
            // Handled by sidecar_bench::write_metrics_out at exit.
            "--metrics-out" => {}
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn loss_model(pct: f64) -> LossModel {
    if pct <= 0.0 {
        LossModel::None
    } else {
        LossModel::Bernoulli { p: pct / 100.0 }
    }
}

fn print_report(label: &str, r: &ScenarioReport) {
    let completion = match r.completion {
        Some(t) => format!("{:.3} s", t.as_secs_f64()),
        None => "did not finish (budget 120 simulated s)".into(),
    };
    println!("{label}:");
    println!("  completion        {completion}");
    if let Some(g) = r.goodput_bps {
        println!("  goodput           {:.2} Mbit/s", g / 1e6);
    }
    println!("  server sent       {} packets", r.server_sent);
    println!("  e2e retransmits   {}", r.server_retransmissions);
    println!("  client ACKs       {}", r.client_acks);
    if r.sidecar_messages > 0 {
        println!(
            "  sidecar traffic   {} msgs, {:.1} kB",
            r.sidecar_messages,
            r.sidecar_bytes as f64 / 1e3
        );
    }
    if r.proxy_retransmissions > 0 {
        println!("  in-network retx   {}", r.proxy_retransmissions);
    }
}

fn average(reports: Vec<ScenarioReport>) -> ScenarioReport {
    let k = reports.len() as u64;
    let kf = k as f64;
    let finished: Vec<f64> = reports
        .iter()
        .filter_map(|r| r.completion.map(|t| t.as_secs_f64()))
        .collect();
    let completion = if finished.len() == reports.len() {
        Some(sidecar_netsim::time::SimTime::from_nanos(
            (finished.iter().sum::<f64>() / kf * 1e9) as u64,
        ))
    } else {
        None
    };
    let goodputs: Vec<f64> = reports.iter().filter_map(|r| r.goodput_bps).collect();
    ScenarioReport {
        completion,
        goodput_bps: if goodputs.is_empty() {
            None
        } else {
            Some(goodputs.iter().sum::<f64>() / goodputs.len() as f64)
        },
        server_sent: reports.iter().map(|r| r.server_sent).sum::<u64>() / k,
        server_retransmissions: reports
            .iter()
            .map(|r| r.server_retransmissions)
            .sum::<u64>()
            / k,
        client_acks: reports.iter().map(|r| r.client_acks).sum::<u64>() / k,
        sidecar_messages: reports.iter().map(|r| r.sidecar_messages).sum::<u64>() / k,
        sidecar_bytes: reports.iter().map(|r| r.sidecar_bytes).sum::<u64>() / k,
        proxy_retransmissions: reports.iter().map(|r| r.proxy_retransmissions).sum::<u64>() / k,
        degradations: reports.iter().map(|r| r.degradations).sum(),
        recoveries: reports.iter().map(|r| r.recoveries).sum(),
        // An averaged report has no single world's registry, event ring,
        // sampler, or scoreboard behind it.
        metrics: Default::default(),
        trace: Default::default(),
        timeseries: Default::default(),
        scoreboard: Default::default(),
    }
}

fn main() {
    let opts = parse_args();
    let seeds: Vec<u64> = (0..opts.seeds).map(|i| opts.seed + i).collect();
    println!(
        "protocol {} | {} packets | {}% loss | seeds {:?}\n",
        opts.protocol, opts.packets, opts.loss, seeds
    );

    let (side, base): (Vec<ScenarioReport>, Vec<ScenarioReport>) = match opts.protocol.as_str() {
        "ccd" => {
            let base_cfg = CcdScenario::default();
            let scenario = CcdScenario {
                total_packets: opts.packets,
                quack_interval: SimDuration::from_millis(opts.interval_ms),
                downstream: sidecar_netsim::link::LinkConfig {
                    loss: loss_model(opts.loss),
                    ..base_cfg.downstream
                },
                ..base_cfg
            };
            (
                seeds.iter().map(|&s| scenario.run_sidecar(s)).collect(),
                if opts.baseline {
                    seeds.iter().map(|&s| scenario.run_baseline(s)).collect()
                } else {
                    vec![]
                },
            )
        }
        "ackred" => {
            let base_cfg = AckReductionScenario::default();
            let scenario = AckReductionScenario {
                total_packets: opts.packets,
                reduced_ack_every: opts.ack_every,
                downstream: sidecar_netsim::link::LinkConfig {
                    loss: loss_model(opts.loss),
                    ..base_cfg.downstream
                },
                ..base_cfg
            };
            (
                seeds.iter().map(|&s| scenario.run_sidecar(s)).collect(),
                if opts.baseline {
                    seeds
                        .iter()
                        .map(|&s| scenario.run_baseline_normal(s))
                        .collect()
                } else {
                    vec![]
                },
            )
        }
        "retx" => {
            let base_cfg = RetxScenario::default();
            let scenario = RetxScenario {
                total_packets: opts.packets,
                subpath: sidecar_netsim::link::LinkConfig {
                    loss: loss_model(opts.loss),
                    ..base_cfg.subpath
                },
                ..base_cfg
            };
            (
                seeds.iter().map(|&s| scenario.run_sidecar(s)).collect(),
                if opts.baseline {
                    seeds.iter().map(|&s| scenario.run_baseline(s)).collect()
                } else {
                    vec![]
                },
            )
        }
        _ => usage(),
    };

    let mut report = BenchReport::new("simulate");
    let ls = format!("{}", opts.loss);
    let ps = opts.packets.to_string();
    {
        let mut push = |variant: &str, r: &ScenarioReport| {
            let params = [
                ("protocol", opts.protocol.as_str()),
                ("loss_pct", ls.as_str()),
                ("packets", ps.as_str()),
                ("variant", variant),
            ];
            if let Some(t) = r.completion {
                report.push("completion_time", &params, t.as_secs_f64(), "s");
            }
            if let Some(g) = r.goodput_bps {
                report.push("goodput", &params, g, "bps");
            }
            report.push("e2e_retx", &params, r.server_retransmissions as f64, "msgs");
            report.push("client_acks", &params, r.client_acks as f64, "msgs");
            if r.sidecar_messages > 0 {
                report.push("quack_msgs", &params, r.sidecar_messages as f64, "msgs");
            }
        };

        let side = average(side);
        print_report("sidecar", &side);
        push("sidecar", &side);
        if !base.is_empty() {
            let base = average(base);
            println!();
            print_report("baseline", &base);
            push("baseline", &base);
        }
    }
    report.write_default().expect("write BENCH_simulate.json");
    sidecar_bench::write_metrics_out("simulate");
    sidecar_bench::write_trace_out("simulate");
}
