//! **Observability overhead experiment**: what does the telemetry layer
//! cost the datapath?
//!
//! The repo's telemetry stance is that observation must be effectively
//! free: per-packet taps are O(1) lock-free updates and the time-series
//! sampler runs off the packet path at a fixed cadence. This experiment
//! pins that claim with a CI-gated number:
//!
//! * **Headline (gated)**: the full retx scenario run twice at the same
//!   seed — once plain, once with the 1 s simulator-clock sampler
//!   attached (`RetxScenario::sample_interval`) — and
//!   `obs_overhead_headroom` = plain wall-clock / sampled wall-clock.
//!   The perf gate holds this at ≥ 0.95 (≤ 5% overhead), best-of over
//!   interleaved repetitions so scheduler noise cannot fail the gate on
//!   a machine hiccup.
//! * **Primitive cells (informational + tolerance-gated ops/s)**: the
//!   per-event cost of the two runtime pieces a packet can actually
//!   touch — `FlowScoreboard::record` (the trouble tap) and
//!   `Sampler::sample` over a realistically sized registry snapshot.
//!
//! `--quick` trims repetitions and packet counts for the PR-critical CI
//! leg; the nightly run uses the full counts. `--timeseries-out` archives
//! the sampled run's windowed series (deterministic, byte-stable).
//!
//! Regenerate: `cargo run -p sidecar-bench --release --bin exp_obs_overhead`

use sidecar_bench::{ops_per_sec, BenchReport, Table};
use sidecar_netsim::time::SimDuration;
use sidecar_obs::{FlowScoreboard, HealthDim, MetricsRegistry, Sampler};
use sidecar_proto::protocols::retx::RetxScenario;
use std::time::{Duration, Instant};

/// Seed for the scenario A/B runs (deterministic: both arms replay the
/// identical event stream; only the sampler differs).
const SEED: u64 = 11;
/// Simulator-clock sampling cadence for the sampled arm — the same
/// default cadence the live admin endpoint uses in wall-clock time.
const SAMPLE_MS: u64 = 1_000;

fn scenario(packets: u64, sampled: bool) -> RetxScenario {
    RetxScenario {
        total_packets: packets,
        sample_interval: sampled.then(|| SimDuration::from_millis(SAMPLE_MS)),
        ..RetxScenario::default()
    }
}

/// Wall-clock of one full sidecar run.
fn run_once(s: &RetxScenario) -> Duration {
    let start = Instant::now();
    std::hint::black_box(s.run_sidecar(SEED));
    start.elapsed()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (packets, reps) = if quick { (20_000, 5) } else { (20_000, 9) };
    println!(
        "observability overhead: sampled vs plain retx run, best-of {reps} \
         interleaved reps at {packets} packets, {SAMPLE_MS} ms cadence\n"
    );

    let plain = scenario(packets, false);
    let sampled = scenario(packets, true);

    // Interleave the arms so frequency scaling and preemption hit both
    // equally. The gated headroom takes the better of two noise-robust
    // estimators: the max over *paired* repetitions of plain/sampled (the
    // pair least contaminated by a scheduler hiccup) and the ratio of the
    // per-arm minima (preemption only ever slows a run, so minima are the
    // best uncontended estimates). A systematic sampler regression slows
    // every sampled rep and shifts both estimators; transient noise
    // cannot fail the gate.
    let mut best_plain = Duration::MAX;
    let mut best_sampled = Duration::MAX;
    let mut pair_max = 0.0f64;
    run_once(&plain); // warmup
    run_once(&sampled);
    for _ in 0..reps {
        let p = run_once(&plain);
        let s = run_once(&sampled);
        best_plain = best_plain.min(p);
        best_sampled = best_sampled.min(s);
        pair_max = pair_max.max(p.as_secs_f64() / s.as_secs_f64());
    }
    // A ratio above 1.0 only means the overhead was unmeasurable against
    // noise; clamp so the reported cell reads "fraction of the datapath
    // the telemetry keeps".
    let headroom = pair_max
        .max(best_plain.as_secs_f64() / best_sampled.as_secs_f64())
        .min(1.0);
    let per_packet_ns =
        (best_sampled.as_secs_f64() - best_plain.as_secs_f64()).max(0.0) * 1e9 / packets as f64;

    // Primitive costs: the trouble tap and one sampler tick against a
    // registry shaped like a busy scenario's (dozens of counters, a few
    // gauges, a histogram).
    let scoreboard = FlowScoreboard::default();
    const RECORDS: usize = 1 << 16;
    let dims = [
        HealthDim::ProxyRetx,
        HealthDim::DecodeFail,
        HealthDim::AuthReject,
        HealthDim::Eviction,
    ];
    let record_d = sidecar_bench::measure_best_of(3, 20, 5, &mut |i| {
        for j in 0..RECORDS {
            scoreboard.record((j % 64) as u32, dims[(i + j) % dims.len()]);
        }
    });
    let record_ops = ops_per_sec(record_d, RECORDS);

    let registry = MetricsRegistry::new();
    const NAMES: [&str; 8] = [
        "bench.c0", "bench.c1", "bench.c2", "bench.c3", "bench.c4", "bench.c5", "bench.c6",
        "bench.c7",
    ];
    for (i, name) in NAMES.iter().enumerate() {
        registry.add(name, (i as u64 + 1) * 17);
    }
    registry.gauge_set("bench.g0", 1.5);
    registry.gauge_set("bench.g1", 2.5);
    registry.observe("bench.h0", &[10, 100, 1_000], 42);
    let mut sampler = Sampler::default();
    let mut tick = 0u64;
    let sample_d = sidecar_bench::measure_best_of(3, 200, 20, &mut |_| {
        tick += 1_000_000;
        sampler.sample(tick, registry.snapshot());
    });
    let sample_ops = ops_per_sec(sample_d, 1);

    let mut table = Table::new(&["metric", "value"]);
    table.row(&["plain run".into(), sidecar_bench::fmt_duration(best_plain)]);
    table.row(&[
        "sampled run".into(),
        sidecar_bench::fmt_duration(best_sampled),
    ]);
    table.row(&["headroom (plain/sampled)".into(), format!("{headroom:.3}")]);
    table.row(&[
        "overhead per packet".into(),
        format!("{per_packet_ns:.1} ns"),
    ]);
    table.row(&[
        "scoreboard.record".into(),
        format!("{:.1} M/s", record_ops / 1e6),
    ]);
    table.row(&[
        "sampler tick (snapshot+diff)".into(),
        format!("{:.1} k/s", sample_ops / 1e3),
    ]);
    table.print();

    let mut report = BenchReport::new("exp_obs_overhead");
    report.push(
        "calibration",
        &[],
        sidecar_bench::calibration_ops_per_sec(),
        "ops/s",
    );
    report.push("obs_overhead_headroom", &[], headroom, "x");
    report.push("obs_overhead_per_packet", &[], per_packet_ns, "ns");
    report.push("scoreboard_record", &[], record_ops, "ops/s");
    report.push("sampler_tick", &[], sample_ops, "ops/s");
    report
        .write_default()
        .expect("write BENCH_exp_obs_overhead.json");
    sidecar_bench::write_metrics_out("exp_obs_overhead");
    if std::env::args().any(|a| a == "--timeseries-out") {
        let run = sampled.run_sidecar(SEED);
        sidecar_bench::write_timeseries_out("exp_obs_overhead", &run.timeseries);
    }
    println!(
        "\nexpected shape: headroom ≈ 1.0 (the sampler touches the world\n\
         ~120 times per two-minute horizon, off the packet path) — the perf\n\
         gate holds it at ≥ 0.95; the trouble tap sustains tens of millions\n\
         of records/s, so even pathological loss cannot make it visible."
    );
}
