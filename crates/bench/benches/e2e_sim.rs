//! End-to-end simulation bench: wall-clock cost of running the sidecar
//! protocol scenarios (simulator + sketch together).
//!
//! Run: `cargo bench -p sidecar-bench --bench e2e_sim`

use criterion::{criterion_group, criterion_main, Criterion};
use sidecar_proto::protocols::ack_reduction::AckReductionScenario;
use sidecar_proto::protocols::ccd::CcdScenario;
use sidecar_proto::protocols::retx::RetxScenario;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_runtime");
    group.sample_size(10);

    let retx = RetxScenario {
        total_packets: 500,
        ..RetxScenario::default()
    };
    group.bench_function("retx/sidecar", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            retx.run_sidecar(seed)
        })
    });
    group.bench_function("retx/baseline", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            retx.run_baseline(seed)
        })
    });

    let ccd = CcdScenario {
        total_packets: 500,
        ..CcdScenario::default()
    };
    group.bench_function("ccd/sidecar", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ccd.run_sidecar(seed)
        })
    });

    let ackred = AckReductionScenario {
        total_packets: 500,
        ..AckReductionScenario::default()
    };
    group.bench_function("ack_reduction/sidecar", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ackred.run_sidecar(seed)
        })
    });
    group.finish();
}

criterion_group! {
    name = e2e_sim;
    config = Criterion::default();
    targets = benches
}
criterion_main!(e2e_sim);
