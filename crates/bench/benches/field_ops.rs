//! Ablation bench: raw field-arithmetic throughput per width and backend.
//!
//! Quantifies the design choices DESIGN.md calls out: table-driven vs
//! widening 16-bit multiplication (the paper's "pre-computation
//! optimizations"), and Montgomery vs `u128`-remainder 64-bit
//! multiplication.
//!
//! Run: `cargo bench -p sidecar-bench --bench field_ops`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sidecar_galois::{Field, Fp16, Fp16Table, Fp24, Fp32, Fp64, Monty64};
use std::hint::black_box;

const LANE: usize = 1024;

fn bench_mul<F: Field>(c: &mut Criterion, label: &str) {
    // Pseudo-random operands, identical across backends.
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let xs: Vec<F> = (0..LANE)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            F::from_u64(state)
        })
        .collect();
    let mut group = c.benchmark_group("field_mul");
    group.throughput(Throughput::Elements(LANE as u64));
    group.bench_function(label, |b| {
        b.iter(|| {
            let mut acc = F::ONE;
            for &x in &xs {
                acc *= black_box(x);
            }
            acc
        })
    });
    group.finish();
}

fn bench_inv<F: Field>(c: &mut Criterion, label: &str) {
    let xs: Vec<F> = (1..=64u64).map(|v| F::from_u64(v * 7919)).collect();
    let mut group = c.benchmark_group("field_inv");
    group.throughput(Throughput::Elements(xs.len() as u64));
    group.bench_function(label, |b| {
        b.iter(|| {
            let mut acc = F::ONE;
            for &x in &xs {
                acc += black_box(x).inv();
            }
            acc
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_mul::<Fp16>(c, "b16_widening");
    bench_mul::<Fp16Table>(c, "b16_table");
    bench_mul::<Fp24>(c, "b24");
    bench_mul::<Fp32>(c, "b32");
    bench_mul::<Fp64>(c, "b64_u128_rem");
    bench_mul::<Monty64>(c, "b64_montgomery");

    bench_inv::<Fp16>(c, "b16_fermat");
    bench_inv::<Fp16Table>(c, "b16_table");
    bench_inv::<Fp32>(c, "b32_fermat");
    bench_inv::<Monty64>(c, "b64_montgomery_fermat");
}

criterion_group! {
    name = field_ops;
    config = Criterion::default().sample_size(60);
    targets = benches
}
criterion_main!(field_ops);
