//! Criterion version of **Fig. 6**: quACK decoding time vs. number of
//! missing packets `m` (n = 1000, t = 20), for 16/24/32-bit identifiers.
//!
//! Run: `cargo bench -p sidecar-bench --bench decoding`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sidecar_bench::workload;
use sidecar_galois::{Field, Fp16, Fp24, Fp32};
use sidecar_quack::PowerSumQuack;

const N: usize = 1000;
const T: usize = 20;

fn bench_width<F: Field>(c: &mut Criterion, label: &str) {
    let mut group = c.benchmark_group("decoding");
    for m in [0usize, 5, 10, 15, 20] {
        let (sent, received) = workload(N, m, F::BITS.min(32), 0xDEC0DE);
        let mut sender = PowerSumQuack::<F>::new(T);
        for &id in &sent {
            sender.insert(id);
        }
        let mut receiver = PowerSumQuack::<F>::new(T);
        for &id in &received {
            receiver.insert(id);
        }
        let diff = sender.difference(&receiver);
        group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
            b.iter(|| diff.decode_with_log(&sent).unwrap())
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_width::<Fp16>(c, "b16");
    bench_width::<Fp24>(c, "b24");
    bench_width::<Fp32>(c, "b32");
}

criterion_group! {
    name = decoding;
    config = Criterion::default().sample_size(50);
    targets = benches
}
criterion_main!(decoding);
