//! Criterion version of **Table 2**: the two strawman quACKs against the
//! power-sum quACK at the paper's operating point (n = 1000, t = 20,
//! b = 32). Strawman 2's decode is benchmarked per-candidate (the full
//! search would take ~10³¹ days; see the `table2` binary for the
//! extrapolation).
//!
//! Run: `cargo bench -p sidecar-bench --bench strawmen`

use criterion::{criterion_group, criterion_main, Criterion};
use sidecar_bench::workload;
use sidecar_quack::strawman::{hash_sorted, EchoQuack, HashQuack};
use sidecar_quack::Quack32;

const N: usize = 1000;
const T: usize = 20;

fn benches(c: &mut Criterion) {
    let (sent, received) = workload(N, T, 32, 0x57A3);
    let mut group = c.benchmark_group("table2");

    group.bench_function("strawman1/construct", |b| {
        b.iter(|| {
            let mut q = EchoQuack::new(32);
            for &id in &received {
                q.insert(id);
            }
            q
        })
    });
    let mut echo = EchoQuack::new(32);
    for &id in &received {
        echo.insert(id);
    }
    group.bench_function("strawman1/decode", |b| {
        b.iter(|| echo.decode_missing(&sent))
    });

    group.bench_function("strawman2/construct", |b| {
        b.iter(|| {
            let mut q = HashQuack::new();
            for &id in &received {
                q.insert(id);
            }
            q.digest()
        })
    });
    group.bench_function("strawman2/decode_per_candidate", |b| {
        b.iter(|| hash_sorted(&received))
    });

    group.bench_function("power_sums/construct", |b| {
        b.iter(|| {
            let mut q = Quack32::new(T);
            for &id in &received {
                q.insert(id);
            }
            q
        })
    });
    let mut sender = Quack32::new(T);
    for &id in &sent {
        sender.insert(id);
    }
    let mut receiver = Quack32::new(T);
    for &id in &received {
        receiver.insert(id);
    }
    let diff = sender.difference(&receiver);
    group.bench_function("power_sums/decode", |b| {
        b.iter(|| diff.decode_with_log(&sent).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = strawmen;
    config = Criterion::default().sample_size(60);
    targets = benches
}
criterion_main!(strawmen);
