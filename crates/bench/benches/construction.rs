//! Criterion version of **Fig. 5**: quACK construction time vs. threshold
//! `t` for every identifier width (n = 1000 packets per construction).
//!
//! Run: `cargo bench -p sidecar-bench --bench construction`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sidecar_bench::workload;
use sidecar_galois::{Field, Fp16, Fp16Table, Fp24, Fp32, Fp64, Monty64};
use sidecar_quack::PowerSumQuack;
use std::hint::black_box;

const N: usize = 1000;

fn bench_width<F: Field>(c: &mut Criterion, label: &str) {
    let (ids, _) = workload(N, 0, F::BITS.min(32), 0xF00D);
    let mut group = c.benchmark_group("construction");
    group.throughput(Throughput::Elements(N as u64));
    for t in [10usize, 20, 30, 40, 50] {
        group.bench_with_input(BenchmarkId::new(label, t), &t, |b, &t| {
            b.iter(|| {
                let mut q = PowerSumQuack::<F>::new(t);
                for &id in &ids {
                    q.insert(black_box(id));
                }
                q
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_width::<Fp16>(c, "b16");
    bench_width::<Fp16Table>(c, "b16table");
    bench_width::<Fp24>(c, "b24");
    bench_width::<Fp32>(c, "b32");
    bench_width::<Fp64>(c, "b64");
    bench_width::<Monty64>(c, "b64monty");
}

criterion_group! {
    name = construction;
    config = Criterion::default().sample_size(30);
    targets = benches
}
criterion_main!(construction);
