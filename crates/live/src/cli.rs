//! Minimal `--key value` argument parsing shared by the three live
//! binaries (`live-proxy`, `live-sender`, `live-receiver`). No external
//! dependencies, no subcommands: every option is a `--key value` pair and
//! unknown keys are hard errors so typos never silently fall back to
//! defaults.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
pub struct Args {
    program: String,
    values: BTreeMap<String, String>,
    /// Keys the binary consumed (for unknown-key detection).
    taken: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses the process arguments. Exits with usage text on malformed
    /// input or `--help`.
    pub fn parse(usage: &str) -> Args {
        let mut argv = std::env::args();
        let program = argv.next().unwrap_or_else(|| "live".into());
        let mut values = BTreeMap::new();
        let mut argv = argv.peekable();
        while let Some(arg) = argv.next() {
            if arg == "--help" || arg == "-h" {
                eprintln!("usage: {program} {usage}");
                std::process::exit(0);
            }
            let Some(key) = arg.strip_prefix("--") else {
                eprintln!("unexpected argument {arg:?}\nusage: {program} {usage}");
                std::process::exit(2);
            };
            let Some(value) = argv.next() else {
                eprintln!("--{key} needs a value\nusage: {program} {usage}");
                std::process::exit(2);
            };
            values.insert(key.to_string(), value);
        }
        Args {
            program,
            values,
            taken: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.taken.borrow_mut().push(key.to_string());
        self.values.get(key).map(|s| s.as_str())
    }

    /// A required `--key value`; exits if missing.
    pub fn require(&self, key: &str) -> &str {
        match self.get(key) {
            Some(v) => v,
            None => {
                eprintln!("{}: missing required --{key}", self.program);
                std::process::exit(2);
            }
        }
    }

    /// `--key` parsed as `T`, or `default` when absent; exits on a
    /// malformed value.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("{}: bad value for --{key}: {raw:?}", self.program);
                    std::process::exit(2);
                }
            },
        }
    }

    /// Errors out if any provided key was never consumed (catches typos).
    pub fn finish(&self) {
        let taken = self.taken.borrow();
        for key in self.values.keys() {
            if !taken.iter().any(|t| t == key) {
                eprintln!("{}: unknown option --{key}", self.program);
                std::process::exit(2);
            }
        }
    }
}
